"""Figure 12 (a-h): LEXICOGRAPHIC ranking on IMDB and the large-scale
datasets (the appendix-G counterpart of Figure 6).

Expected shape: identical conclusions to Figure 6 on every dataset —
the queue-free lexicographic algorithm beats the SUM machinery, and at
the large scale only our algorithms finish at all.
"""

import pytest

from repro.bench import format_table, time_top_k
from repro.core import AcyclicRankedEnumerator, LexBacktrackEnumerator
from repro.workloads import four_hop, star, three_hop, two_hop

from bench_utils import friendster, imdb, memetracker, write_report

IMDB_QUERIES = {
    "2hop": two_hop,
    "3hop": three_hop,
    "4hop": four_hop,
    "3star": lambda: star(3),
}

LARGE_PANELS = {
    "friendster_2hop": (friendster, two_hop),
    "friendster_3hop": (friendster, three_hop),
    "memetracker_2hop": (memetracker, two_hop),
    "memetracker_3hop": (memetracker, three_hop),
}


def _lex_factory(workload, spec):
    weight = workload.ranking(spec, kind="lex").weight
    return lambda: LexBacktrackEnumerator(spec.query, workload.db, weight=weight)


def _sum_factory(workload, spec):
    ranking = workload.ranking(spec, kind="sum")
    return lambda: AcyclicRankedEnumerator(spec.query, workload.db, ranking)


@pytest.mark.parametrize("query", IMDB_QUERIES)
def test_fig12_imdb_lex_top1000(benchmark, query):
    workload = imdb()
    spec = IMDB_QUERIES[query]()
    factory = _lex_factory(workload, spec)
    benchmark.pedantic(lambda: factory().top_k(1000), rounds=2, iterations=1)


def test_fig12_imdb_report(benchmark):
    workload = imdb()

    def run() -> str:
        rows = []
        for qname, qbuild in IMDB_QUERIES.items():
            spec = qbuild()
            lex = time_top_k(_lex_factory(workload, spec), 1000).seconds
            sum_t = time_top_k(_sum_factory(workload, spec), 1000).seconds
            rows.append([qname, lex, sum_t, sum_t / lex if lex > 0 else float("nan")])
        return format_table(
            f"Figure 12 [{workload.name}] — LEX vs SUM machinery (top-1000)",
            ["query", "LexBacktrack (s)", "LinDelay-sum (s)", "sum/lex ratio"],
            rows,
            note="paper: lexicographic avoids priority queues, ~2-3x faster",
        )

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("fig12_imdb", text)


def test_fig12_large_scale_report(benchmark):
    def run() -> str:
        rows = []
        for panel, (workload_fn, qbuild) in LARGE_PANELS.items():
            workload = workload_fn()
            spec = qbuild()
            lex = time_top_k(_lex_factory(workload, spec), 1000).seconds
            sum_t = time_top_k(_sum_factory(workload, spec), 1000).seconds
            rows.append([panel, workload.db.size, lex, sum_t])
        return format_table(
            "Figure 12 (e-h) — large-scale LEX vs SUM (top-1000)",
            ["panel", "|D|", "LexBacktrack (s)", "LinDelay-sum (s)"],
            rows,
            note="paper: engines DNF on all large-scale panels",
        )

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("fig12_large_scale", text)
