"""Memory-mapped snapshot store vs cold CSV load + encode.

The persistence layer's bet: a ranked-query session's startup cost is
dominated by work a previous session already did — parsing CSV, building
the value dictionary, encoding every relation into code columns.  An
on-disk snapshot (:mod:`repro.storage.persist`) stores exactly those
artifacts as raw little-endian arrays plus a JSON manifest, and
reopening memory-maps them: no parse, no dictionary build, no encode
pass — the first query runs against lazily paged files.

Two measurements, on the Memetracker-like URL-keyed workload:

* **cold open** — time from nothing to the first ranked answer:
  ``load_database_dir(csv) + QueryEngine(db, encode=True) + execute``
  versus ``QueryEngine(snapshot_dir) + execute``.  Best of 3 each;
  answers are verified bit-identical before any gate.
* **per-worker startup** — what the process backend ships per shard:
  a pickled shard database (every URL string serialised per worker)
  versus a :class:`~repro.storage.persist.SnapshotShardRef` (a path
  plus a shard spec; the worker maps the same snapshot files and
  re-derives its bucket).  Bytes shipped and seconds to a ready shard
  database, per worker.

Run:  PYTHONPATH=src python benchmarks/bench_mmap_store.py [--quick]

``--quick`` shrinks the data for CI smoke (gates relaxed); at default
scale (39k edges) the acceptance gate requires the snapshot open to be
at least 5x faster than the cold load-and-encode path, and the mmap
shard shipping to beat pickle on both bytes and time.  Measured numbers
are always written to ``BENCH_mmap.json`` at the repo root.

``--persistence-smoke`` is the CI end-to-end check: save a snapshot,
start a **fresh interpreter**, reopen the snapshot there and serve a
ranked query through the TCP service layer, all under a wall-clock
budget.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pickle
import shutil
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.bench import format_table  # noqa: E402
from repro.core.ranking import SumRanking, TableWeight  # noqa: E402
from repro.data import Database  # noqa: E402
from repro.data.loader import load_database_dir, save_database_dir  # noqa: E402
from repro.data.partition import partition_query  # noqa: E402
from repro.engine import QueryEngine  # noqa: E402
from repro.parallel.backends import ShardJob  # noqa: E402
from repro.query import parse_query  # noqa: E402
from repro.storage import persist  # noqa: E402
from repro.workloads.generators import zipf_bipartite  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RECORD_JSON = os.path.normpath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_mmap.json")
)

#: Acceptance gate at default scale: snapshot reopen at least this much
#: faster than cold CSV load + dictionary encode, to the first answer.
TARGET_OPEN_SPEEDUP = 5.0
QUICK_OPEN_SPEEDUP = 2.0

TWO_HOP = "Q(a1, a2) :- E(a1, p), E(a2, p)"
#: The session's first query: a small curated-users lookup.  Warm-start
#: latency is what the snapshot store sells — the cold path must build
#: the dictionary and encode *every* relation before answering even
#: this, while the snapshot path only pages in what the query touches.
PROBE = "Q(u) :- U(u, i)"
PROBE_K = 10
SHARDS = 4
CURATED = 200


def make_workload(n_edges: int, seed: int = 7):
    """Memetracker-like: URL-keyed bipartite edges, log-degree weights,
    plus a small curated-users relation (the session's cheap first
    query)."""
    n_users = max(n_edges // 3, 40)
    n_posts = max(n_edges // 5, 25)
    raw = zipf_bipartite(
        n_users, n_posts, n_edges, skew_left=1.0, skew_right=1.0, seed=seed
    )
    edges = [
        (
            f"http://blog.example.org/2009/04/user/{a:07d}/profile",
            f"http://media.example.org/2009/04/post/{p:07d}/index.html",
        )
        for a, p in raw
    ]
    db = Database()
    db.add_relation("E", ("user", "post"), edges)
    curated: dict[str, int] = {}
    for user, _post in edges:
        if user not in curated:
            curated[user] = len(curated)
            if len(curated) >= CURATED:
                break
    db.add_relation("U", ("user", "uid"), sorted(curated.items()))
    degrees: dict[str, int] = {}
    for user, _post in edges:
        degrees[user] = degrees.get(user, 0) + 1
    weights = {u: math.log2(1 + d) for u, d in degrees.items()}
    ranking = SumRanking(TableWeight({}, default_table=weights))
    return db, ranking


def _run_session(make_engine, ranking) -> tuple[float, list, float, list]:
    """(open seconds, probe answers, join seconds, join answers).

    Open seconds = nothing -> first ranked answer of the small probe;
    the join then runs on the same session (its answers are the
    bit-identity witness over the full edge relation).
    """
    started = time.perf_counter()
    engine = make_engine()
    probe = engine.execute(PROBE, ranking, k=PROBE_K)
    open_seconds = time.perf_counter() - started
    started = time.perf_counter()
    join = engine.execute(TWO_HOP, ranking, k=PROBE_K)
    join_seconds = time.perf_counter() - started
    return (
        open_seconds,
        [(a.values, a.score) for a in probe],
        join_seconds,
        [(a.values, a.score) for a in join],
    )


def time_cold_csv(csv_dir: str, ranking):
    """The pre-snapshot way: parse CSV, build dictionary, encode, run."""
    return _run_session(
        lambda: QueryEngine(load_database_dir(csv_dir), encode=True), ranking
    )


def time_snapshot_open(snap_dir: str, ranking):
    """Straight off the snapshot files, lazily paged."""
    return _run_session(lambda: QueryEngine(snap_dir), ranking)


def best_of(fn, repeats: int) -> tuple[float, list, float, list]:
    best_open = best_join = float("inf")
    probe_answers = join_answers = None
    for _ in range(repeats):
        open_s, probe, join_s, join = fn()
        if probe_answers is None:
            probe_answers, join_answers = probe, join
        elif (probe, join) != (probe_answers, join_answers):
            raise SystemExit("FAIL: answers changed between repeats")
        best_open = min(best_open, open_s)
        best_join = min(best_join, join_s)
    return best_open, probe_answers, best_join, join_answers


def measure_worker_startup(snap_dir: str, ranking) -> dict:
    """Per-shard payload bytes and time-to-ready-database, both modes.

    Measures the space the engine actually parallelises in — the
    encoded image, where shard rows are dense int codes — and isolates
    the quantity the snapshot changes: how the shard *database* reaches
    the worker.  ``pickle`` ships the shard database itself (every row
    serialised, as the process backend did before snapshots); ``mmap``
    ships a :class:`SnapshotShardRef` and the receiving side re-derives
    its bucket from the mapped snapshot files.  The timed section is
    the full shipping cost the parent + worker pipeline pays per
    worker: serialise, deserialise, and (mmap) rebuild.  The
    per-process snapshot open memo is cleared before each timing so
    both modes pay their cold worker-side costs; ranking and plan ship
    identically in both modes and are left out.
    """
    query = parse_query(TWO_HOP)
    snapshot = persist.open_snapshot(snap_dir)
    db = snapshot.database()
    ctx = snapshot.encoded_database(db)
    exec_query = ctx.encode_query(query)
    partition = partition_query(exec_query, ctx.database, SHARDS)
    refs = persist.snapshot_shard_refs(ctx.database, partition)
    assert refs is not None, "snapshot-backed partition must yield shard refs"

    pickle_bytes = pickle_secs = 0.0
    mmap_bytes = mmap_secs = 0.0
    for shard_db, ref in zip(partition.databases, refs):
        best = float("inf")
        for _ in range(3):
            persist._OPEN_CACHE.clear()
            started = time.perf_counter()
            blob = pickle.dumps(ShardJob(partition.query, shard_db))
            job = pickle.loads(blob)
            assert job.db is not None and job.db.size
            best = min(best, time.perf_counter() - started)
        pickle_secs += best
        pickle_bytes += len(blob)

        best = float("inf")
        for _ in range(3):
            persist._OPEN_CACHE.clear()
            started = time.perf_counter()
            blob = pickle.dumps(ShardJob(partition.query, None, snapshot_ref=ref))
            job = pickle.loads(blob)
            job.db = job.snapshot_ref.build_database()
            assert job.db.size
            best = min(best, time.perf_counter() - started)
        mmap_secs += best
        mmap_bytes += len(blob)

        for name in job.db.names():
            if sorted(map(tuple, job.db[name])) != sorted(map(tuple, shard_db[name])):
                raise SystemExit(f"FAIL: rebuilt shard diverged on {name!r}")

    return {
        "shards": SHARDS,
        "pickle": {
            "bytes_per_worker": int(pickle_bytes / SHARDS),
            "seconds_per_worker": round(pickle_secs / SHARDS, 6),
        },
        "mmap": {
            "bytes_per_worker": int(mmap_bytes / SHARDS),
            "seconds_per_worker": round(mmap_secs / SHARDS, 6),
        },
        "bytes_ratio": round(pickle_bytes / mmap_bytes, 2) if mmap_bytes else None,
        "time_ratio": round(pickle_secs / mmap_secs, 2) if mmap_secs else None,
    }


# --------------------------------------------------------------------- #
# persistence smoke: fresh interpreter reopens and serves under budget
# --------------------------------------------------------------------- #
_SMOKE_CHILD = r"""
import sys, time
started = time.perf_counter()
from repro.engine import QueryEngine
from repro.service import ServerThread, connect

engine = QueryEngine(sys.argv[1])
with ServerThread(engine) as server:
    with connect(server.host, server.port) as client:
        payload = client.request("execute", query=sys.argv[2], k=10, rank="lex")
answers = len(payload["answers"])
print(f"{time.perf_counter() - started:.3f} {answers}")
"""


def persistence_smoke(budget: float) -> int:
    """Save, then reopen + serve from a fresh process under ``budget`` s."""
    db, _ranking = make_workload(4000)
    tmp = tempfile.mkdtemp(prefix="repro-smoke-")
    try:
        snap = os.path.join(tmp, "snap")
        db.save(snap)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        started = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-c", _SMOKE_CHILD, snap, TWO_HOP],
            env=env,
            capture_output=True,
            text=True,
            timeout=max(budget * 4, 60),
        )
        wall = time.perf_counter() - started
        if proc.returncode != 0:
            print(proc.stdout, file=sys.stderr)
            print(proc.stderr, file=sys.stderr)
            print("FAIL: smoke child exited non-zero", file=sys.stderr)
            return 1
        child_secs, answers = proc.stdout.split()
        if int(answers) == 0:
            print("FAIL: warm query served no answers", file=sys.stderr)
            return 1
        print(
            f"persistence smoke: fresh process reopened + served {answers} "
            f"answers in {child_secs}s (wall {wall:.3f}s, budget {budget}s)"
        )
        if wall > budget:
            print(
                f"FAIL: {wall:.3f}s exceeds the {budget}s budget",
                file=sys.stderr,
            )
            return 1
        return 0
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: smaller data, relaxed open-speedup gate",
    )
    parser.add_argument("--edges", type=int, default=None, help="edge count override")
    parser.add_argument(
        "--repeats", type=int, default=3, help="cold-open repeats (best-of)"
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help=f"fail below this open speedup (default {TARGET_OPEN_SPEEDUP}, "
        f"{QUICK_OPEN_SPEEDUP} under --quick)",
    )
    parser.add_argument(
        "--persistence-smoke", action="store_true",
        help="CI end-to-end: save, reopen in a fresh process, serve a warm "
        "query under --budget seconds",
    )
    parser.add_argument(
        "--budget", type=float, default=20.0,
        help="wall-clock budget for --persistence-smoke (seconds)",
    )
    args = parser.parse_args(argv)

    if args.persistence_smoke:
        return persistence_smoke(args.budget)

    n_edges = args.edges if args.edges is not None else (6000 if args.quick else 39000)
    db, ranking = make_workload(n_edges)

    tmp = tempfile.mkdtemp(prefix="repro-mmap-bench-")
    try:
        csv_dir = os.path.join(tmp, "csv")
        snap_dir = os.path.join(tmp, "snap")
        save_database_dir(db, csv_dir)
        save_started = time.perf_counter()
        db.save(snap_dir)
        save_seconds = time.perf_counter() - save_started
        snap_bytes = sum(
            os.path.getsize(os.path.join(snap_dir, f)) for f in os.listdir(snap_dir)
        )

        cold_open, cold_probe, cold_join_s, cold_join = best_of(
            lambda: time_cold_csv(csv_dir, ranking), args.repeats
        )
        snap_open, snap_probe, snap_join_s, snap_join = best_of(
            lambda: time_snapshot_open(snap_dir, ranking), args.repeats
        )
        if cold_probe != snap_probe or cold_join != snap_join:
            raise SystemExit(
                "FAIL: snapshot-served answers diverged from cold-load answers"
            )
        speedup = cold_open / snap_open if snap_open else float("inf")
        join_ratio = cold_join_s / snap_join_s if snap_join_s else float("inf")

        worker = measure_worker_startup(snap_dir, ranking)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    rows = [
        ("cold: CSV parse + encode all + probe", f"{cold_open:.3f}", "1.00x"),
        ("snapshot: map + probe", f"{snap_open:.3f}", f"{speedup:.2f}x"),
        (f"warm two-hop join k={PROBE_K} (cold)", f"{cold_join_s:.3f}", "1.00x"),
        (f"warm two-hop join k={PROBE_K} (snap)", f"{snap_join_s:.3f}", f"{join_ratio:.2f}x"),
    ]
    table = format_table(
        f"Snapshot open vs cold load [URL-keyed zipf graph, |D|={db.size}, "
        f"best of {args.repeats}]",
        ("path to first answer", "seconds", "speedup"),
        rows,
        note="probe + join answers bit-identical across modes; "
        f"save cost {save_seconds:.3f}s once, {snap_bytes} snapshot bytes; "
        f"per worker ({SHARDS} shards): "
        f"pickle {worker['pickle']['bytes_per_worker']}B/"
        f"{worker['pickle']['seconds_per_worker']}s vs mmap "
        f"{worker['mmap']['bytes_per_worker']}B/"
        f"{worker['mmap']['seconds_per_worker']}s",
    )
    print(table)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "mmap_store.txt"), "w") as fh:
        fh.write(table + "\n")

    min_speedup = args.min_speedup
    if min_speedup is None:
        min_speedup = QUICK_OPEN_SPEEDUP if args.quick else TARGET_OPEN_SPEEDUP
    record = {
        "workload": "memetracker-like URL-keyed zipf graph + curated users",
        "edges": n_edges,
        "|D|": db.size,
        "probe_query": PROBE,
        "join_query": TWO_HOP,
        "k": PROBE_K,
        "repeats_best_of": args.repeats,
        "save_seconds": round(save_seconds, 6),
        "snapshot_bytes": snap_bytes,
        "cold_load_encode_seconds": round(cold_open, 6),
        "snapshot_open_seconds": round(snap_open, 6),
        "open_speedup": round(speedup, 4),
        "join_seconds": {
            "cold": round(cold_join_s, 6),
            "snapshot": round(snap_join_s, 6),
        },
        "identical_output": True,  # enforced above
        "per_worker": worker,
        "gate": {
            "target_open_speedup": min_speedup,
            "enforced": True,
            "mmap_fewer_bytes": True,  # enforced below
            "mmap_faster": not args.quick,  # asymptotic; full scale only
        },
        "quick": bool(args.quick),
    }
    with open(RECORD_JSON, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"record written to {RECORD_JSON}")

    failed = False
    if speedup < min_speedup:
        print(
            f"FAIL: snapshot open speedup {speedup:.2f}x < required "
            f"{min_speedup:.2f}x",
            file=sys.stderr,
        )
        failed = True
    if worker["mmap"]["bytes_per_worker"] >= worker["pickle"]["bytes_per_worker"]:
        print("FAIL: mmap shard payload not smaller than pickle", file=sys.stderr)
        failed = True
    if args.quick:
        # The per-worker *time* edge is asymptotic: at smoke scale the
        # fixed reopen cost (manifest parse + mapping) outweighs the
        # per-row savings, so the time gate binds at full scale only.
        pass
    elif worker["mmap"]["seconds_per_worker"] >= worker["pickle"]["seconds_per_worker"]:
        print("FAIL: mmap shard startup not faster than pickle", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print(
        f"OK: {speedup:.2f}x open (>= {min_speedup:.2f}x); mmap per-worker "
        f"{worker['bytes_ratio']}x fewer bytes, {worker['time_ratio']}x faster"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
