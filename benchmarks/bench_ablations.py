"""Ablations of the implementation choices documented in DESIGN.md §6:

* ``dedup_inserts`` — suppressing duplicate successor insertions
  (Lawler lattice duplication) trades a per-queue seen-set for fewer
  cells and PQ operations; most visible on multi-child nodes (stars);
* ``prune`` — dropping output-free subtrees after the reducer pass
  removes pure-filter nodes from the enumeration hot path.
"""

import random

import pytest

from repro.bench import format_table, time_top_k
from repro.core import AcyclicRankedEnumerator
from repro.data import Database
from repro.query import parse_query
from repro.workloads import star, three_hop

from bench_utils import dblp, write_report


def _factory(workload, spec, **flags):
    ranking = workload.ranking(spec, kind="sum")
    return lambda: AcyclicRankedEnumerator(spec.query, workload.db, ranking, **flags)


@pytest.mark.parametrize("dedup", [True, False])
def test_ablation_dedup_star(benchmark, dedup):
    workload = dblp()
    spec = star(3)
    factory = _factory(workload, spec, dedup_inserts=dedup)
    benchmark.pedantic(lambda: factory().top_k(2000), rounds=2, iterations=1)


def test_ablation_report(benchmark):
    workload = dblp()

    def run() -> str:
        rows = []
        for spec in (star(3), three_hop()):
            for dedup in (True, False):
                for prune in (True, False):
                    enum_holder = {}

                    def factory():
                        enum = _factory(
                            workload, spec, dedup_inserts=dedup, prune=prune
                        )()
                        enum_holder["e"] = enum
                        return enum

                    m = time_top_k(factory, 2000)
                    enum = enum_holder["e"]
                    rows.append(
                        [
                            spec.name,
                            "on" if dedup else "off",
                            "on" if prune else "off",
                            m.seconds,
                            enum.stats.cells_created,
                            enum.heap_stats.operations,
                        ]
                    )
        return format_table(
            f"Ablations [{workload.name}] — LinDelay, top-2000",
            ["query", "dedup_inserts", "prune", "seconds", "cells", "PQ ops"],
            rows,
            note="dedup suppression cuts duplicate successor work on multi-child trees",
        )

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("ablations", text)


def test_ablation_dedup_on_multichild_root(benchmark):
    """Where the Lawler lattice duplication actually fires.

    Star queries GYO-decompose into *chains* (every node has one child),
    so successor generation advances a single coordinate and no
    duplicate combination can ever form — which is why the workload
    ablation above shows identical cell counts.  A 4-path rooted at its
    centre has a two-child root: the combination (advance left, advance
    right) is reachable through two predecessor orders, and the
    seen-set suppression halves the cells created."""
    rng = random.Random(1)
    db = Database()
    for name in ("R1", "R2", "R3", "R4"):
        rows = sorted({(rng.randint(0, 3), rng.randint(0, 3)) for _ in range(10)})
        db.add_relation(name, ("x", "y"), rows)
    q = parse_query("Q(a, e) :- R1(a,b), R2(b,c), R3(c,d), R4(d,e)")

    def run():
        stats = {}
        for dedup in (True, False):
            enum = AcyclicRankedEnumerator(q, db, root="R3", dedup_inserts=dedup)
            enum.all()
            stats["on" if dedup else "off"] = (
                enum.stats.cells_created,
                enum.heap_stats.operations,
            )
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        "ablation_dedup_dense",
        format_table(
            "Ablation — duplicate-insert suppression, 4-path rooted centrally",
            ["dedup_inserts", "cells created", "PQ operations"],
            [["on", *stats["on"]], ["off", *stats["off"]]],
            note="suppression fires only at multi-child nodes; star queries decompose into chains and never need it",
        ),
    )
    assert stats["on"][0] <= stats["off"][0]


def test_prune_effect_on_filter_query(benchmark):
    """A query with a pure-filter tail: pruning must not change answers
    and should not be slower."""
    workload = dblp()
    # 3-hop body but only the first endpoint projected: E(a2,p1),E(a2,p2)
    # become existential filters past the reducer.
    q = parse_query("Q(a1) :- E(a1, p1), E(a2, p1), E(a2, p2)")
    ranking = workload.ranking(three_hop(), kind="sum")  # a1 is "left"

    def run():
        on = time_top_k(
            lambda: AcyclicRankedEnumerator(q, workload.db, ranking, prune=True), None
        )
        off = time_top_k(
            lambda: AcyclicRankedEnumerator(q, workload.db, ranking, prune=False), None
        )
        assert on.answers == off.answers
        return on.seconds, off.seconds

    on_s, off_s = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        "ablation_prune",
        format_table(
            "Ablation — non-output subtree pruning (full enumeration)",
            ["prune", "seconds"],
            [["on", on_s], ["off", off_s]],
        ),
    )
