"""Dictionary-encoded vs plain-row execution on a join-heavy workload.

The storage layer's bet: on realistic data, join keys are fat — the
paper's Memetracker experiments join on full URLs — and Python pays for
every equality, comparison and sort of them: in the backtracking
enumerator's per-candidate filters, the reducer's semi-joins, domain
sorts and heap tie-breaks.  Dictionary encoding maps every value to a
dense int once per session; all of that key traffic becomes small-int
operations, and decoding happens only at answer emission.

The workload is a Zipf-skewed bipartite graph whose node ids are
URL-shaped strings (Memetracker-like), queried by the paper's ranked
session mix: lexicographic two-hop (both directions), a lexicographic
4-atom chain, and a SUM top-k under log-degree weights — all LIMIT k,
all join-bound.  Before any timing, both modes are verified
answer-identical (values, scores, order, ties).

Both sessions run on one engine each, cold then warm; the encoded
total **includes** dictionary construction and relation encoding.

Run:  PYTHONPATH=src python benchmarks/bench_storage_encoding.py [--quick]

``--quick`` shrinks the data for CI (identity check only); at default
scale the acceptance gate requires the encoded session to be at least
1.5x faster end-to-end.  The measured numbers are always written to
``BENCH_storage.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.bench import format_table  # noqa: E402
from repro.core.ranking import LexRanking, SumRanking, TableWeight  # noqa: E402
from repro.data import Database  # noqa: E402
from repro.engine import QueryEngine  # noqa: E402
from repro.workloads.generators import zipf_bipartite  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RECORD_JSON = os.path.normpath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_storage.json")
)

#: Acceptance gate at default scale (ISSUE 3): encoded end-to-end at
#: least this much faster than plain-tuple execution.
TARGET_SPEEDUP = 1.5

TWO_HOP = "Q(a1, a2) :- E(a1, p), E(a2, p)"
CHAIN_4 = "Q(a1, a3) :- E(a1, p1), E(a2, p1), E(a2, p2), E(a3, p2)"


def make_workload(scale: float, seed: int = 7):
    """Memetracker-like: URL-keyed bipartite edges, log-degree weights."""
    n_users = max(int(6000 * scale), 40)
    n_posts = max(int(3500 * scale), 25)
    n_edges = max(int(18000 * scale), 80)
    raw = zipf_bipartite(
        n_users, n_posts, n_edges, skew_left=1.0, skew_right=1.0, seed=seed
    )
    edges = [
        (
            f"http://blog.example.org/2009/04/user/{a:07d}/profile",
            f"http://media.example.org/2009/04/post/{p:07d}/index.html",
        )
        for a, p in raw
    ]
    db = Database()
    db.add_relation("E", ("user", "post"), edges)
    degrees: dict[str, int] = {}
    for user, _post in edges:
        degrees[user] = degrees.get(user, 0) + 1
    weights = {u: math.log2(1 + d) for u, d in degrees.items()}
    sum_ranking = SumRanking(TableWeight({}, default_table=weights))
    session = [
        ("lex-2hop-asc", TWO_HOP, LexRanking(), max(int(2000 * scale), 10)),
        (
            "lex-2hop-desc",
            TWO_HOP,
            LexRanking(descending=("a1", "a2")),
            max(int(2000 * scale), 10),
        ),
        ("lex-chain4", CHAIN_4, LexRanking(), max(int(300 * scale), 5)),
        ("sum-logdeg-2hop", TWO_HOP, sum_ranking, max(int(1000 * scale), 10)),
    ]
    return db, session


def verify_identity(db: Database, session) -> dict[str, int]:
    """Encoded answers must equal plain answers exactly, per query."""
    plain = QueryEngine(db, encode=False)
    encoded = QueryEngine(db, encode=True)
    counts: dict[str, int] = {}
    for name, text, ranking, k in session:
        a = [(x.values, x.score) for x in plain.execute(text, ranking, k=k)]
        b = [(x.values, x.score) for x in encoded.execute(text, ranking, k=k)]
        if a != b:
            raise SystemExit(
                f"FAIL: encoded output diverged from plain on {name!r}"
            )
        counts[name] = len(a)
    return counts


def run_session(
    db: Database, session, *, encode: bool, repeats: int
) -> tuple[float, dict[str, float], QueryEngine]:
    """One client session: every query cold, then ``repeats - 1`` warm
    passes.  Returns (total seconds, first-pass seconds per query, engine)."""
    engine = QueryEngine(db, encode=encode)
    per_query: dict[str, float] = {}
    started = time.perf_counter()
    for name, text, ranking, k in session:
        q_started = time.perf_counter()
        engine.execute(text, ranking, k=k)
        per_query[name] = time.perf_counter() - q_started
    for _ in range(repeats - 1):
        for _name, text, ranking, k in session:
            engine.execute(text, ranking, k=k)
    return time.perf_counter() - started, per_query, engine


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: tiny data, identity check, no speedup gate",
    )
    parser.add_argument("--scale", type=float, default=None, help="workload scale override")
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="total passes over the session (first is cold)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help=f"fail below this end-to-end speedup (default {TARGET_SPEEDUP} "
        "at default scale, skipped under --quick)",
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (0.05 if args.quick else 1.0)
    db, session = make_workload(scale)
    answer_counts = verify_identity(db, session)

    plain_total, plain_cold, _ = run_session(
        db, session, encode=False, repeats=args.repeats
    )
    encoded_total, encoded_cold, encoded_engine = run_session(
        db, session, encode=True, repeats=args.repeats
    )
    speedup = plain_total / encoded_total if encoded_total else float("inf")

    rows = [
        (
            name,
            str(answer_counts[name]),
            f"{plain_cold[name]:.3f}",
            f"{encoded_cold[name]:.3f}",
            f"{plain_cold[name] / encoded_cold[name]:.2f}x"
            if encoded_cold[name]
            else "inf",
        )
        for name, _text, _ranking, _k in session
    ]
    rows.append(
        (
            "session total",
            "-",
            f"{plain_total:.3f}",
            f"{encoded_total:.3f}",
            f"{speedup:.2f}x",
        )
    )
    table = format_table(
        f"Storage encoding [URL-keyed zipf graph, |D|={db.size}, "
        f"passes={args.repeats}]",
        ("query (LIMIT k)", "answers", "plain s", "encoded s", "speedup"),
        rows,
        note="encoded totals include dictionary build + relation encoding; "
        "outputs verified identical before timing "
        f"(dictionary builds: {encoded_engine.stats.encode_builds})",
    )
    print(table)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "storage_encoding.txt"), "w") as fh:
        fh.write(table + "\n")

    min_speedup = args.min_speedup
    if min_speedup is None and not args.quick:
        min_speedup = TARGET_SPEEDUP
    record = {
        "workload": "memetracker-like URL-keyed zipf graph, ranked lex+sum session",
        "scale": scale,
        "|D|": db.size,
        "passes": args.repeats,
        "queries": {
            name: {
                "answers": answer_counts[name],
                "plain_cold_seconds": round(plain_cold[name], 6),
                "encoded_cold_seconds": round(encoded_cold[name], 6),
            }
            for name, _text, _ranking, _k in session
        },
        "plain_total_seconds": round(plain_total, 6),
        "encoded_total_seconds": round(encoded_total, 6),
        "speedup": round(speedup, 4),
        "identical_output": True,  # enforced by verify_identity
        "gate": {
            "target_speedup": min_speedup,
            "enforced": min_speedup is not None,
        },
        "quick": bool(args.quick),
    }
    with open(RECORD_JSON, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"record written to {RECORD_JSON}")

    if min_speedup is not None and speedup < min_speedup:
        print(
            f"FAIL: encoded end-to-end speedup {speedup:.2f}x < required "
            f"{min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    if min_speedup is not None:
        print(f"OK: {speedup:.2f}x end-to-end (>= {min_speedup:.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
