"""Figure 5 (a-h): SUM ranking, time vs k, small-scale datasets.

Paper layout: one panel per (dataset, query) with series LinDelay,
MariaDB/PostgreSQL/Neo4j (here: the engine baseline), and BFS&sort.
Expected shape (paper §6.2): the engines pay full
materialise/dedup/sort cost even at LIMIT 10 — one to three orders of
magnitude slower than LinDelay at small k; LinDelay grows mildly with
k; BFS&sort sits between for large k; on the hardest panels the
engines DNF (out of memory).
"""

import pytest

from repro.algorithms import BfsSortBaseline, EngineBaseline
from repro.bench import Measurement, measurements_table, time_top_k
from repro.core import AcyclicRankedEnumerator
from repro.workloads import four_hop, star, three_hop, two_hop

from bench_utils import ENGINE_MEMORY_LIMIT, K_SWEEP, dblp, imdb, write_report

QUERIES = {
    "2hop": two_hop,
    "3hop": three_hop,
    "4hop": four_hop,
    "3star": lambda: star(3),
}

DATASETS = {"dblp": dblp, "imdb": imdb}


def _lin_factory(workload, spec):
    ranking = workload.ranking(spec, kind="sum")
    return lambda: AcyclicRankedEnumerator(spec.query, workload.db, ranking)


def _engine_factory(workload, spec):
    ranking = workload.ranking(spec, kind="sum")
    return lambda: EngineBaseline(
        spec.query, workload.db, ranking, memory_limit_tuples=ENGINE_MEMORY_LIMIT
    )


def _bfs_factory(workload, spec):
    ranking = workload.ranking(spec, kind="sum")
    return lambda: BfsSortBaseline(spec.query, workload.db, ranking)


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("query", QUERIES)
def test_fig5_lindelay_top10(benchmark, dataset, query):
    """The headline series: LinDelay LIMIT 10 per panel."""
    workload = DATASETS[dataset]()
    spec = QUERIES[query]()
    factory = _lin_factory(workload, spec)
    benchmark.pedantic(lambda: factory().top_k(10), rounds=3, iterations=1)


@pytest.mark.parametrize("dataset", DATASETS)
def test_fig5_report(benchmark, dataset):
    """Regenerate the full panel table for one dataset."""
    workload = DATASETS[dataset]()

    def run() -> str:
        blocks = []
        for qname, qbuild in QUERIES.items():
            spec = qbuild()
            measurements = []
            for k in K_SWEEP:
                measurements.append(
                    time_top_k(_lin_factory(workload, spec), k, label="LinDelay")
                )
            # Engines are k-agnostic (asserted in the unit tests): run once
            # and replicate, exactly like the paper's flat engine curves.
            try:
                engine = time_top_k(_engine_factory(workload, spec), 10, label="engine")
                engine_rows = [
                    Measurement("engine", k, engine.seconds, engine.answers)
                    for k in K_SWEEP
                ]
            except MemoryError:
                engine_rows = [Measurement("engine", k, float("nan"), 0) for k in K_SWEEP]
            bfs = time_top_k(_bfs_factory(workload, spec), 10, label="BFS+sort")
            bfs_rows = [
                Measurement("BFS+sort", k, bfs.seconds, bfs.answers) for k in K_SWEEP
            ]
            blocks.append(
                measurements_table(
                    f"Figure 5 [{workload.name} {qname}] — SUM, time vs k",
                    measurements + engine_rows + bfs_rows,
                    note="engine/BFS rows are k-agnostic (blocking pipeline); nan = DNF",
                )
            )
        return "\n\n".join(blocks)

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(f"fig5_{dataset}", text)
