"""Shared helpers for the benchmark suite.

Every ``bench_*`` module regenerates one exhibit (table or figure) of
the paper.  Workloads are cached per session; each module writes its
paper-style table both to stdout (visible with ``pytest -s``) and to
``benchmarks/results/<exhibit>.txt`` so EXPERIMENTS.md can reference the
measured numbers.

Scales are calibrated so the whole suite completes in minutes on one
core: the paper's effects are scale-free (who wins and by what factor),
see DESIGN.md §4.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.workloads import (
    make_dblp_like,
    make_friendster_like,
    make_imdb_like,
    make_ldbc_like,
    make_memetracker_like,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Engines get this intermediate-tuple budget; exceeding it is reported
#: as DNF — the paper's out-of-memory failures at 128 GB, scaled down.
ENGINE_MEMORY_LIMIT = 3_000_000

K_SWEEP = (10, 100, 1000)


@lru_cache(maxsize=None)
def dblp():
    """DBLP-like workload for the small-scale figures."""
    return make_dblp_like(scale=0.35, seed=0)


@lru_cache(maxsize=None)
def imdb():
    """IMDB-like workload (denser/skewer, harder joins)."""
    return make_imdb_like(scale=0.3, seed=1)


@lru_cache(maxsize=None)
def dblp_cyclic():
    """Smaller DBLP-like instance for the |D|^fhw cyclic experiments."""
    return make_dblp_like(scale=0.15, seed=0)


@lru_cache(maxsize=None)
def imdb_cyclic():
    return make_imdb_like(scale=0.1, seed=1)


@lru_cache(maxsize=None)
def memetracker():
    return make_memetracker_like(scale=0.6, seed=2)


@lru_cache(maxsize=None)
def friendster():
    return make_friendster_like(scale=0.6, seed=3)


@lru_cache(maxsize=None)
def ldbc(sf: float):
    return make_ldbc_like(sf)


def write_report(name: str, text: str) -> None:
    """Print a table and persist it under benchmarks/results/."""
    print()
    print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
