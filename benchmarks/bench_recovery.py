"""Durability overhead and crash-recovery speed of the delta journal.

Two questions, one workload (the memetracker-like follows+annotations
graph of ``bench_incremental``, anchored ranked SUM top-k):

1. **What does durability cost?**  A 0.1% append burst lands either
   through the non-durable delta path (PR 7: ``add_rows`` + the warm
   delta-maintained query) or through the write-ahead journal
   (``DurableDatabase.append``: frame, CRC, write, fsync — *then* the
   same warm query).  Both paths serve the next top-k; the journaled
   one must cost at most 2x the non-durable one, median over rounds.
   Answers are verified identical between the two paths every round.

2. **What does recovery buy?**  After the bursts, the directory holds
   a snapshot plus a journal tail — the crash image a kill -9 leaves.
   Crash-to-first-answer (``open_database`` replays the journal over
   the mapped snapshot, then the first ranked answer) must beat a full
   cold rebuild by at least 5x.  The rebuild is what losing the crash
   image would force, measured the same way ``bench_mmap_store``
   measures its cold path: re-ingest the canonical CSV source
   (``load_database_dir``), re-encode, first answer.  Recovered
   answers are verified bit-identical to the rebuild's.

Run:  PYTHONPATH=src python benchmarks/bench_recovery.py [--quick]

``--quick`` shrinks the data for CI (identity checks, no gates).
Measured numbers are always written to ``BENCH_recovery.json`` at the
repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import shutil
import statistics
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_incremental import make_workload  # noqa: E402

from repro.bench import format_table  # noqa: E402
from repro.data import Database  # noqa: E402
from repro.data.loader import load_database_dir, save_database_dir  # noqa: E402
from repro.engine import QueryEngine  # noqa: E402
from repro.storage import open_database, save_snapshot  # noqa: E402
from repro.storage.journal import open_durable  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RECORD_JSON = os.path.normpath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_recovery.json")
)

#: Acceptance gates at default scale (ISSUE 9).
MAX_OVERHEAD_RATIO = 2.0
MIN_RECOVERY_SPEEDUP = 5.0
BURST_FRACTION = 0.001
BURST_ROUNDS = 5
K = 10


def answers(engine: QueryEngine, query: str, ranking) -> list[tuple]:
    return [(a.values, a.score) for a in engine.execute(query, ranking, k=K)]


def rebuild_database(rows: dict[str, tuple[tuple, list]]) -> Database:
    db = Database()
    for name, (attrs, rel_rows) in rows.items():
        db.add_relation(name, attrs, rel_rows)
    return db


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: tiny data, identity checks, no gates",
    )
    parser.add_argument(
        "--scale", type=float, default=None, help="workload scale override"
    )
    args = parser.parse_args(argv)
    scale = args.scale if args.scale is not None else (0.05 if args.quick else 1.0)

    db, ranking, query = make_workload(scale)
    rng = random.Random(2201)
    burst_rows = max(int(db.size * BURST_FRACTION), 1)
    annots = list(db["F"])
    bursts = [
        [rng.choice(annots) for _ in range(burst_rows)]
        for _ in range(BURST_ROUNDS + 1)  # +1 warm-up
    ]

    root = tempfile.mkdtemp(prefix="bench-recovery-")
    try:
        snap = os.path.join(root, "snap")
        save_snapshot(db, snap)

        # ---- phase 1: durability overhead of a journaled burst ---- #
        durable = open_durable(snap)
        durable_engine = QueryEngine(durable.db, encode=True)
        plain_engine = QueryEngine(
            rebuild_database(
                {rel.name: (rel.attrs, list(rel)) for rel in db}
            ),
            encode=True,
        )
        # Warm both paths outside the timed region: first query builds
        # the reduced instance, the warm-up burst pays the mapped
        # store's one-time copy-on-write detach.
        answers(durable_engine, query, ranking)
        answers(plain_engine, query, ranking)
        durable.append("F", bursts[0])
        plain_engine.db["F"].add_rows(bursts[0])
        answers(durable_engine, query, ranking)
        answers(plain_engine, query, ranking)

        durable_times: list[float] = []
        plain_times: list[float] = []
        for burst in bursts[1:]:
            started = time.perf_counter()
            durable.append("F", burst)
            got = answers(durable_engine, query, ranking)
            durable_times.append(time.perf_counter() - started)

            started = time.perf_counter()
            plain_engine.db["F"].add_rows(burst)
            want = answers(plain_engine, query, ranking)
            plain_times.append(time.perf_counter() - started)
            if got != want:
                raise SystemExit(
                    "FAIL: journaled path diverged from the non-durable path"
                )

        durable_median = statistics.median(durable_times)
        plain_median = statistics.median(plain_times)
        overhead = (
            durable_median / plain_median if plain_median else float("inf")
        )
        journal_bytes = durable.journal_bytes
        expected = answers(durable_engine, query, ranking)
        # The canonical source the rebuild would re-ingest (written
        # outside both timed regions).
        csv_dir = os.path.join(root, "csv")
        save_database_dir(durable.db, csv_dir)
        durable.close()
        del durable_engine, durable

        # ---- phase 2: crash-to-first-answer vs full cold rebuild ---- #
        started = time.perf_counter()
        recovered_engine = QueryEngine(open_database(snap), encode=True)
        recovered = answers(recovered_engine, query, ranking)
        recovery_seconds = time.perf_counter() - started

        started = time.perf_counter()
        rebuilt_engine = QueryEngine(load_database_dir(csv_dir), encode=True)
        rebuilt = answers(rebuilt_engine, query, ranking)
        rebuild_seconds = time.perf_counter() - started

        if recovered != expected or recovered != rebuilt:
            raise SystemExit(
                "FAIL: recovered answers diverged from the cold rebuild"
            )
        replayed = recovered_engine.stats.journal_records_replayed
        speedup = (
            rebuild_seconds / recovery_seconds
            if recovery_seconds
            else float("inf")
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)

    table = format_table(
        f"Crash-safe durability [follows+annotations, |D|={db.size}, "
        f"{BURST_ROUNDS} bursts x {burst_rows} rows ({BURST_FRACTION:.1%})]",
        ("phase", "seconds", "ratio"),
        [
            (
                "burst + warm query, non-durable (median)",
                f"{plain_median:.4f}",
                "1.00",
            ),
            (
                "burst + warm query, journaled (median)",
                f"{durable_median:.4f}",
                f"{overhead:.4f}",
            ),
            (
                "crash recovery to first answer",
                f"{recovery_seconds:.4f}",
                f"{speedup:.2f}x vs rebuild",
            ),
            ("full cold rebuild to first answer", f"{rebuild_seconds:.4f}", "1.00"),
        ],
        note="answers verified identical across both write paths and both "
        f"restart paths; {replayed} journal records "
        f"({journal_bytes} bytes) replayed on recovery",
    )
    print(table)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "recovery.txt"), "w") as fh:
        fh.write(table + "\n")

    enforced = not args.quick
    record = {
        "workload": "memetracker-like follows+annotations, anchored SUM top-k",
        "scale": scale,
        "|D|": db.size,
        "k": K,
        "burst_rows": burst_rows,
        "burst_fraction": BURST_FRACTION,
        "burst_rounds": BURST_ROUNDS,
        "nondurable_burst_seconds": [round(s, 6) for s in plain_times],
        "journaled_burst_seconds": [round(s, 6) for s in durable_times],
        "nondurable_burst_median_seconds": round(plain_median, 6),
        "journaled_burst_median_seconds": round(durable_median, 6),
        "durability_overhead_ratio": round(overhead, 6),
        "journal_bytes_at_crash": journal_bytes,
        "journal_records_replayed": replayed,
        "recovery_to_first_answer_seconds": round(recovery_seconds, 6),
        "rebuild_to_first_answer_seconds": round(rebuild_seconds, 6),
        "recovery_speedup": round(speedup, 6),
        "identical_output": True,  # enforced above
        "gate": {
            "max_overhead_ratio": MAX_OVERHEAD_RATIO,
            "min_recovery_speedup": MIN_RECOVERY_SPEEDUP,
            "enforced": enforced,
        },
        "quick": bool(args.quick),
    }
    with open(RECORD_JSON, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"record written to {RECORD_JSON}")

    if enforced:
        failed = False
        if overhead > MAX_OVERHEAD_RATIO:
            print(
                f"FAIL: journaled burst costs {overhead:.4f}x the "
                f"non-durable path (allowed {MAX_OVERHEAD_RATIO}x)",
                file=sys.stderr,
            )
            failed = True
        if speedup < MIN_RECOVERY_SPEEDUP:
            print(
                f"FAIL: recovery speedup {speedup:.2f}x < required "
                f"{MIN_RECOVERY_SPEEDUP}x",
                file=sys.stderr,
            )
            failed = True
        if failed:
            return 1
        print(
            f"OK: {overhead:.4f}x durability overhead "
            f"(<= {MAX_OVERHEAD_RATIO}x), {speedup:.2f}x recovery speedup "
            f"(>= {MIN_RECOVERY_SPEEDUP}x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
