"""Vectorised reducer kernels vs row-at-a-time Python (ISSUE 4).

The Yannakakis full reducer is the dominant preprocessing cost of every
acyclic execution (and, through the GHD bag materialisation, of cyclic
preprocessing too).  The kernel layer (``repro.storage.kernels``) runs
its two semi-join sweeps as NumPy array operations over the column
store's dense code matrices — packed ``int64`` keys, ``np.isin``
membership masks, index gathers — instead of per-row Python set probes.

This benchmark measures exactly that substitution on identical inputs:

* **reduction phase** — ``full_reduce`` over an int-keyed Zipf graph
  (a 4-atom chain, a 3-atom star self-join, and a multi-column-key
  join, where the Python path must build a key tuple per row), kernels
  on vs off;
* **cyclic preprocessing** — ``CyclicRankedEnumerator.preprocess`` (bag
  joins + reduction) on a 4-cycle, kernels on vs off.

Outputs are verified identical (reduced instances, bag sizes, ranked
answers) before any timing.  Store-level code matrices are cached per
store version, so the timed repeats reflect a session after first
contact — which the identity check performs.

Run:  PYTHONPATH=src python benchmarks/bench_reducer_kernels.py [--quick]

``--quick`` shrinks the data for CI (identity check only); at default
scale the acceptance gate requires the vectorised reduction phase to be
at least 2x faster than row-at-a-time, recorded in
``BENCH_kernels.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.algorithms.yannakakis import atom_instances, full_reduce  # noqa: E402
from repro.bench import format_table  # noqa: E402
from repro.core.cyclic import CyclicRankedEnumerator  # noqa: E402
from repro.data import Database  # noqa: E402
from repro.query import parse_query  # noqa: E402
from repro.query.jointree import build_join_tree  # noqa: E402
from repro.storage import kernels  # noqa: E402
from repro.workloads.generators import zipf_bipartite  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RECORD_JSON = os.path.normpath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_kernels.json")
)

#: Acceptance gate at default scale (ISSUE 4): the vectorised reduction
#: phase at least this much faster than the row-at-a-time sweeps.
TARGET_SPEEDUP = 2.0

REDUCE_QUERIES = {
    "chain4": "Q(a1, a3) :- E(a1, p1), E(a2, p1), E(a2, p2), E(a3, p2)",
    "star3": "Q(a1, a2, a3) :- E(a1, p), E(a2, p), E(a3, p)",
    "multicol": "Q(a, d) :- M(a, b, c), N(b, c, d)",
}
CYCLE_QUERY = "Q(a, b, c, d) :- E1(a, b), E2(b, c), E3(c, d), E4(d, a)"


def make_workload(scale: float, seed: int = 7):
    """Int-keyed Zipf graphs: the encoded layer's code space, directly."""
    edges = zipf_bipartite(
        max(int(8000 * scale), 40),
        max(int(5000 * scale), 25),
        max(int(60000 * scale), 150),
        skew_left=1.0,
        skew_right=1.0,
        seed=seed,
    )
    rng = random.Random(seed)
    wide = [(a, p, rng.randrange(50)) for a, p in edges[: max(len(edges) * 2 // 3, 20)]]

    db = Database()
    db.add_relation("E", ("a", "p"), edges)
    db.add_relation("M", ("a", "b", "c"), wide)
    db.add_relation("N", ("b", "c", "d"), [
        (b, c, rng.randrange(500)) for (_a, b, c) in wide[::2]
    ])

    cyc = Database()
    n_cyc = max(int(4000 * scale), 30)
    domain = max(int(400 * scale), 10)
    for i, name in enumerate(("E1", "E2", "E3", "E4")):
        attrs = (("a", "b"), ("b", "c"), ("c", "d"), ("d", "a"))[i]
        pairs = zipf_bipartite(
            domain, domain, n_cyc, skew_left=1.0, skew_right=1.0, seed=seed + i
        )
        cyc.add_relation(name, attrs, pairs)
    return db, cyc


def time_reduce(tree, instances, *, use_kernels: bool, repeats: int) -> float:
    # Toggle globally, not just per full_reduce call: the Python sweep's
    # semijoin() has its own multi-column kernel dispatch, which must be
    # off for an honest row-at-a-time baseline.
    kernels.set_enabled(use_kernels)
    try:
        started = time.perf_counter()
        for _ in range(repeats):
            full_reduce(tree, instances, use_kernels=use_kernels)
        return (time.perf_counter() - started) / repeats
    finally:
        kernels.set_enabled(True)


def time_cyclic(query, db, *, enabled: bool):
    """One preprocess pass split into bag / inner phases (multi-second).

    The enumerator reports its own phase timings: ``preprocess_seconds``
    totals the pass, ``inner_stats.preprocess_seconds`` is the acyclic
    enumerator built over the bag tree, and their difference is the bag
    materialisation the join kernels accelerate.
    """
    kernels.set_enabled(enabled)
    try:
        enum = CyclicRankedEnumerator(query, db).preprocess()
    finally:
        kernels.set_enabled(True)
    total = enum.stats.preprocess_seconds
    inner = enum.inner_stats.preprocess_seconds
    return {"total": total, "inner": inner, "bag": total - inner}, enum


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: tiny data, identity check, no speedup gate",
    )
    parser.add_argument("--scale", type=float, default=None, help="workload scale override")
    parser.add_argument("--repeats", type=int, default=3, help="timed passes per mode")
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help=f"fail below this reduction-phase speedup (default {TARGET_SPEEDUP} "
        "at default scale, skipped under --quick)",
    )
    args = parser.parse_args(argv)

    if not kernels.enabled():
        print("numpy unavailable — nothing to compare (install repro[fast])",
              file=sys.stderr)
        return 0 if args.quick else 1

    scale = args.scale if args.scale is not None else (0.05 if args.quick else 1.0)
    db, cyc = make_workload(scale)

    rows = []
    record_queries = {}
    python_total = 0.0
    kernel_total = 0.0
    for name, text in REDUCE_QUERIES.items():
        query = parse_query(text)
        tree = build_join_tree(query)
        instances = atom_instances(query, db)
        fast = full_reduce(tree, instances, use_kernels=True)
        kernels.set_enabled(False)
        try:
            slow = full_reduce(tree, instances, use_kernels=False)
        finally:
            kernels.set_enabled(True)
        if fast != slow:
            raise SystemExit(f"FAIL: kernel reduce diverged from Python on {name!r}")
        survivors = sum(len(v) for v in fast.values())
        kernel_s = time_reduce(tree, instances, use_kernels=True, repeats=args.repeats)
        python_s = time_reduce(tree, instances, use_kernels=False, repeats=args.repeats)
        python_total += python_s
        kernel_total += kernel_s
        speedup = python_s / kernel_s if kernel_s else float("inf")
        rows.append(
            (name, str(survivors), f"{python_s * 1e3:.1f}", f"{kernel_s * 1e3:.1f}",
             f"{speedup:.2f}x")
        )
        record_queries[name] = {
            "survivors": survivors,
            "python_seconds": round(python_s, 6),
            "kernel_seconds": round(kernel_s, 6),
            "speedup": round(speedup, 4),
        }

    reduce_speedup = python_total / kernel_total if kernel_total else float("inf")
    rows.append(
        ("reduction total", "-", f"{python_total * 1e3:.1f}",
         f"{kernel_total * 1e3:.1f}", f"{reduce_speedup:.2f}x")
    )

    cycle = parse_query(CYCLE_QUERY)
    cyc_kernel, fast_enum = time_cyclic(cycle, cyc, enabled=True)
    cyc_python, slow_enum = time_cyclic(cycle, cyc, enabled=False)
    fast_answers = [(a.values, a.score) for a in fast_enum.top_k(50)]
    slow_answers = [(a.values, a.score) for a in slow_enum.top_k(50)]
    if (
        fast_answers != slow_answers
        or fast_enum.materialised_tuples != slow_enum.materialised_tuples
    ):
        raise SystemExit("FAIL: kernel cyclic preprocessing diverged from Python")
    cyc_speedups = {
        phase: (cyc_python[phase] / cyc_kernel[phase] if cyc_kernel[phase] else float("inf"))
        for phase in ("bag", "total")
    }
    rows.append(
        ("cyclic bag join", str(fast_enum.materialised_tuples),
         f"{cyc_python['bag'] * 1e3:.1f}", f"{cyc_kernel['bag'] * 1e3:.1f}",
         f"{cyc_speedups['bag']:.2f}x")
    )
    rows.append(
        ("cyclic preprocess", str(fast_enum.materialised_tuples),
         f"{cyc_python['total'] * 1e3:.1f}", f"{cyc_kernel['total'] * 1e3:.1f}",
         f"{cyc_speedups['total']:.2f}x")
    )

    table = format_table(
        f"Reducer kernels [int-keyed zipf graphs, |D|={db.size}, "
        f"repeats={args.repeats}]",
        ("phase", "tuples", "python ms", "kernel ms", "speedup"),
        rows,
        note="outputs verified identical before timing; store-level code "
        "matrices cached per store version (session-after-first-contact)",
    )
    print(table)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "reducer_kernels.txt"), "w") as fh:
        fh.write(table + "\n")

    min_speedup = args.min_speedup
    if min_speedup is None and not args.quick:
        min_speedup = TARGET_SPEEDUP
    record = {
        "workload": "int-keyed zipf graphs; chain4/star3/multicol reduce + 4-cycle GHD",
        "scale": scale,
        "|D|": db.size,
        "repeats": args.repeats,
        "reduce": record_queries,
        "reduce_python_seconds": round(python_total, 6),
        "reduce_kernel_seconds": round(kernel_total, 6),
        "reduce_speedup": round(reduce_speedup, 4),
        "cyclic": {
            "materialised_tuples": fast_enum.materialised_tuples,
            "python_seconds": {k: round(v, 6) for k, v in cyc_python.items()},
            "kernel_seconds": {k: round(v, 6) for k, v in cyc_kernel.items()},
            "bag_speedup": round(cyc_speedups["bag"], 4),
            "total_speedup": round(cyc_speedups["total"], 4),
        },
        "identical_output": True,  # enforced above
        "gate": {
            "target_speedup": min_speedup,
            "enforced": min_speedup is not None,
        },
        "quick": bool(args.quick),
    }
    with open(RECORD_JSON, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"record written to {RECORD_JSON}")

    if min_speedup is not None and reduce_speedup < min_speedup:
        print(
            f"FAIL: reduction-phase speedup {reduce_speedup:.2f}x < required "
            f"{min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    if min_speedup is not None:
        print(f"OK: {reduce_speedup:.2f}x on the reduction phase "
              f"(>= {min_speedup:.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
