"""Figure 14a: empirical delay distribution (priority-queue operations
per answer) and Figure 14b: cyclic queries on the IMDB-like dataset.

Paper findings for 14a: on DBLP ~70% of answers need a single PQ
push/pop pair and 99% need at most 22 operations, with a small heavy
tail; on IMDB ~95% need one operation pair.  The distribution is the
empirical counterpart of the O(|D| log |D|) worst-case delay.
"""

import pytest

from repro.bench import format_table, time_top_k
from repro.core import AcyclicRankedEnumerator, CyclicRankedEnumerator
from repro.query import find_ghd
from repro.workloads import bipartite_cycle, two_hop

from bench_utils import dblp, imdb, imdb_cyclic, write_report

THRESHOLDS = (2, 4, 8, 16, 44, 612)


def _delay_distribution(workload):
    spec = two_hop()
    ranking = workload.ranking(spec, kind="sum")
    enum = AcyclicRankedEnumerator(spec.query, workload.db, ranking)
    enum.all()
    ops = enum.stats.pq_ops_per_answer
    total = max(len(ops), 1)
    return ops, total


@pytest.mark.parametrize("dataset", ["dblp", "imdb"])
def test_fig14a_report(benchmark, dataset):
    workload = {"dblp": dblp, "imdb": imdb}[dataset]()

    def run() -> str:
        ops, total = _delay_distribution(workload)
        rows = []
        for threshold in THRESHOLDS:
            fraction = sum(1 for o in ops if o <= threshold) / total
            rows.append([f"<= {threshold} PQ ops", f"{100 * fraction:.1f}%"])
        rows.append(["max PQ ops for one answer", max(ops) if ops else 0])
        rows.append(["answers", total])
        return format_table(
            f"Figure 14a [{workload.name} 2hop] — PQ operations per answer",
            ["bucket", "fraction of answers"],
            rows,
            note="paper: ~70% of DBLP answers need one push+pop; long but thin tail",
        )

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(f"fig14a_{dataset}", text)


def test_fig14b_cyclic_imdb_report(benchmark):
    workload = imdb_cyclic()

    def run() -> str:
        rows = []
        for name, spec in (
            ("four cycle", bipartite_cycle(2)),
            ("six cycle", bipartite_cycle(3)),
        ):
            ranking = workload.ranking(spec, kind="sum")
            ghd = find_ghd(spec.query)
            factory = lambda: CyclicRankedEnumerator(  # noqa: E731
                spec.query, workload.db, ranking, ghd=ghd
            )
            row = [name]
            for k in (10, 100, 1000):
                row.append(time_top_k(factory, k).seconds)
            rows.append(row)
        return format_table(
            f"Figure 14b [{workload.name}, |D|={workload.db.size}] — cyclic queries",
            ["query", "k=10", "k=100", "k=1000"],
            rows,
            note="paper: Neo4j only finished the four cycle on IMDB; ours completes all",
        )

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("fig14b_cyclic_imdb", text)
