"""Batched score columns vs per-row scalar keys (ISSUE 5).

The ranked enumerators' non-join preprocessing cost is *scoring*:
turning every surviving tuple into a rank key — per row, a Python list
build plus one weight-table lookup per owned head variable (and a
second memo hop under dictionary encoding).  The score-column subsystem
(``repro.storage.scores`` + ``repro.core.ranking.batched_node_keys``)
materialises each (relation, attribute, weight function) as a cached
``float64`` array keyed by store version and computes a node's keys in
one array pass.

This benchmark measures exactly that substitution on identical inputs:

* **identity** — for SUM/MIN/MAX/AVG (asc and desc) the full ranked
  output — values, scores, keys, ties, order — is compared between the
  batched and scalar paths, over plain and encoded execution, serial
  and sharded; LEX and composite rankings are verified to fall back
  (``score_fallbacks`` counted, outputs unchanged);
* **scoring phase** — the per-node key computation itself
  (``batched_node_keys`` vs the scalar ``bound.key`` loop) on the
  reducer's surviving rows, kernels on for both sides so only the
  scoring path differs;
* **end-to-end preprocessing** — enumerator ``preprocess()`` on warm
  reduced instances (the engine's steady state), batched vs scalar.

Run:  PYTHONPATH=src python benchmarks/bench_ranked_scoring.py [--quick]

``--quick`` shrinks the data for CI (identity check only); at default
scale the acceptance gate requires the batched scoring phase to be at
least 2x faster than the scalar loop, recorded in ``BENCH_ranking.json``
at the repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.algorithms.yannakakis import atom_instances, full_reduce  # noqa: E402
from repro.bench import format_table  # noqa: E402
from repro.core.acyclic import AcyclicRankedEnumerator  # noqa: E402
from repro.core.ranking import (  # noqa: E402
    AvgRanking,
    LexRanking,
    MaxRanking,
    MinRanking,
    SumRanking,
    TableWeight,
    batched_node_keys,
)
from repro.data import Database  # noqa: E402
from repro.engine import QueryEngine  # noqa: E402
from repro.query import parse_query  # noqa: E402
from repro.query.jointree import build_join_tree  # noqa: E402
from repro.storage import kernels, scores  # noqa: E402
from repro.workloads.generators import zipf_bipartite  # noqa: E402
from repro.workloads.weights import random_weights  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RECORD_JSON = os.path.normpath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_ranking.json")
)

#: Acceptance gate at default scale (ISSUE 5): the batched scoring
#: phase at least this much faster than the per-row scalar keys.
TARGET_SPEEDUP = 2.0

TWO_HOP = "Q(a1, a2) :- E(a1, p), E(a2, p)"
WIDE = "Q(a, w) :- W(a, w)"


def make_workload(scale: float, seed: int = 11):
    """An int-keyed Zipf graph plus a two-head-variable relation."""
    n_left = max(int(6000 * scale), 40)
    n_right = max(int(4000 * scale), 25)
    edges = zipf_bipartite(
        n_left,
        n_right,
        max(int(45000 * scale), 150),
        skew_left=1.0,
        skew_right=1.0,
        seed=seed,
    )
    rng = random.Random(seed)
    wide = [
        (rng.randrange(n_left), rng.randrange(n_left))
        for _ in range(max(int(30000 * scale), 100))
    ]
    db = Database()
    db.add_relation("E", ("a", "p"), edges)
    db.add_relation("W", ("a", "w"), wide)
    weight = TableWeight(
        {}, default_table=random_weights(range(max(n_left, n_right)), seed=seed + 1)
    )
    return db, weight


def ranked_outputs(engine: QueryEngine, query: str, ranking, *, shards: int = 0):
    if shards > 1:
        answers = engine.execute_parallel(query, ranking, shards=shards, backend="serial")
    else:
        answers = engine.execute(query, ranking)
    return [(a.values, a.score, a.key) for a in answers]


def check_identity(db, weight) -> dict:
    """Batched == scalar over every mode; returns the checked matrix."""
    rankings = {
        "SUM": SumRanking(weight),
        "SUM desc": SumRanking(weight, descending=True),
        "MIN": MinRanking(weight),
        "MAX": MaxRanking(weight),
        "AVG": AvgRanking(weight),
    }
    checked = {}
    for name, ranking in rankings.items():
        for encode in (False, True):
            for shards in (0, 3):
                outputs = {}
                for batch in (True, False):
                    scores.set_enabled(batch)
                    try:
                        engine = QueryEngine(db, encode=encode)
                        outputs[batch] = ranked_outputs(
                            engine, TWO_HOP, ranking, shards=shards
                        )
                    finally:
                        scores.set_enabled(True)
                if outputs[True] != outputs[False]:
                    raise SystemExit(
                        f"FAIL: batched scoring diverged from scalar on {name!r} "
                        f"(encode={encode}, shards={shards})"
                    )
                checked[f"{name}/encode={encode}/shards={shards}"] = len(outputs[True])

    # LEX and composite: same results, demonstrably via the scalar path.
    # (LEX is forced through the LinDelay enumerator — ``method="auto"``
    # would pick the backtracking enumerator, which never attempts
    # batched keys in the first place.)
    for name, ranking, method in (
        ("LEX", LexRanking(), "lindelay"),
        ("SUM then LEX", SumRanking(weight).then_by(LexRanking()), "auto"),
    ):
        engine = QueryEngine(db, encode=False)
        batched = [
            (a.values, a.score, a.key)
            for a in engine.execute(TWO_HOP, ranking, method=method)
        ]
        if engine.stats.score_builds != 0 or engine.stats.score_fallbacks == 0:
            raise SystemExit(
                f"FAIL: {name!r} should have fallen back "
                f"(builds={engine.stats.score_builds}, "
                f"fallbacks={engine.stats.score_fallbacks})"
            )
        scores.set_enabled(False)
        try:
            scalar_engine = QueryEngine(db, encode=False)
            scalar = [
                (a.values, a.score, a.key)
                for a in scalar_engine.execute(TWO_HOP, ranking, method=method)
            ]
        finally:
            scores.set_enabled(True)
        if batched != scalar:
            raise SystemExit(f"FAIL: {name!r} fallback output diverged")
        checked[f"{name}/fallback"] = len(batched)
    return checked


def scoring_cases(db):
    """(label, bound maker, instances, alias, own_pairs) per timed node."""
    cases = []
    for label, text, alias, own_pairs in (
        ("two-hop leg (1 head var)", TWO_HOP, "E", (("a1", 0),)),
        ("wide node (2 head vars)", WIDE, "W", (("a", 0), ("w", 1))),
    ):
        query = parse_query(text)
        tree = build_join_tree(query)
        instances = full_reduce(tree, atom_instances(query, db))
        positions = {v: i for i, v in enumerate(query.head)}
        cases.append((label, positions, instances, alias, own_pairs))
    return cases


def time_scoring(db, weight, repeats: int):
    """The key computation itself, batched vs scalar, per node shape."""
    rankings = {
        "SUM": SumRanking(weight),
        "MIN": MinRanking(weight),
        "MAX": MaxRanking(weight),
        "AVG": AvgRanking(weight),
    }
    rows_out = []
    record = {}
    batched_total = 0.0
    scalar_total = 0.0
    for label, positions, instances, alias, own_pairs in scoring_cases(db):
        for rname, ranking in rankings.items():
            bound = ranking.bind(positions)
            rows = instances[alias]
            batched = batched_node_keys(bound, instances, alias, own_pairs)
            scalar = [
                bound.key([(v, row[p]) for v, p in own_pairs]) for row in rows
            ]
            if batched != scalar:
                raise SystemExit(
                    f"FAIL: batched keys diverged from scalar on {label} / {rname}"
                )
            started = time.perf_counter()
            for _ in range(repeats):
                batched_node_keys(bound, instances, alias, own_pairs)
            batched_s = (time.perf_counter() - started) / repeats
            started = time.perf_counter()
            for _ in range(repeats):
                [bound.key([(v, row[p]) for v, p in own_pairs]) for row in rows]
            scalar_s = (time.perf_counter() - started) / repeats
            batched_total += batched_s
            scalar_total += scalar_s
            speedup = scalar_s / batched_s if batched_s else float("inf")
            rows_out.append(
                (
                    f"{label} / {rname}",
                    str(len(rows)),
                    f"{scalar_s * 1e3:.2f}",
                    f"{batched_s * 1e3:.2f}",
                    f"{speedup:.2f}x",
                )
            )
            record[f"{label}/{rname}"] = {
                "rows": len(rows),
                "scalar_seconds": round(scalar_s, 6),
                "batched_seconds": round(batched_s, 6),
                "speedup": round(speedup, 4),
            }
    total_speedup = scalar_total / batched_total if batched_total else float("inf")
    rows_out.append(
        (
            "scoring total",
            "-",
            f"{scalar_total * 1e3:.2f}",
            f"{batched_total * 1e3:.2f}",
            f"{total_speedup:.2f}x",
        )
    )
    return rows_out, record, scalar_total, batched_total, total_speedup


def time_preprocess(db, weight, repeats: int):
    """End-to-end enumerator preprocessing on warm reduced instances."""
    query = parse_query(TWO_HOP)
    ranking = SumRanking(weight)
    tree = build_join_tree(query)
    instances = full_reduce(tree, atom_instances(query, db))

    def one_pass() -> float:
        enum = AcyclicRankedEnumerator(
            query, db, ranking, instances=instances, already_reduced=True
        )
        started = time.perf_counter()
        enum.preprocess()
        return time.perf_counter() - started

    timings = {}
    for batch in (True, False):
        scores.set_enabled(batch)
        try:
            one_pass()  # warm the score/view caches once
            timings[batch] = min(one_pass() for _ in range(repeats))
        finally:
            scores.set_enabled(True)
    return timings[False], timings[True]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: tiny data, identity check, no speedup gate",
    )
    parser.add_argument("--scale", type=float, default=None, help="workload scale override")
    parser.add_argument("--repeats", type=int, default=5, help="timed passes per mode")
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help=f"fail below this scoring-phase speedup (default {TARGET_SPEEDUP} "
        "at default scale, skipped under --quick)",
    )
    args = parser.parse_args(argv)

    if not kernels.enabled():
        print("numpy unavailable — nothing to compare (install repro[fast])",
              file=sys.stderr)
        return 0 if args.quick else 1

    scale = args.scale if args.scale is not None else (0.02 if args.quick else 1.0)
    db, weight = make_workload(scale)

    # Full-output identity runs at a capped scale: the two-hop output is
    # quadratic in the property degrees, and the check enumerates it 40+
    # times.  The timed scoring phase below re-verifies batched == scalar
    # keys at the full workload scale before any timing.
    if scale > 0.05:
        identity_db, identity_weight = make_workload(0.05)
    else:
        identity_db, identity_weight = db, weight
    checked = check_identity(identity_db, identity_weight)
    print(f"identity ok: {len(checked)} ranked outputs batched == scalar "
          "(values, scores, keys, ties, order)")

    rows, record_phases, scalar_total, batched_total, speedup = time_scoring(
        db, weight, args.repeats
    )
    pre_scalar, pre_batched = time_preprocess(db, weight, args.repeats)
    pre_speedup = pre_scalar / pre_batched if pre_batched else float("inf")
    rows.append(
        (
            "preprocess (warm, SUM)",
            "-",
            f"{pre_scalar * 1e3:.2f}",
            f"{pre_batched * 1e3:.2f}",
            f"{pre_speedup:.2f}x",
        )
    )

    table = format_table(
        f"Ranked scoring [int-keyed zipf graph, |D|={db.size}, "
        f"repeats={args.repeats}]",
        ("phase", "rows", "scalar ms", "batched ms", "speedup"),
        rows,
        note="outputs verified identical before timing; score columns cached "
        "per store version (session-after-first-contact)",
    )
    print(table)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "ranked_scoring.txt"), "w") as fh:
        fh.write(table + "\n")

    min_speedup = args.min_speedup
    if min_speedup is None and not args.quick:
        min_speedup = TARGET_SPEEDUP
    record = {
        "workload": "int-keyed zipf two-hop + two-head-variable relation; "
        "SUM/MIN/MAX/AVG table weights",
        "scale": scale,
        "|D|": db.size,
        "repeats": args.repeats,
        "identity_checks": checked,
        "scoring": record_phases,
        "scoring_scalar_seconds": round(scalar_total, 6),
        "scoring_batched_seconds": round(batched_total, 6),
        "scoring_speedup": round(speedup, 4),
        "preprocess_warm": {
            "scalar_seconds": round(pre_scalar, 6),
            "batched_seconds": round(pre_batched, 6),
            "speedup": round(pre_speedup, 4),
        },
        "identical_output": True,  # enforced above
        "gate": {
            "target_speedup": min_speedup,
            "enforced": min_speedup is not None,
        },
        "quick": bool(args.quick),
    }
    with open(RECORD_JSON, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"record written to {RECORD_JSON}")

    if min_speedup is not None and speedup < min_speedup:
        print(
            f"FAIL: scoring-phase speedup {speedup:.2f}x < required "
            f"{min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    if min_speedup is not None:
        print(f"OK: {speedup:.2f}x on the scoring phase (>= {min_speedup:.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
