"""Figure 8 (a-d): large-scale datasets (Memetracker/Friendster), SUM.

Paper findings: on the large, heavily duplicated datasets none of the
engines produced even the top-10 within 5 hours; LinDelay finishes and
its runtime grows with k as the priority queues fill (fastest growth on
Memetracker, whose answer duplication is the heaviest).  Here the
engine is given an intermediate-tuple budget and its DNF is recorded
when the budget blows.
"""

import pytest

from repro.algorithms import EngineBaseline
from repro.bench import Measurement, measurements_table, time_top_k
from repro.core import AcyclicRankedEnumerator
from repro.workloads import three_hop, two_hop

from bench_utils import friendster, memetracker, write_report

K_SWEEP = (10, 100, 1000, 10000)

PANELS = {
    "memetracker_2hop": (memetracker, two_hop),
    "memetracker_3hop": (memetracker, three_hop),
    "friendster_2hop": (friendster, two_hop),
    "friendster_3hop": (friendster, three_hop),
}

# A deliberately tight budget: the paper's engines exhausted 128 GB on
# these workloads; the synthetic equivalents blow through this cap.
ENGINE_BUDGET = 400_000


def _lin_factory(workload, spec):
    ranking = workload.ranking(spec, kind="sum")
    return lambda: AcyclicRankedEnumerator(spec.query, workload.db, ranking)


@pytest.mark.parametrize("panel", ["memetracker_2hop", "friendster_2hop"])
def test_fig8_lindelay_top1000(benchmark, panel):
    workload_fn, qbuild = PANELS[panel]
    workload = workload_fn()
    spec = qbuild()
    factory = _lin_factory(workload, spec)
    benchmark.pedantic(lambda: factory().top_k(1000), rounds=2, iterations=1)


@pytest.mark.parametrize("panel", PANELS)
def test_fig8_report(benchmark, panel):
    workload_fn, qbuild = PANELS[panel]
    workload = workload_fn()
    spec = qbuild()

    def run() -> str:
        measurements = [
            time_top_k(_lin_factory(workload, spec), k, label="LinDelay")
            for k in K_SWEEP
        ]
        ranking = workload.ranking(spec, kind="sum")
        try:
            engine = time_top_k(
                lambda: EngineBaseline(
                    spec.query, workload.db, ranking, memory_limit_tuples=ENGINE_BUDGET
                ),
                10,
                label="engine",
            )
            engine_rows = [
                Measurement("engine", k, engine.seconds, engine.answers)
                for k in K_SWEEP
            ]
        except MemoryError:
            engine_rows = [
                Measurement("engine (DNF)", k, float("nan"), 0) for k in K_SWEEP
            ]
        return measurements_table(
            f"Figure 8 [{workload.name} {spec.name}] — SUM, |D|={workload.db.size}",
            measurements + engine_rows,
            note="paper: engines did not finish within 5h on these datasets",
        )

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(f"fig8_{panel}", text)
