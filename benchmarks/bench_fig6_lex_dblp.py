"""Figure 6 (a-d): LEXICOGRAPHIC ranking on the DBLP-like dataset.

Paper findings reproduced here:

1. the engine baseline's runtime is *identical* for SUM and LEX (it is
   rank-agnostic: the join/dedup phases dominate and never look at the
   ranking function);
2. the dedicated lexicographic algorithm (Algorithm 3, no priority
   queues) beats the general SUM machinery by ~2-3x when enumerating
   deep prefixes.
"""

import pytest

from repro.algorithms import EngineBaseline
from repro.bench import format_table, time_top_k
from repro.core import AcyclicRankedEnumerator, LexBacktrackEnumerator

from bench_utils import ENGINE_MEMORY_LIMIT, dblp, write_report
from bench_fig5_small_scale_sum import QUERIES


def _factories(workload, spec):
    lex_rank = workload.ranking(spec, kind="lex")
    sum_rank = workload.ranking(spec, kind="sum")
    weight = lex_rank.weight
    return {
        "LexBacktrack": lambda: LexBacktrackEnumerator(
            spec.query, workload.db, weight=weight
        ),
        "LinDelay-lex": lambda: AcyclicRankedEnumerator(
            spec.query, workload.db, lex_rank
        ),
        "LinDelay-sum": lambda: AcyclicRankedEnumerator(
            spec.query, workload.db, sum_rank
        ),
        "engine-lex": lambda: EngineBaseline(
            spec.query, workload.db, lex_rank, memory_limit_tuples=ENGINE_MEMORY_LIMIT
        ),
        "engine-sum": lambda: EngineBaseline(
            spec.query, workload.db, sum_rank, memory_limit_tuples=ENGINE_MEMORY_LIMIT
        ),
    }


@pytest.mark.parametrize("query", QUERIES)
def test_fig6_lex_backtrack_top1000(benchmark, query):
    workload = dblp()
    spec = QUERIES[query]()
    factory = _factories(workload, spec)["LexBacktrack"]
    benchmark.pedantic(lambda: factory().top_k(1000), rounds=3, iterations=1)


def test_fig6_report(benchmark):
    workload = dblp()

    def run() -> str:
        rows = []
        for qname, qbuild in QUERIES.items():
            spec = qbuild()
            factories = _factories(workload, spec)
            seconds = {}
            join_phase = {}
            for name, factory in factories.items():
                k = 10 if name.startswith("engine") else 1000
                try:
                    enum = factory()
                    start = __import__("time").perf_counter()
                    enum.top_k(k)
                    seconds[name] = __import__("time").perf_counter() - start
                    if name.startswith("engine"):
                        join_phase[name] = enum.join_seconds
                except MemoryError:
                    seconds[name] = float("nan")
                    join_phase[name] = float("nan")
            rows.append(
                [
                    qname,
                    seconds["LexBacktrack"],
                    seconds["LinDelay-lex"],
                    seconds["LinDelay-sum"],
                    join_phase["engine-lex"],
                    join_phase["engine-sum"],
                    seconds["engine-lex"],
                    seconds["engine-sum"],
                ]
            )
        return format_table(
            f"Figure 6 [{workload.name}] — LEX ranking (top-1000; engines top-10)",
            [
                "query",
                "LexBacktrack",
                "LinDelay-lex",
                "LinDelay-sum",
                "engine join (lex)",
                "engine join (sum)",
                "engine total (lex)",
                "engine total (sum)",
            ],
            rows,
            note="paper: engines rank-agnostic (identical join phase); LexBacktrack ~2-3x faster than sum machinery",
        )

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("fig6_lex_dblp", text)
