"""Parallel sharded enumeration: the scaling curve over shard counts.

The scenario the :mod:`repro.parallel` subsystem exists for: full ranked
enumeration of the paper's *large-scale* workload (the Memetracker-like
dataset of Figure 8, whose heavy answer duplication makes enumeration
the dominant cost), executed serially vs. hash-partitioned across
worker processes with an order-preserving merge.

Every sharded run is verified **identical to the serial output** —
same answers, same scores, same order, ties included — before any
timing is reported; the speedup column is meaningless without that
guarantee.

Cost anatomy (why the curve scales): per-shard enumeration — the
``O(|output| · delay)`` bulk — parallelises across cores, while the
parent pays the serial residue: one ``O(|D|)`` partition pass plus the
``O(|output| · log shards)`` merge.  On this workload the residue is
roughly a quarter of the serial runtime, so ~3x at 4 shards is the
expected plateau **given 4 physical cores**.  Wall-clock speedup is
core-bound: on a single-CPU machine the sharded run degenerates to the
serial work plus overhead, which is why the speedup gate below is
conditioned on ``os.cpu_count()``.

Run:  PYTHONPATH=src python benchmarks/bench_parallel_scaling.py [--quick]

``--quick`` shrinks the dataset and skips process workers (CI smoke);
``--min-speedup X`` exits non-zero unless the measured speedup at the
highest shard count reaches ``X`` — enforced automatically (target
2.5x at 4 shards) when the machine has at least as many cores as
shards, skipped with a notice otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.bench import format_table  # noqa: E402
from repro.core.planner import enumerate_ranked  # noqa: E402
from repro.data.partition import partition_query  # noqa: E402
from repro.parallel import execute_sharded  # noqa: E402
from repro.workloads import make_memetracker_like, two_hop  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
#: Machine-readable curve, always written (ROADMAP bench item): the
#: measured speedups land here even on boxes where the wall-clock gate
#: cannot be enforced, so any multi-core run leaves a record behind.
CURVE_JSON = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_parallel.json")

#: The acceptance target: speedup at the highest shard count, given
#: enough cores (ISSUE 2 asks for >= 2.5x at 4 shards).
TARGET_SPEEDUP = 2.5


def run_curve(
    scale: float, shard_counts: list[int], backend: str, mode: str = "pickle"
) -> tuple[str, dict, dict]:
    workload = make_memetracker_like(scale=scale, seed=2)
    spec = two_hop()
    ranking = workload.ranking(spec, kind="sum")

    db = workload.db
    snap_tmp = None
    if mode == "snapshot":
        # Process workers map the snapshot files instead of unpickling
        # shard rows (repro.storage.persist); the curve then measures
        # the by-reference shipping path end to end.
        import tempfile

        import repro

        snap_tmp = tempfile.mkdtemp(prefix="repro-parallel-snap-")
        db.save(os.path.join(snap_tmp, "snap"))
        db = repro.open_database(os.path.join(snap_tmp, "snap"))

    started = time.perf_counter()
    serial = enumerate_ranked(spec.query, db, ranking)
    serial_seconds = time.perf_counter() - started
    serial_pairs = [(a.values, a.score) for a in serial]

    partition = partition_query(spec.query, db, max(shard_counts))
    rows = [
        (
            "serial",
            f"{serial_seconds:.3f}",
            "1.00x",
            str(len(serial)),
            "(baseline)",
        )
    ]
    speedups: dict[int, float] = {}
    shard_seconds: dict[int, float] = {}
    for shards in shard_counts:
        started = time.perf_counter()
        answers = execute_sharded(
            spec.query,
            db,
            ranking,
            shards=shards,
            backend=backend,
        )
        seconds = time.perf_counter() - started
        identical = [(a.values, a.score) for a in answers] == serial_pairs
        if not identical:
            raise SystemExit(
                f"FAIL: sharded output (shards={shards}, backend={backend}) "
                "diverged from the serial ranked order"
            )
        speedups[shards] = serial_seconds / seconds if seconds else float("inf")
        shard_seconds[shards] = seconds
        rows.append(
            (
                f"shards={shards}",
                f"{seconds:.3f}",
                f"{speedups[shards]:.2f}x",
                str(len(answers)),
                "identical",
            )
        )

    if snap_tmp is not None:
        import shutil

        shutil.rmtree(snap_tmp, ignore_errors=True)

    table = format_table(
        f"Parallel scaling [memetracker-like 2hop, |D|={db.size}, "
        f"|output|={len(serial)}, backend={backend}, mode={mode}, "
        f"cores={os.cpu_count()}]",
        ("run", "seconds", "speedup", "answers", "vs serial"),
        rows,
        note=f"partition: {partition.describe()}",
    )
    record = {
        "workload": "memetracker-like two-hop",
        "scale": scale,
        "|D|": db.size,
        "answers": len(serial),
        "backend": backend,
        "mode": mode,
        "cores": os.cpu_count(),
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 6),
        "curve": [
            {
                "shards": shards,
                "seconds": round(shard_seconds[shards], 6),
                "speedup": round(speedups[shards], 4),
                "identical_to_serial": True,  # enforced above
            }
            for shards in shard_counts
        ],
        "partition": partition.describe(),
    }
    return table, speedups, record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke: tiny data, in-process backend")
    parser.add_argument("--scale", type=float, default=None, help="workload scale override")
    parser.add_argument(
        "--backend",
        choices=("serial", "threads", "processes"),
        default=None,
        help="worker backend (default: processes; serial under --quick)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        nargs="*",
        default=None,
        metavar="N",
        help="shard counts to sweep (default: 1 2 4)",
    )
    parser.add_argument(
        "--mode",
        choices=("pickle", "snapshot"),
        default="pickle",
        help="how process workers receive their shard: pickled rows "
        "(default) or a saved snapshot reopened memory-mapped",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail unless the top shard count reaches this speedup "
        f"(default: {TARGET_SPEEDUP} when cores >= shards, else skipped)",
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (0.15 if args.quick else 0.6)
    backend = args.backend or ("serial" if args.quick else "processes")
    shard_counts = args.shards or ([1, 2] if args.quick else [1, 2, 4])

    table, speedups, record = run_curve(scale, shard_counts, backend, args.mode)
    print(table)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "parallel_scaling.txt"), "w") as fh:
        fh.write(table + "\n")

    top = max(shard_counts)
    cores = os.cpu_count() or 1
    min_speedup = args.min_speedup
    if min_speedup is None and not args.quick and cores >= top and backend == "processes":
        min_speedup = TARGET_SPEEDUP
    # The measured curve is always recorded, gate or no gate: a 1-core
    # box still documents output identity and the overhead it paid, and
    # any multi-core run closes the ROADMAP item with real numbers.
    record["quick"] = bool(args.quick)
    record["gate"] = {
        "target_speedup": min_speedup,
        "enforced": min_speedup is not None,
        "reason_skipped": (
            None
            if min_speedup is not None
            else f"{cores} core(s) for {top} shards / quick mode"
        ),
    }
    with open(os.path.normpath(CURVE_JSON), "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"curve written to {os.path.normpath(CURVE_JSON)}")
    if min_speedup is not None:
        if speedups[top] < min_speedup:
            print(
                f"FAIL: speedup at {top} shards is {speedups[top]:.2f}x "
                f"< required {min_speedup:.2f}x",
                file=sys.stderr,
            )
            return 1
        print(f"OK: {speedups[top]:.2f}x at {top} shards (>= {min_speedup:.2f}x)")
    elif cores < top:
        print(
            f"note: speedup gate skipped — {cores} core(s) available for {top} "
            f"shards; wall-clock scaling needs >= {top} cores "
            "(output identity was verified)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
