"""Figure 10 (table): cyclic queries on the DBLP-like dataset, SUM.

Paper layout: rows four/six/eight cycle + bowtie, columns k = 10..10^4,
cells = seconds.  Expected shape: cost ordered four < six < eight <
bowtie (more/larger width-2 bags to materialise) with mild growth in k;
the fastest engine needed minutes for the four-cycle and DNF'd beyond
(the GHD preprocessing is the dominant, k-independent cost here).
"""

import pytest

from repro.bench import format_table, time_top_k
from repro.core import CyclicRankedEnumerator
from repro.query import find_ghd
from repro.workloads import bipartite_cycle, bowtie

from bench_utils import dblp_cyclic, write_report

K_SWEEP = (10, 100, 1000)

QUERIES = {
    "four cycle": lambda: bipartite_cycle(2),
    "six cycle": lambda: bipartite_cycle(3),
    "eight cycle": lambda: bipartite_cycle(4),
    "bowtie": bowtie,
}


def _factory(workload, spec):
    ranking = workload.ranking(spec, kind="sum")
    ghd = find_ghd(spec.query)  # cached across runs, like a query plan
    return lambda: CyclicRankedEnumerator(spec.query, workload.db, ranking, ghd=ghd)


def test_fig10_four_cycle_top10(benchmark):
    workload = dblp_cyclic()
    spec = QUERIES["four cycle"]()
    factory = _factory(workload, spec)
    benchmark.pedantic(lambda: factory().top_k(10), rounds=2, iterations=1)


def test_fig10_report(benchmark):
    workload = dblp_cyclic()

    def run() -> str:
        rows = []
        for qname, qbuild in QUERIES.items():
            spec = qbuild()
            factory = _factory(workload, spec)
            row = [qname]
            for k in K_SWEEP:
                row.append(time_top_k(factory, k).seconds)
            rows.append(row)
        return format_table(
            f"Figure 10 [{workload.name}, |D|={workload.db.size}] — cyclic queries, SUM",
            ["query"] + [f"k={k}" for k in K_SWEEP],
            rows,
            note="paper shape: four < six < eight < bowtie, mild growth in k",
        )

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("fig10_cyclic_dblp", text)
