"""Warm ranked queries under writes: delta maintenance vs cold rebuild.

The point of the delta subsystem (docs/incremental.md): a write burst
should not cost a warm engine its state.  A cold ranked query pays for
dictionary construction, relation encoding, access-path and score-view
builds, the full reducer and enumeration; after an append burst the
delta path replays just the burst through each layer, and rebuild work
is confined to the relation the burst touched.

Workload: a Memetracker-like graph with fat string keys — a large
``E(user, post)`` follow table and a much smaller ``F(post, tag)``
annotation table — under an anchored ranked SUM top-k query (one user's
tag feed).  The engine answers once cold; then repeated bursts of new
annotations, each 0.1% of the database, land in single batches, and the
very next query after each burst is timed.  Every post-burst answer is
verified bit-identical (values, scores, order) to a fresh engine built
cold on the mutated data, and the stats counters must show every one of
those queries was served by the delta path, never a rebuild.

Run:  PYTHONPATH=src python benchmarks/bench_incremental.py [--quick]

``--quick`` shrinks the data for CI (identity + delta-path checks, no
ratio gate); at default scale the acceptance gate requires the median
post-burst warm query to cost at most 5% of the cold query.  Measured
numbers are always written to ``BENCH_incremental.json`` at the repo
root.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import random
import statistics
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.bench import format_table  # noqa: E402
from repro.core.ranking import SumRanking, TableWeight  # noqa: E402
from repro.data import Database  # noqa: E402
from repro.engine import QueryEngine  # noqa: E402
from repro.workloads.generators import zipf_bipartite  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RECORD_JSON = os.path.normpath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_incremental.json")
)

#: Acceptance gate at default scale (ISSUE 7): the warm ranked query
#: right after a 0.1% append burst costs at most this fraction of cold.
TARGET_RATIO = 0.05
BURST_FRACTION = 0.001
BURST_ROUNDS = 5
K = 10


def make_workload(scale: float, seed: int = 11):
    """Follows + annotations with URL/tag string keys, plus the ranking.

    Returns ``(db, ranking, query_text)``; the query anchors on one
    mid-degree user so the reduced instances stay small — cold cost is
    dominated by the storage/reducer layers, which is exactly what the
    delta path is supposed to save.
    """
    n_users = max(int(12000 * scale), 60)
    n_posts = max(int(6000 * scale), 30)
    n_edges = max(int(36000 * scale), 120)
    n_annots = max(int(3000 * scale), 40)
    raw = zipf_bipartite(
        n_users, n_posts, n_edges, skew_left=1.0, skew_right=1.0, seed=seed
    )
    edges = [
        (
            f"http://blog.example.org/2009/04/user/{a:07d}/profile",
            f"http://media.example.org/2009/04/post/{p:07d}/index.html",
        )
        for a, p in raw
    ]
    rng = random.Random(seed)
    posts = sorted({p for _, p in edges})
    tags = [f"topic/{i:04d}" for i in range(200)]
    annots = [
        (rng.choice(posts), rng.choice(tags)) for _ in range(n_annots)
    ]
    db = Database()
    db.add_relation("E", ("user", "post"), edges)
    db.add_relation("F", ("post", "tag"), annots)

    degrees: dict[str, int] = {}
    for user, _post in edges:
        degrees[user] = degrees.get(user, 0) + 1
    weights = {u: math.log2(1 + d) for u, d in degrees.items()}
    weights.update({t: (i % 17) / 7.0 for i, t in enumerate(tags)})
    ranking = SumRanking(TableWeight({}, default_table=weights))

    # Anchor: the lowest-degree user (ties broken by name) among those
    # whose posts carry the most annotations — selective, non-empty.
    annotated = {p for p, _t in annots}
    hits: dict[str, int] = {}
    for user, post in edges:
        if post in annotated:
            hits[user] = hits.get(user, 0) + 1
    anchor = min(
        (u for u in hits if degrees[u] <= 4),
        key=lambda u: (-hits[u], u),
        default=min(degrees, key=lambda u: (degrees[u], u)),
    )
    query = f'Q(t) :- E("{anchor}", p), F(p, t)'
    return db, ranking, query


def answers(engine: QueryEngine, query: str, ranking) -> list[tuple]:
    return [(a.values, a.score) for a in engine.execute(query, ranking, k=K)]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: tiny data, identity + delta-path checks, no ratio gate",
    )
    parser.add_argument("--scale", type=float, default=None, help="workload scale override")
    parser.add_argument(
        "--max-ratio", type=float, default=None,
        help=f"fail above this warm/cold cost ratio (default {TARGET_RATIO} "
        "at default scale, skipped under --quick)",
    )
    args = parser.parse_args(argv)

    scale = args.scale if args.scale is not None else (0.05 if args.quick else 1.0)
    db, ranking, query = make_workload(scale)
    rng = random.Random(2009)
    burst_rows = max(int(db.size * BURST_FRACTION), 1)

    engine = QueryEngine(db, encode=True)
    started = time.perf_counter()
    answers(engine, query, ranking)
    cold_seconds = time.perf_counter() - started

    warm_rounds: list[float] = []
    annots = list(db["F"].tuples)
    for _ in range(BURST_ROUNDS):
        db["F"].add_rows([rng.choice(annots) for _ in range(burst_rows)])
        started = time.perf_counter()
        warm = answers(engine, query, ranking)
        warm_rounds.append(time.perf_counter() - started)
        # Bit-identical to a cold rebuild on the mutated data — checked
        # outside the timed region, every round.
        if warm != answers(QueryEngine(db, encode=True), query, ranking):
            raise SystemExit(
                "FAIL: delta-maintained answers diverged from cold rebuild"
            )
    if engine.stats.delta_applies < BURST_ROUNDS:
        raise SystemExit(
            f"FAIL: only {engine.stats.delta_applies}/{BURST_ROUNDS} post-burst "
            "queries were served by the delta path"
        )

    warm_seconds = statistics.median(warm_rounds)
    ratio = warm_seconds / cold_seconds if cold_seconds else float("inf")
    rebuild_engine = QueryEngine(db, encode=True)
    started = time.perf_counter()
    answers(rebuild_engine, query, ranking)
    rebuild_seconds = time.perf_counter() - started

    table = format_table(
        f"Incremental maintenance [follows+annotations, |D|={db.size}, "
        f"{BURST_ROUNDS} bursts x {burst_rows} rows ({BURST_FRACTION:.1%})]",
        ("phase", "seconds", "vs cold"),
        [
            ("cold ranked query", f"{cold_seconds:.4f}", "1.00"),
            (
                "warm query after burst (median)",
                f"{warm_seconds:.4f}",
                f"{ratio:.4f}",
            ),
            (
                "cold rebuild after bursts",
                f"{rebuild_seconds:.4f}",
                f"{rebuild_seconds / cold_seconds:.4f}" if cold_seconds else "inf",
            ),
        ],
        note="every post-burst answer verified identical to a cold rebuild; "
        f"delta path confirmed via stats (delta_applies="
        f"{engine.stats.delta_applies}, invalidations="
        f"{engine.stats.invalidations})",
    )
    print(table)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "incremental.txt"), "w") as fh:
        fh.write(table + "\n")

    max_ratio = args.max_ratio
    if max_ratio is None and not args.quick:
        max_ratio = TARGET_RATIO
    record = {
        "workload": "memetracker-like follows+annotations, anchored SUM top-k",
        "scale": scale,
        "|D|": db.size,
        "k": K,
        "burst_rows": burst_rows,
        "burst_fraction": BURST_FRACTION,
        "burst_rounds": BURST_ROUNDS,
        "cold_seconds": round(cold_seconds, 6),
        "warm_after_burst_seconds": [round(s, 6) for s in warm_rounds],
        "warm_after_burst_median_seconds": round(warm_seconds, 6),
        "rebuild_after_bursts_seconds": round(rebuild_seconds, 6),
        "warm_over_cold_ratio": round(ratio, 6),
        "identical_output": True,  # enforced every round above
        "delta_applies": engine.stats.delta_applies,
        "gate": {"max_ratio": max_ratio, "enforced": max_ratio is not None},
        "quick": bool(args.quick),
    }
    with open(RECORD_JSON, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"record written to {RECORD_JSON}")

    if max_ratio is not None and ratio > max_ratio:
        print(
            f"FAIL: warm-after-burst cost ratio {ratio:.4f} > allowed "
            f"{max_ratio:.4f}",
            file=sys.stderr,
        )
        return 1
    if max_ratio is not None:
        print(f"OK: {ratio:.4f} warm/cold ratio (<= {max_ratio:.4f})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
