"""Appendix B: the delay blow-up of reusing full-query algorithms.

The adversarial instance: ℓ star relations R_i(X_i, Y) whose N values
all attach to a single hub Y value.  The projected output π_{X_1} has N
answers, but the full join has N^ℓ results — Algorithm 6 (full-query
enumeration + dedup) must consume N^(ℓ-1) full results *per answer*,
while LinDelay's work per answer stays flat.  This regenerates the
paper's Ω(|D|^(ℓ-1)) separation as a measured table.
"""

import pytest

from repro.algorithms import FullQueryRankedBaseline
from repro.bench import format_table, time_top_k
from repro.core import AcyclicRankedEnumerator
from repro.data import Database
from repro.query import parse_query

from bench_utils import write_report


def adversarial_instance(n: int, ell: int):
    db = Database()
    for i in range(1, ell + 1):
        db.add_relation(f"R{i}", ("x", "y"), [(x, 0) for x in range(n)])
    body = ", ".join(f"R{i}(x{i}, y)" for i in range(1, ell + 1))
    query = parse_query(f"Q(x1) :- {body}")
    return query, db


@pytest.mark.parametrize("n", [10, 20])
def test_appendixB_lindelay_flat(benchmark, n):
    query, db = adversarial_instance(n, 3)
    benchmark.pedantic(
        lambda: AcyclicRankedEnumerator(query, db).all(), rounds=3, iterations=1
    )


def test_appendixB_report(benchmark):
    def run() -> str:
        rows = []
        ell = 3
        for n in (10, 20, 30):
            query, db = adversarial_instance(n, ell)
            existing = FullQueryRankedBaseline(query, db)
            t_existing = time_top_k(lambda: existing.fresh(), None).seconds
            baseline = existing.fresh()
            baseline.all()
            lin = AcyclicRankedEnumerator(query, db)
            t_lin = time_top_k(lambda: AcyclicRankedEnumerator(query, db), None).seconds
            lin.all()
            rows.append(
                [
                    n,
                    n,  # projected answers
                    baseline.full_results_consumed,
                    t_existing,
                    lin.heap_stats.operations,
                    t_lin,
                ]
            )
        return format_table(
            f"Appendix B — Algorithm 6 vs LinDelay on the ℓ={ell} hub instance",
            [
                "N",
                "answers",
                "full results consumed (Alg 6)",
                "Alg 6 (s)",
                "LinDelay PQ ops",
                "LinDelay (s)",
            ],
            rows,
            note="Alg 6 consumes N^ℓ full results for N answers (Ω(|D|^(ℓ-1)) delay); LinDelay stays linear",
        )

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("appendixB_blowup", text)


def test_appendixB_growth_is_superlinear(benchmark):
    """Shape assertion: Algorithm 6's consumption grows cubically (ℓ=3)."""

    def run():
        counts = []
        for n in (6, 12):
            query, db = adversarial_instance(n, 3)
            baseline = FullQueryRankedBaseline(query, db)
            baseline.all()
            counts.append(baseline.full_results_consumed)
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert counts[0] == 6**3 and counts[1] == 12**3
