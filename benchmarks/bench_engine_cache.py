"""Engine session cache: cold per-query construction vs. warm re-execution.

The repeated-query scenario the :mod:`repro.engine` layer exists for: a
session issues the same small set of queries over and over (think a
served dashboard or an API endpoint).  The *cold* path pays the full
per-query pipeline every time — parse, classify, build the join tree,
bind the atoms, run the full reducer, build the queues, enumerate.  The
*warm* path runs the same workload through one
:class:`~repro.engine.QueryEngine`: parse/plan/reduction are cached, so
per-execution work shrinks to queue construction plus enumeration.

Results are verified identical between the two paths before any timing
is reported.

Run:  PYTHONPATH=src python benchmarks/bench_engine_cache.py [--quick]

``--quick`` shrinks the data and repetition counts for CI smoke runs;
``--min-speedup X`` exits non-zero unless the overall warm speedup
reaches ``X`` (used by the acceptance check, not by CI timing jobs).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.bench import format_table  # noqa: E402
from repro.core.planner import create_enumerator  # noqa: E402
from repro.data import Database  # noqa: E402
from repro.engine import QueryEngine  # noqa: E402
from repro.query import parse_query  # noqa: E402


def build_database(scale: int) -> Database:
    """A chain-join instance where the full reducer prunes heavily.

    ``R(x, y) ⋈ S(y, z) ⋈ T(z, w)`` with ``S`` selective: only a small
    band of ``y``/``z`` values joins through, so the reduced instance is
    tiny compared to ``|D|`` — the regime where per-query reduction cost
    dominates and a session cache pays off most.
    """
    n = 2000 * scale
    groups = 100 * scale
    band = 10
    db = Database()
    db.add_relation("R", ("x", "y"), [(i, i % groups) for i in range(n)])
    db.add_relation("S", ("y", "z"), [(y, y + 1) for y in range(band)])
    db.add_relation("T", ("z", "w"), [(j % groups, j) for j in range(n)])
    return db


#: The repeated workload: label -> (query text, k).
WORKLOAD = {
    "chain-topk": ("Q(x, w) :- R(x, y), S(y, z), T(z, w)", 10),
    "chain-proj": ("Q(x) :- R(x, y), S(y, z)", 10),
    "star-topk": ("Q(y1, y2) :- S(y1, z), S(y2, z)", 5),
}


def run_cold(db: Database, reps: int) -> tuple[dict[str, float], dict[str, list]]:
    """Per-query construction: parse + plan + build + enumerate, each time."""
    seconds: dict[str, float] = {}
    results: dict[str, list] = {}
    for label, (text, k) in WORKLOAD.items():
        started = time.perf_counter()
        for _ in range(reps):
            enum = create_enumerator(parse_query(text), db)
            answers = enum.top_k(k)
        seconds[label] = time.perf_counter() - started
        results[label] = [(a.values, a.score) for a in answers]
    return seconds, results


def run_warm(db: Database, reps: int) -> tuple[dict[str, float], dict[str, list], QueryEngine]:
    """One shared session engine across the whole workload."""
    engine = QueryEngine(db)
    seconds: dict[str, float] = {}
    results: dict[str, list] = {}
    for label, (text, k) in WORKLOAD.items():
        engine.execute(text, k=k)  # prime: first execution plans + warms
        started = time.perf_counter()
        for _ in range(reps):
            answers = engine.execute(text, k=k)
        seconds[label] = time.perf_counter() - started
        results[label] = [(a.values, a.score) for a in answers]
    return seconds, results, engine


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small CI smoke run")
    parser.add_argument("--scale", type=int, default=None, help="data scale factor")
    parser.add_argument("--reps", type=int, default=None, help="executions per query")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="exit non-zero unless the overall warm speedup reaches this factor",
    )
    args = parser.parse_args(argv)
    scale = args.scale or (1 if args.quick else 10)
    reps = args.reps or (3 if args.quick else 20)

    db = build_database(scale)
    cold_s, cold_r = run_cold(db, reps)
    warm_s, warm_r, engine = run_warm(db, reps)

    for label in WORKLOAD:
        if cold_r[label] != warm_r[label]:
            print(f"MISMATCH on {label}: warm results differ from cold", file=sys.stderr)
            return 1

    rows = []
    for label in WORKLOAD:
        per_cold = cold_s[label] / reps
        per_warm = warm_s[label] / reps
        rows.append(
            [label, per_cold * 1e3, per_warm * 1e3, per_cold / max(per_warm, 1e-12)]
        )
    total_cold = sum(cold_s.values())
    total_warm = sum(warm_s.values())
    speedup = total_cold / max(total_warm, 1e-12)
    rows.append(["TOTAL", total_cold / reps * 1e3, total_warm / reps * 1e3, speedup])

    print(
        format_table(
            f"Engine session cache — |D|={db.size}, {reps} executions/query "
            "(results verified identical)",
            ["query", "cold ms/exec", "warm ms/exec", "speedup"],
            rows,
            note="cold = parse+plan+reduce+build per execution; "
            "warm = shared QueryEngine session",
        )
    )
    print(f"\nengine stats: {engine.stats.snapshot()}")

    if args.min_speedup is not None and speedup < args.min_speedup:
        print(
            f"FAIL: overall warm speedup {speedup:.2f}x < required "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
