"""Figure 7 (a-d): the star-query preprocessing/enumeration tradeoff.

Paper layout: x-axis = extra space used by the preprocessing structure
(|O_H|), bars split into preprocessing and enumeration time for the
full (no-LIMIT) enumeration.  Expected shape: enumeration time falls as
ε (hence materialisation) grows; total time is not flat — the fully
materialised end wins on enumeration but pays heavy preprocessing.
"""

from functools import lru_cache

import pytest

from repro.bench import format_table, measure_phases
from repro.core import StarTradeoffEnumerator
from repro.workloads import make_dblp_like, make_imdb_like, star, two_hop

from bench_utils import dblp, imdb, write_report

EPSILONS = (0.0, 0.25, 0.5, 0.75, 1.0)


@lru_cache(maxsize=None)
def _dblp_small():
    # The 3-star's full output grows cubically in the hub degrees; a
    # smaller instance keeps the ε-sweep (which enumerates *everything*
    # per the paper's protocol) at benchmark-friendly runtimes.
    return make_dblp_like(scale=0.25, seed=0)


@lru_cache(maxsize=None)
def _imdb_small():
    return make_imdb_like(scale=0.15, seed=1)


PANELS = {
    "dblp_2hop": (dblp, two_hop),
    "imdb_2hop": (imdb, two_hop),
    "dblp_3star": (_dblp_small, lambda: star(3)),
    "imdb_3star": (_imdb_small, lambda: star(3)),
}


def _factory(workload, spec, epsilon):
    ranking = workload.ranking(spec, kind="sum")
    return lambda: StarTradeoffEnumerator(
        spec.query, workload.db, ranking, epsilon=epsilon
    )


@pytest.mark.parametrize("epsilon", [0.0, 0.5, 1.0])
def test_fig7_star_full_enumeration(benchmark, epsilon):
    workload, qbuild = PANELS["dblp_2hop"]
    workload = workload()
    spec = qbuild()
    factory = _factory(workload, spec, epsilon)
    benchmark.pedantic(lambda: factory().all(), rounds=2, iterations=1)


@pytest.mark.parametrize("panel", PANELS)
def test_fig7_report(benchmark, panel):
    workload_fn, qbuild = PANELS[panel]
    workload = workload_fn()
    spec = qbuild()

    def run() -> str:
        rows = []
        for epsilon in EPSILONS:
            m = measure_phases(_factory(workload, spec, epsilon), k=None)
            rows.append(
                [
                    epsilon,
                    m.extras["heavy_output_size"],
                    m.extras["phase_preprocess_seconds"],
                    m.extras["phase_enumerate_seconds"],
                    m.seconds,
                    m.answers,
                ]
            )
        return format_table(
            f"Figure 7 [{workload.name} {spec.name}] — space/time tradeoff (full enumeration)",
            ["epsilon", "|O_H| (space)", "preprocess (s)", "enumerate (s)", "total (s)", "answers"],
            rows,
            note="paper: enumeration time drops as materialised space grows",
        )

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(f"fig7_{panel}", text)
