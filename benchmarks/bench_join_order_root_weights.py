"""Three smaller experiments from §6.2 and Appendix G.1:

* **Join ordering** — join-order hints barely move the engine baseline
  (the final materialisation dominates; the paper measured a 1.8%
  change on Neo4j).
* **Root choice** — re-rooting LinDelay's join tree changes runtime by
  only a few percent (Appendix G.1 reports < 3%).
* **Logarithmic weights** — random vs log-degree weights produce
  indistinguishable runtimes (no algorithm looks at the weight
  distribution).
"""

import itertools
import statistics

import pytest

from repro.algorithms import EngineBaseline
from repro.bench import format_table, time_top_k
from repro.core import AcyclicRankedEnumerator
from repro.workloads import three_hop, two_hop

from bench_utils import ENGINE_MEMORY_LIMIT, dblp, write_report


def test_join_order_report(benchmark):
    workload = dblp()
    spec = three_hop()
    ranking = workload.ranking(spec, kind="sum")
    aliases = [a.alias for a in spec.query.atoms]

    atoms_by_alias = {a.alias: a for a in spec.query.atoms}

    def connected(order) -> bool:
        """Orders a real optimizer would consider: no cross joins."""
        seen = set(atoms_by_alias[order[0]].variables)
        for alias in order[1:]:
            vs = set(atoms_by_alias[alias].variables)
            if not (seen & vs):
                return False
            seen |= vs
        return True

    def run() -> str:
        rows = []
        connected_times = []
        for order in itertools.permutations(aliases):
            label = " -> ".join(order)
            is_connected = connected(order)
            if not is_connected:
                label += "  (cross join)"
            try:
                m = time_top_k(
                    lambda: EngineBaseline(
                        spec.query,
                        workload.db,
                        ranking,
                        join_order=order,
                        memory_limit_tuples=ENGINE_MEMORY_LIMIT,
                    ),
                    10,
                )
                rows.append([label, m.seconds])
                if is_connected:
                    connected_times.append(m.seconds)
            except MemoryError:
                rows.append([label, float("nan")])
        spread = (
            (max(connected_times) - min(connected_times)) / min(connected_times) * 100
            if connected_times
            else 0.0
        )
        rows.append(["spread over cross-join-free orders", f"{spread:.1f}%"])
        return format_table(
            f"§6.2 join-order hints [{workload.name} {spec.name}] — engine, top-10",
            ["join order", "seconds"],
            rows,
            note="paper: hints change engine runtime by ~2%; optimizers never pick cross joins",
        )

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("join_order", text)


def test_root_choice_report(benchmark):
    workload = dblp()
    spec = three_hop()
    ranking = workload.ranking(spec, kind="sum")

    def run() -> str:
        rows = []
        times = []
        for atom in spec.query.atoms:
            runs = [
                time_top_k(
                    lambda: AcyclicRankedEnumerator(
                        spec.query, workload.db, ranking, root=atom.alias
                    ),
                    10000,
                ).seconds
                for _ in range(3)
            ]
            best = min(runs)
            times.append(best)
            rows.append([atom.alias, best])
        spread = (max(times) - min(times)) / min(times) * 100
        rows.append(["relative spread", f"{spread:.0f}%"])
        return format_table(
            f"App. G.1 root choice [{workload.name} {spec.name}] — LinDelay, top-10^4",
            ["root", "seconds (best of 3)"],
            rows,
            note="paper: <3% difference across roots at equal width",
        )

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("root_choice", text)


def test_log_weights_report(benchmark):
    workload = dblp()
    spec = two_hop()

    def run() -> str:
        rows = []
        for scheme in ("random", "log"):
            ranking = workload.ranking(spec, kind="sum", scheme=scheme)
            runs = [
                time_top_k(
                    lambda: AcyclicRankedEnumerator(spec.query, workload.db, ranking),
                    None,
                ).seconds
                for _ in range(3)
            ]
            rows.append([scheme, statistics.median(runs)])
        return format_table(
            f"§6.2 weight schemes [{workload.name} {spec.name}] — full enumeration",
            ["weight scheme", "seconds (median of 3)"],
            rows,
            note="paper: identical execution times for random vs logarithmic weights",
        )

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("log_weights", text)
