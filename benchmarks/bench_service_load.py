"""Service-layer benchmark: cursor paging vs re-running, plus load p50/p99.

What the service layer is *for*, measured end to end over the real TCP
protocol against a live :class:`~repro.service.server.ReproServer`:

1. **Identity** — paging through a server-side cursor yields exactly the
   answers (values, scores, order) of a one-shot local
   :meth:`~repro.engine.QueryEngine.execute`, across rankings (SUM and
   LEX) and cursor backends (serial and threads-sharded).  Every timing
   below is meaningless without this, so it runs first and hard-fails.
2. **Pagination economics** — the tentpole number: fetching answers
   1000–1100 from a *warm* cursor costs ~100 enumeration delays, a
   re-run from scratch costs preprocessing plus 1100 delays.  The gate
   requires the warm page under 10% of the cold re-run.
3. **Concurrent load** — many client threads issue mixed ops against a
   server with a small admission limit; per-request latencies are
   aggregated into p50/p99, and admission-control counters (queue
   depth peaks, rejections) are recorded alongside.

The dataset is synthesised inline (a two-hop join with numeric keys) so
this module depends on nothing beyond the library itself — the CI
``service-smoke`` job runs ``--quick`` with no extra installs.

Run:  PYTHONPATH=src python benchmarks/bench_service_load.py [--quick]

Results land in ``benchmarks/results/service_load.txt`` (human table)
and ``BENCH_service.json`` (machine-readable, with the gate verdict).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import statistics
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.bench import format_table  # noqa: E402
from repro.core.ranking import LexRanking, SumRanking  # noqa: E402
from repro.data.database import Database  # noqa: E402
from repro.engine import QueryEngine  # noqa: E402
from repro.service import OverloadedError, ServerThread, connect  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RECORD_JSON = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_service.json")

QUERY = "q(a, c) :- r(a, b), s(b, c)"

#: The acceptance gate: warm-cursor page of answers 1000-1100 must cost
#: less than this fraction of the cold re-run that produces them.
TARGET_RATIO = 0.10


def build_database(n_left: int, n_right: int, fanout: int, seed: int) -> Database:
    """A two-hop join with numeric keys (so SUM and LEX both apply)."""
    rng = random.Random(seed)
    mids = max(n_left // fanout, 4)
    db = Database()
    db.add_relation(
        "r",
        ("a", "b"),
        [(rng.randrange(n_left * 10), rng.randrange(mids)) for _ in range(n_left)],
    )
    db.add_relation(
        "s",
        ("b", "c"),
        [(rng.randrange(mids), rng.randrange(n_right * 10)) for _ in range(n_right)],
    )
    return db


def _pairs(answers):
    return [(a.values, a.score) for a in answers]


# --------------------------------------------------------------------- #
# 1. identity: paged == one-shot, across rankings x backends
# --------------------------------------------------------------------- #
def check_identity(engine: QueryEngine, handle: ServerThread, k: int, page: int):
    """Page every (ranking x backend) case and compare to local execute."""
    cases = []
    rankings = {"sum": SumRanking(), "lex": LexRanking()}
    for rank_name, ranking in rankings.items():
        local = _pairs(engine.execute(QUERY, ranking, k=k))
        for backend, shards in (("serial", 1), ("threads", 3)):
            with connect(handle.host, handle.port) as client:
                cursor = client.query(
                    QUERY, rank=rank_name, k=k, shards=shards, backend=backend
                )
                paged = []
                for chunk in cursor.pages(page):
                    paged.extend(chunk)
                cursor.close()
            if paged != local:
                raise SystemExit(
                    f"FAIL: paged answers (rank={rank_name}, backend={backend}) "
                    "diverged from one-shot execute"
                )
            cases.append(
                {
                    "rank": rank_name,
                    "backend": backend,
                    "shards": shards,
                    "answers": len(paged),
                    "page": page,
                    "identical_to_execute": True,  # enforced above
                }
            )
    return cases


# --------------------------------------------------------------------- #
# 2. pagination economics: warm page vs cold re-run
# --------------------------------------------------------------------- #
def measure_pagination(handle: ServerThread, skip: int, page: int, repeats: int):
    """Best-of-``repeats``: fetch answers [skip, skip+page) both ways."""
    warm_best = cold_best = float("inf")
    warm_page = None
    with connect(handle.host, handle.port) as client:
        for _ in range(repeats):
            # Cold: one-shot execute of the first skip+page answers.
            started = time.perf_counter()
            cold = client.execute(QUERY, rank="sum", k=skip + page)
            cold_best = min(cold_best, time.perf_counter() - started)

            # Warm: a cursor already positioned at `skip` pays only the
            # enumeration delays of the page itself.
            cursor = client.query(QUERY, rank="sum")
            fetched = 0
            while fetched < skip:
                fetched += len(cursor.fetch(min(1000, skip - fetched)))
            started = time.perf_counter()
            warm = cursor.fetch(page)
            warm_seconds = time.perf_counter() - started
            cursor.close()
            if warm_seconds < warm_best:
                warm_best, warm_page = warm_seconds, warm
            if cold[skip : skip + page] != warm:
                raise SystemExit(
                    "FAIL: warm-cursor page != the same slice of the cold re-run"
                )
    return {
        "skip": skip,
        "page": page,
        "answers_in_page": len(warm_page or []),
        "warm_page_seconds": round(warm_best, 6),
        "cold_rerun_seconds": round(cold_best, 6),
        "ratio": round(warm_best / cold_best, 4) if cold_best else None,
    }


# --------------------------------------------------------------------- #
# 3. concurrent load: p50/p99 under admission control
# --------------------------------------------------------------------- #
def run_load(handle: ServerThread, clients: int, requests: int, k: int):
    """``clients`` threads x ``requests`` mixed ops; per-request latency."""
    latencies: list[float] = []
    rejected = [0]
    errors: list[str] = []
    lock = threading.Lock()

    def worker(worker_id: int) -> None:
        rng = random.Random(worker_id)
        try:
            with connect(
                handle.host, handle.port, tenant=f"tenant-{worker_id % 3}"
            ) as client:
                for _ in range(requests):
                    started = time.perf_counter()
                    try:
                        if rng.random() < 0.5:
                            client.execute(QUERY, rank="sum", k=k)
                        else:
                            cursor = client.query(QUERY, rank="sum", k=k)
                            cursor.fetch(k // 2 or 1)
                            cursor.fetch(k)
                            cursor.close()
                    except OverloadedError:
                        with lock:
                            rejected[0] += 1
                        continue
                    elapsed = time.perf_counter() - started
                    with lock:
                        latencies.append(elapsed)
        except Exception as exc:  # noqa: BLE001 - reported, fails the run
            with lock:
                errors.append(f"worker {worker_id}: {exc!r}")

    threads = [
        threading.Thread(target=worker, args=(i,), daemon=True)
        for i in range(clients)
    ]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - started
    if errors:
        raise SystemExit("FAIL: load workers errored: " + "; ".join(errors[:5]))
    if not latencies:
        raise SystemExit("FAIL: every load request was rejected")
    latencies.sort()

    def pct(p: float) -> float:
        return latencies[min(int(len(latencies) * p), len(latencies) - 1)]

    return {
        "clients": clients,
        "requests_per_client": requests,
        "completed": len(latencies),
        "rejected": rejected[0],
        "wall_seconds": round(wall, 4),
        "throughput_rps": round(len(latencies) / wall, 2) if wall else None,
        "p50_ms": round(pct(0.50) * 1e3, 3),
        "p99_ms": round(pct(0.99) * 1e3, 3),
        "mean_ms": round(statistics.fmean(latencies) * 1e3, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke: tiny data")
    parser.add_argument("--clients", type=int, default=None, help="load threads")
    parser.add_argument("--requests", type=int, default=None, help="ops per client")
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=None,
        help="fail when warm-page/cold-rerun exceeds this "
        f"(default {TARGET_RATIO}; gate skipped under --quick)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        n_left, n_right, fanout = 1500, 800, 12
        skip, page = 300, 60
        identity_k, load_k = 300, 20
        clients = args.clients or 4
        requests = args.requests or 4
        repeats = 2
    else:
        n_left, n_right, fanout = 12_000, 6_000, 16
        skip, page = 1000, 100
        identity_k, load_k = 2_000, 50
        clients = args.clients or 8
        requests = args.requests or 10
        repeats = 3

    db = build_database(n_left, n_right, fanout, seed=11)
    engine = QueryEngine(db)
    total = len(engine.execute(QUERY, SumRanking()))
    if total < skip + page:
        raise SystemExit(
            f"FAIL: workload too small ({total} answers < {skip + page}); "
            "raise the scale"
        )

    with ServerThread(
        engine, max_inflight=2, max_queue=64, max_live_cursors=32
    ) as handle:
        identity = check_identity(engine, handle, k=identity_k, page=97)
        pagination = measure_pagination(handle, skip=skip, page=page, repeats=repeats)
        load = run_load(handle, clients=clients, requests=requests, k=load_k)
        with connect(handle.host, handle.port) as client:
            server_stats = client.stats()

    max_ratio = args.max_ratio
    if max_ratio is None and not args.quick:
        max_ratio = TARGET_RATIO
    gate = {
        "target_ratio": max_ratio,
        "enforced": max_ratio is not None,
        "reason_skipped": None if max_ratio is not None else "quick mode",
    }

    rows = [
        (
            f"identity {c['rank']}/{c['backend']}",
            "-",
            "-",
            str(c["answers"]),
            "identical",
        )
        for c in identity
    ]
    rows.append(
        (
            f"warm page [{skip}:{skip + page}]",
            f"{pagination['warm_page_seconds']:.4f}",
            f"{pagination['ratio']:.1%} of cold",
            str(pagination["answers_in_page"]),
            "resumed heap",
        )
    )
    rows.append(
        (
            f"cold re-run k={skip + page}",
            f"{pagination['cold_rerun_seconds']:.4f}",
            "100%",
            str(skip + page),
            "(baseline)",
        )
    )
    rows.append(
        (
            f"load {clients}x{requests}",
            f"{load['wall_seconds']:.2f}",
            f"p50={load['p50_ms']}ms p99={load['p99_ms']}ms",
            str(load["completed"]),
            f"rejected={load['rejected']}",
        )
    )
    table = format_table(
        f"Service load [two-hop |D|={db.size}, answers={total}, "
        f"max_inflight=2, cores={os.cpu_count()}]",
        ("case", "seconds", "relative", "answers", "note"),
        rows,
        note="warm page = fetch on an open cursor; cold = one-shot execute over TCP",
    )
    print(table)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "service_load.txt"), "w") as fh:
        fh.write(table + "\n")

    record = {
        "workload": "synthetic two-hop",
        "|D|": db.size,
        "answers": total,
        "quick": bool(args.quick),
        "cores": os.cpu_count(),
        "identity": identity,
        "pagination": pagination,
        "load": load,
        "admission": server_stats.get("admission"),
        "cursors": server_stats.get("cursors"),
        "gate": gate,
    }
    with open(os.path.normpath(RECORD_JSON), "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"record written to {os.path.normpath(RECORD_JSON)}")

    if max_ratio is not None:
        if pagination["ratio"] is None or pagination["ratio"] >= max_ratio:
            print(
                f"FAIL: warm page cost {pagination['ratio']} of a cold re-run "
                f">= allowed {max_ratio}",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: warm page at {pagination['ratio']:.1%} of a cold re-run "
            f"(< {max_ratio:.0%})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
