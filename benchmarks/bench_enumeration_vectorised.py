"""Bulk top-k serving vs the per-answer heap loop (ISSUE 10).

The vectorised-enumeration layer finishes the batching work the score
columns started: join-tree combines run over key arrays
(``combine_key_arrays`` + ``_batched_combine``), the star structure
materialises ``O_H`` with array joins, and ``top_k(k)`` requests at or
below the engine threshold are served by one bulk kernel — array join,
array dedup, ``argpartition``-style selection — instead of queue builds
plus k priority-queue pops.  Every batched path is bit-identical to its
scalar twin or refuses into it.

This benchmark measures exactly that substitution on identical inputs:

* **identity** — the full ranked ``top_k`` output — values, scores,
  keys, ties, order — is compared between the bulk and heap paths over
  plain and encoded execution, serial and sharded, kernels on and off
  (the no-NumPy fallback), on both workload shapes;
* **enumeration phase** — serving ``top_k(k)`` from warm reduced
  instances (the engine's steady state): the heap side pays queue
  construction plus k pops, the bulk side one array pass — both sides
  with score columns and reducer kernels on, so only the enumeration
  machinery differs;
* the same comparison for the star tradeoff structure, where the heap
  side's preprocessing materialises ``O_H`` row by row and the bulk
  side builds it with array joins.

Run:  PYTHONPATH=src python benchmarks/bench_enumeration_vectorised.py [--quick]

``--quick`` shrinks the data for CI (identity check only); at default
scale the acceptance gate requires the bulk enumeration phase to be at
least 2x faster than the heap path on both workloads, recorded in
``BENCH_enumeration.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.algorithms.yannakakis import atom_instances, full_reduce  # noqa: E402
from repro.bench import format_table  # noqa: E402
from repro.core.acyclic import AcyclicRankedEnumerator  # noqa: E402
from repro.core.ranking import SumRanking, TableWeight  # noqa: E402
from repro.core.star import StarTradeoffEnumerator  # noqa: E402
from repro.data import Database  # noqa: E402
from repro.engine import QueryEngine  # noqa: E402
from repro.query import parse_query  # noqa: E402
from repro.query.jointree import build_join_tree  # noqa: E402
from repro.storage import kernels, scores  # noqa: E402
from repro.workloads.weights import random_weights  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
RECORD_JSON = os.path.normpath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_enumeration.json")
)

#: Acceptance gate at default scale (ISSUE 10): the bulk top-k serve at
#: least this much faster than the heap path's enumeration phase.
TARGET_SPEEDUP = 2.0

CHAIN4 = "Q(a, e) :- R1(a, b), R2(b, c), R3(c, d), R4(d, e)"
STAR3 = "Q(a1, a2, a3) :- R1(a1, b), R2(a2, b), R3(a3, b)"

K = 1000
STAR_DELTA = 10


def chain_workload(scale: float, seed: int = 7):
    """Four int-keyed chain relations with ~unit join fanout."""
    n = max(int(120_000 * scale), 400)
    rng = random.Random(seed)
    db = Database()
    for name, attrs in (
        ("R1", ("a", "b")),
        ("R2", ("b", "c")),
        ("R3", ("c", "d")),
        ("R4", ("d", "e")),
    ):
        db.add_relation(
            name, attrs, [(rng.randrange(n), rng.randrange(n)) for _ in range(n)]
        )
    weight = TableWeight({}, default_table=random_weights(range(n), seed=seed + 1))
    return db, weight


def star_workload(scale: float, seed: int = 23):
    """Three star legs: a long random tail plus a few heavy A-values.

    Heaviness is per A-value degree; the heavy rows' B values come from
    a small domain so heavy A-triples share join partners and ``O_H``
    is materially non-empty (the array-native build under test)."""
    n = max(int(40_000 * scale), 300)
    hub_deg = max(int(25 * min(scale, 1.0)), 12)
    rng = random.Random(seed)
    db = Database()
    for i in (1, 2, 3):
        rows = [(rng.randrange(n), rng.randrange(n)) for _ in range(n)]
        for hub in range(8):
            rows.extend((hub, rng.randrange(16)) for _ in range(hub_deg))
        db.add_relation(f"R{i}", (f"a{i}", "b"), rows)
    weight = TableWeight({}, default_table=random_weights(range(n), seed=seed + 1))
    return db, weight


def _output(answers):
    return [(a.values, a.score, a.key) for a in answers]


def check_identity(quick: bool) -> dict:
    """Bulk == heap over every execution mode; returns the checked matrix."""
    scale = 0.01
    chain_db, chain_weight = chain_workload(scale)
    star_db, star_weight = star_workload(scale)
    cases = (
        ("chain4", chain_db, CHAIN4, SumRanking(chain_weight), {}),
        ("chain4 desc", chain_db, CHAIN4, SumRanking(chain_weight, descending=True), {}),
        (
            "star3",
            star_db,
            STAR3,
            SumRanking(star_weight),
            {"method": "star", "delta": STAR_DELTA},
        ),
    )
    checked = {}
    for name, db, text, ranking, extra in cases:
        for encode in (False, True):
            for shards in (0, 3):
                if shards and name.startswith("star"):
                    continue  # the partitioner serves acyclic plans
                outputs = {}
                for bulk in (K, 0):
                    engine = QueryEngine(db, encode=encode, bulk_topk_max_k=bulk)
                    if shards > 1:
                        answers = engine.execute_parallel(
                            text, ranking, shards=shards, backend="serial", k=K, **extra
                        )
                    else:
                        answers = engine.execute(text, ranking, k=K, **extra)
                    outputs[bulk] = _output(answers)
                    if not shards:
                        served = engine.stats.bulk_topk_calls
                        if bulk and not served:
                            raise SystemExit(
                                f"FAIL: bulk kernel never served {name!r} "
                                f"(encode={encode})"
                            )
                        if not bulk and served:
                            raise SystemExit(
                                f"FAIL: bulk kernel ran with the threshold at 0 "
                                f"on {name!r}"
                            )
                if outputs[K] != outputs[0]:
                    raise SystemExit(
                        f"FAIL: bulk top-k diverged from the heap path on {name!r} "
                        f"(encode={encode}, shards={shards})"
                    )
                checked[f"{name}/encode={encode}/shards={shards}"] = len(outputs[K])

        # The no-NumPy environment: kernels and score columns disabled,
        # every batched path must refuse into its scalar twin.
        kernels.set_enabled(False)
        scores.set_enabled(False)
        try:
            engine = QueryEngine(db, bulk_topk_max_k=K)
            scalar = _output(engine.execute(text, ranking, k=K, **extra))
            if engine.stats.bulk_topk_calls:
                raise SystemExit(
                    f"FAIL: bulk kernel claims to have served {name!r} without NumPy"
                )
        finally:
            kernels.set_enabled(True)
            scores.set_enabled(True)
        engine = QueryEngine(db, bulk_topk_max_k=K)
        vectorised = _output(engine.execute(text, ranking, k=K, **extra))
        if vectorised != scalar:
            raise SystemExit(f"FAIL: {name!r} diverged with kernels disabled")
        checked[f"{name}/no-numpy"] = len(scalar)
    return checked


def time_chain(db, weight, repeats: int):
    """Serve ``top_k(K)`` from warm reduced instances, heap vs bulk."""
    query = parse_query(CHAIN4)
    ranking = SumRanking(weight)
    tree = build_join_tree(query)
    instances = full_reduce(tree, atom_instances(query, db))

    def serve(bulk: int):
        enum = AcyclicRankedEnumerator(
            query,
            db,
            ranking,
            instances=instances,
            already_reduced=True,
            bulk_topk_max_k=bulk,
        )
        started = time.perf_counter()
        answers = enum.top_k(K)
        return time.perf_counter() - started, answers

    _, heap_answers = serve(0)
    _, bulk_answers = serve(K)
    if _output(heap_answers) != _output(bulk_answers):
        raise SystemExit("FAIL: chain4 bulk top-k diverged from heap before timing")
    heap_s = min(serve(0)[0] for _ in range(repeats))
    bulk_s = min(serve(K)[0] for _ in range(repeats))
    return heap_s, bulk_s, len(bulk_answers)


def time_star(db, weight, repeats: int):
    """Cold star serve: row-at-a-time ``O_H`` vs array joins + bulk serve."""
    query = parse_query(STAR3)
    ranking = SumRanking(weight)

    def serve(bulk: int):
        enum = StarTradeoffEnumerator(
            query, db, ranking, delta=STAR_DELTA, bulk_topk_max_k=bulk
        )
        started = time.perf_counter()
        if bulk:
            answers = enum.top_k(K)
        else:
            # The heap path with the batched O_H build disabled: the
            # pre-vectorisation star serve (score columns still on).
            enabled = scores.enabled()
            scores.set_enabled(False)
            try:
                enum.preprocess()
            finally:
                scores.set_enabled(enabled)
            answers = enum.top_k(K)
        return time.perf_counter() - started, answers

    _, heap_answers = serve(0)
    _, bulk_answers = serve(K)
    if _output(heap_answers) != _output(bulk_answers):
        raise SystemExit("FAIL: star3 bulk top-k diverged from heap before timing")
    heap_s = min(serve(0)[0] for _ in range(repeats))
    bulk_s = min(serve(K)[0] for _ in range(repeats))
    return heap_s, bulk_s, len(bulk_answers)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: tiny data, identity check, no speedup gate",
    )
    parser.add_argument("--scale", type=float, default=None, help="workload scale override")
    parser.add_argument("--repeats", type=int, default=5, help="timed passes per mode")
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help=f"fail below this enumeration-phase speedup (default {TARGET_SPEEDUP} "
        "at default scale, skipped under --quick)",
    )
    args = parser.parse_args(argv)

    if not kernels.enabled():
        print("numpy unavailable — nothing to compare (install repro[fast])",
              file=sys.stderr)
        return 0 if args.quick else 1

    checked = check_identity(args.quick)
    print(f"identity ok: {len(checked)} ranked top-k outputs bulk == heap "
          "(values, scores, keys, ties, order)")

    scale = args.scale if args.scale is not None else (0.01 if args.quick else 1.0)
    chain_db, chain_weight = chain_workload(scale)
    star_db, star_weight = star_workload(scale)

    rows_out = []
    record_phases = {}
    speedups = {}
    for name, (heap_s, bulk_s, answers) in (
        ("chain4 top-k serve", time_chain(chain_db, chain_weight, args.repeats)),
        ("star3 top-k serve", time_star(star_db, star_weight, args.repeats)),
    ):
        speedup = heap_s / bulk_s if bulk_s else float("inf")
        key = name.split()[0]
        speedups[key] = speedup
        rows_out.append(
            (
                name,
                str(answers),
                f"{heap_s * 1e3:.2f}",
                f"{bulk_s * 1e3:.2f}",
                f"{speedup:.2f}x",
            )
        )
        record_phases[key] = {
            "k": K,
            "answers": answers,
            "heap_seconds": round(heap_s, 6),
            "bulk_seconds": round(bulk_s, 6),
            "speedup": round(speedup, 4),
        }

    table = format_table(
        f"Vectorised enumeration [k={K}, chain |D|={chain_db.size}, "
        f"star |D|={star_db.size}, repeats={args.repeats}]",
        ("phase", "answers", "heap ms", "bulk ms", "speedup"),
        rows_out,
        note="outputs verified bit-identical before timing; heap side keeps "
        "score columns and reducer kernels on — only the enumeration "
        "machinery differs",
    )
    print(table)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "enumeration_vectorised.txt"), "w") as fh:
        fh.write(table + "\n")

    min_speedup = args.min_speedup
    if min_speedup is None and not args.quick:
        min_speedup = TARGET_SPEEDUP
    record = {
        "workload": "chain4 (~unit fanout, int keys) + star3 (hubbed legs, "
        f"delta={STAR_DELTA}); SUM table weights; k={K}",
        "scale": scale,
        "chain_|D|": chain_db.size,
        "star_|D|": star_db.size,
        "repeats": args.repeats,
        "identity_checks": checked,
        "phases": record_phases,
        "identical_output": True,  # enforced above
        "gate": {
            "target_speedup": min_speedup,
            "enforced": min_speedup is not None,
        },
        "quick": bool(args.quick),
    }
    with open(RECORD_JSON, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(f"record written to {RECORD_JSON}")

    if min_speedup is not None:
        slow = {k: s for k, s in speedups.items() if s < min_speedup}
        if slow:
            print(
                "FAIL: enumeration-phase speedup below "
                f"{min_speedup:.2f}x on: "
                + ", ".join(f"{k}={s:.2f}x" for k, s in slow.items()),
                file=sys.stderr,
            )
            return 1
        print(
            "OK: "
            + ", ".join(f"{k} {s:.2f}x" for k, s in speedups.items())
            + f" on the enumeration phase (>= {min_speedup:.2f}x)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
