"""Figure 9 (table): LDBC-like UCQ scalability vs scale factor.

Paper layout: rows Q3/Q10/Q11, columns SF = 10..50, cells = seconds to
the ranked answer set (engines needed > 3h even at SF = 10).  Expected
shape: runtime grows ~linearly with the scale factor, Q3 > Q10 > Q11.
"""

import pytest

from repro.bench import format_table, time_top_k
from repro.core import UnionRankedEnumerator
from repro.workloads import ldbc_q3_like, ldbc_q10_like, ldbc_q11_like

from bench_utils import ldbc, write_report

SCALE_FACTORS = (2, 4, 6, 8, 10)

QUERIES = {
    "Q3": ldbc_q3_like,
    "Q10": ldbc_q10_like,
    "Q11": ldbc_q11_like,
}


def _factory(workload, spec):
    ranking = workload.ranking(spec, kind="sum")
    return lambda: UnionRankedEnumerator(spec.query, workload.db, ranking)


@pytest.mark.parametrize("query", QUERIES)
def test_fig9_ldbc_top1000_sf2(benchmark, query):
    workload = ldbc(2)
    spec = QUERIES[query]()
    factory = _factory(workload, spec)
    benchmark.pedantic(lambda: factory().top_k(1000), rounds=2, iterations=1)


def test_fig9_report(benchmark):
    def run() -> str:
        rows = []
        for qname, qbuild in QUERIES.items():
            row = [qname]
            for sf in SCALE_FACTORS:
                workload = ldbc(sf)
                spec = qbuild()
                row.append(time_top_k(_factory(workload, spec), None).seconds)
            rows.append(row)
        return format_table(
            "Figure 9 — LDBC-like UCQ scalability (full ranked answer set, seconds)",
            ["query"] + [f"SF={sf}" for sf in SCALE_FACTORS],
            rows,
            note="paper: linear growth in SF; engines needed >3h even at the smallest SF",
        )

    text = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report("fig9_ldbc", text)
