"""Command-line interface: ranked enumeration over CSV data.

Usage (also via ``python -m repro``)::

    repro "Q(a1, a2) :- E(a1, p), E(a2, p)" --data ./csvdir --k 10
    repro "Q(x, y) :- E(x, p), E(y, p)" --data ./csvdir \\
          --rank lex --desc x --explain
    repro --repl --data ./csvdir --k 10 < queries.txt

* ``--data DIR`` loads every ``*.csv`` in the directory as one relation
  each (header row = column names);
* the query is the library's Datalog-style syntax (self-joins, numeric
  or quoted-string selections, ``;``-separated unions);
* ``--rank sum|lex|min|max|avg|product`` with optional ``--weights
  table.csv`` (two columns: value, weight) and ``--desc`` attributes;
* ``--explain`` prints the chosen algorithm, the query class and the
  paper's delay guarantee instead of running the query;
* ``--repl`` reads queries from stdin (one per line) and executes them
  through a shared :class:`~repro.engine.QueryEngine` session, so
  repeated queries reuse cached plans; ``:stats`` prints the engine
  counters, ``:explain <query>`` the plan, ``:quit`` exits;
* ``--shards N`` hash-partitions the data and executes across N
  workers with results identical to serial; ``--parallel`` is
  shorthand for one shard per core, ``--backend`` picks the worker
  backend (``processes`` default, ``threads``/``serial`` for
  debugging);
* ``--stats`` prints timing plus the engine's cache hit/miss counters,
  the per-phase (reduce/build/enumerate) timing split, and the
  vectorised-enumeration counters (``batched_combines`` /
  ``bulk_topk_calls`` / ``bulk_topk_fallbacks``);
* ``--format csv|json|table`` picks the result serialisation: CSV rows
  (default), one JSON document (for benchmarks and downstream tools),
  or an aligned human-readable table.

Two subcommands front the service layer (:mod:`repro.service`)::

    repro serve --data ./csvdir --port 7461
    repro query --connect localhost:7461 "Q(x, y) :- E(x, p), E(y, p)" \\
          --rank sum --k 100 --page 25

``repro serve`` runs the asyncio ranked-query server over one shared
session engine; ``repro query --connect`` opens a server-side cursor
and pages through ranked answers (same output formats as local runs),
or ``--one-shot`` for a single eager execute.

Persistence (:mod:`repro.storage.persist`)::

    repro save --data ./csvdir --out ./snap
    repro "Q(a1, a2) :- E(a1, p), E(a2, p)" --data-snapshot ./snap --k 10
    repro serve --data-snapshot ./snap --port 7461

``repro save`` writes the loaded instance as an on-disk snapshot;
``--data-snapshot`` (here and on ``repro serve``) reopens it
memory-mapped, skipping CSV parsing and dictionary building entirely —
the session starts warm off the snapshot files.

All execution goes through the session engine: even one-shot queries
are served by a :class:`~repro.engine.QueryEngine`, which is also the
recommended library surface for repeated-query workloads.
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import sys
import time
from typing import Sequence, TextIO

from .core.planner import METHODS
from .parallel import BACKENDS
from .core.ranking import (
    AvgRanking,
    LexRanking,
    MaxRanking,
    MinRanking,
    ProductRanking,
    RankingFunction,
    SumRanking,
    TableWeight,
    WeightFunction,
)
from .data.loader import load_database_dir, parse_value
from .engine import QueryEngine
from .errors import ReproError

__all__ = ["main", "build_parser"]

_RANKINGS = {
    "sum": SumRanking,
    "avg": AvgRanking,
    "min": MinRanking,
    "max": MaxRanking,
    "product": ProductRanking,
    "lex": LexRanking,
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser (exposed for docs/tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ranked enumeration of join-project queries over CSV data "
        "(Deep, Hu & Koutris, VLDB 2022).",
    )
    parser.add_argument(
        "query",
        nargs="?",
        default=None,
        help="Datalog-style query, e.g. 'Q(x,y) :- E(x,p), E(y,p)' "
        "(omit with --repl to read queries from stdin)",
    )
    parser.add_argument("--data", default=None, help="directory of <relation>.csv files")
    parser.add_argument(
        "--data-snapshot",
        default=None,
        metavar="DIR",
        help="snapshot directory written by 'repro save'; reopened memory-mapped "
        "for an instantly warm session (alternative to --data)",
    )
    parser.add_argument("--k", type=int, default=None, help="LIMIT k (default: all answers)")
    parser.add_argument(
        "--rank", choices=sorted(_RANKINGS), default="sum", help="ranking function"
    )
    parser.add_argument(
        "--weights",
        default=None,
        help="CSV of value,weight pairs used as w(v) for every head attribute "
        "(default: values are their own weights)",
    )
    parser.add_argument(
        "--desc",
        nargs="*",
        default=None,
        metavar="VAR",
        help="descending attributes (LEX) / flag for descending order (aggregates: "
        "pass with no VAR to flip the whole order)",
    )
    parser.add_argument(
        "--method", choices=METHODS, default="auto", help="force a specific algorithm"
    )
    parser.add_argument(
        "--epsilon", type=float, default=None, help="star-query tradeoff knob in [0,1]"
    )
    parser.add_argument(
        "--repl",
        action="store_true",
        help="multi-query mode: read queries from stdin (one per line) through a "
        "shared session engine with plan caching",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="hash-partition the data into N shards and execute in parallel "
        "(results identical to serial; implies --parallel)",
    )
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="parallel execution with one shard per CPU core "
        "(equivalent to --shards <cpu count>)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS,
        default="processes",
        help="parallel backend used with --shards/--parallel (default: processes)",
    )
    parser.add_argument(
        "--format",
        choices=("csv", "json", "table"),
        default="csv",
        help="result output format: csv (default, machine-readable), json "
        "(one document with head/answers/score per answer), or table "
        "(aligned human-readable columns)",
    )
    parser.add_argument("--explain", action="store_true", help="print the plan and exit")
    parser.add_argument(
        "--stats", action="store_true", help="print timing, cache and data-structure stats"
    )
    parser.add_argument(
        "--no-header", action="store_true", help="omit the header row of the output"
    )
    return parser


def _load_weight_table(path: str) -> WeightFunction:
    table = {}
    with open(path, newline="") as fh:
        for lineno, row in enumerate(csv.reader(fh), start=1):
            if not row:
                continue
            if len(row) != 2:
                raise ReproError(f"{path}:{lineno}: expected 'value,weight' rows")
            table[parse_value(row[0])] = float(row[1])
    return TableWeight({}, default_table=table)


def _build_ranking(args: argparse.Namespace) -> RankingFunction:
    weight = _load_weight_table(args.weights) if args.weights else None
    descending = args.desc  # None = flag absent; [] = bare flag; [vars] = per-attr
    if args.rank == "lex":
        return LexRanking(weight=weight, descending=tuple(descending or ()))
    cls = _RANKINGS[args.rank]
    kwargs = {"descending": descending is not None}
    if weight is not None:
        return cls(weight, **kwargs)
    return cls(**kwargs)


def _shard_count(args: argparse.Namespace) -> int:
    """Effective shard count: --shards wins, --parallel means one per core."""
    if args.shards is not None:
        return max(args.shards, 1)
    if args.parallel:
        return max(os.cpu_count() or 1, 1)
    return 1


def _print_explain(engine: QueryEngine, query: str, ranking, args) -> None:
    shards = _shard_count(args)
    info = engine.explain(
        query,
        ranking,
        method=args.method,
        epsilon=args.epsilon,
        shards=shards if shards > 1 else None,
    )
    print(f"query class : {info['query class']}")
    print(f"algorithm   : {info['algorithm']}")
    print(f"plan        : {info['plan']}")
    print(f"ranking     : {info['ranking']}")
    print(f"guarantee   : {info['guarantee']}")
    print(f"|D|         : {info['|D|']}")
    if "partition attribute" in info:
        print(f"partition   : hash({info['partition attribute']}) x {info['shards']} shards")
    if info["cached plan"]:
        print("plan cache  : hit")


def _run_one(engine: QueryEngine, query_text: str, ranking, args) -> None:
    """Execute one query through the engine and write CSV to stdout."""
    started = time.perf_counter()
    parsed = engine.parse(query_text)
    shards = _shard_count(args)
    if shards > 1:
        answers = engine.execute_parallel(
            parsed,
            ranking,
            shards=shards,
            backend=args.backend,
            k=args.k,
            method=args.method,
            epsilon=args.epsilon,
        )
    else:
        answers = engine.execute(
            parsed, ranking, k=args.k, method=args.method, epsilon=args.epsilon
        )
    elapsed = time.perf_counter() - started

    _write_answers(sys.stdout, parsed.head, answers, args)

    if args.stats:
        print(f"# {len(answers)} answers in {elapsed:.4f}s", file=sys.stderr)
        enum = engine.last_enumerator
        stats = getattr(enum, "stats", None)
        if stats is not None:
            snap = stats.snapshot()
            print(f"# stats: {snap}", file=sys.stderr)
            if "reduce_seconds" in snap:
                print(
                    "# phases: reduce={reduce_seconds:.6f}s "
                    "build={build_seconds:.6f}s "
                    "enumerate={enumerate_seconds:.6f}s".format(**snap),
                    file=sys.stderr,
                )
        es = engine.stats
        print(
            f"# vectorised: batched_combines={es.batched_combines} "
            f"bulk_topk_calls={es.bulk_topk_calls} "
            f"bulk_topk_fallbacks={es.bulk_topk_fallbacks}",
            file=sys.stderr,
        )


def _json_value(value):
    """JSON-safe view of an answer component (tuples become lists)."""
    if isinstance(value, tuple):
        return [_json_value(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _write_answers(out: TextIO, head: Sequence[str], answers, args) -> None:
    """Serialise one result set in the requested ``--format``.

    ``csv`` is the machine-readable default (one row per answer, score
    last); ``json`` emits a single document benchmarks and downstream
    tools can load without parsing a table; ``table`` prints aligned
    columns for humans.  ``--no-header`` drops the csv header row and
    the table rule line.
    """
    if args.format == "json":
        doc = {
            "head": list(head),
            "answers": [
                {
                    "values": _json_value(answer.values),
                    "score": _json_value(answer.score),
                }
                for answer in answers
            ],
            "count": len(answers),
        }
        json.dump(doc, out, indent=2, sort_keys=False)
        out.write("\n")
        return
    if args.format == "table":
        header = list(head) + ["score"]
        rows = [
            [str(v) for v in answer.values] + [str(answer.score)]
            for answer in answers
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
            for i in range(len(header))
        ]
        if not args.no_header:
            out.write("  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip() + "\n")
            out.write("  ".join("-" * w for w in widths) + "\n")
        for r in rows:
            out.write("  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip() + "\n")
        return
    writer = csv.writer(out)
    if not args.no_header:
        writer.writerow(list(head) + ["score"])
    for answer in answers:
        writer.writerow(list(answer.values) + [answer.score])


def _print_engine_stats(engine: QueryEngine) -> None:
    snap = engine.stats.snapshot()
    per_query = snap.pop("per_query")
    print(f"# engine: {snap}", file=sys.stderr)
    for name, timing in per_query.items():
        print(f"# engine[{name}]: {timing}", file=sys.stderr)


def _repl(engine: QueryEngine, ranking, args, stream: TextIO) -> int:
    """Read queries from ``stream`` (one per line) against one session.

    Lines starting with ``#`` and blank lines are skipped.  ``:stats``
    prints the engine counters, ``:explain <query>`` the plan for a
    query, ``:quit`` / ``:q`` ends the session.  Errors are reported
    per line without ending the session.
    """
    exit_code = 0
    for raw in stream:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line in (":quit", ":q", ":exit"):
            break
        try:
            if line == ":stats":
                _print_engine_stats(engine)
            elif line.startswith(":explain"):
                _print_explain(engine, line[len(":explain") :].strip(), ranking, args)
            else:
                _run_one(engine, line, ranking, args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            exit_code = 2
    if args.stats:
        _print_engine_stats(engine)
    return exit_code


# --------------------------------------------------------------------- #
# service subcommands: ``repro serve`` / ``repro query --connect``
# --------------------------------------------------------------------- #
class _RemoteAnswer:
    """Adapter giving wire answers the ``.values`` / ``.score`` shape
    that :func:`_write_answers` (and the library) use."""

    __slots__ = ("values", "score")

    def __init__(self, values, score):
        self.values = values
        self.score = score


def _parse_endpoint(spec: str) -> tuple[str, int]:
    from .service import DEFAULT_PORT

    host, _, port = spec.rpartition(":")
    if not host:
        return spec, DEFAULT_PORT
    try:
        return host, int(port)
    except ValueError:
        raise ReproError(f"--connect expects HOST[:PORT], got {spec!r}") from None


def _save_main(argv: Sequence[str]) -> int:
    """``repro save``: persist a CSV directory as a reopenable snapshot."""
    parser = argparse.ArgumentParser(
        prog="repro save",
        description="Load a CSV directory and write it as an on-disk snapshot "
        "that 'repro --data-snapshot' / 'repro serve --data-snapshot' reopen "
        "memory-mapped (instant warm starts, shared pages across workers).",
    )
    parser.add_argument("--data", required=True, help="directory of <relation>.csv files")
    parser.add_argument(
        "--out", required=True, metavar="DIR", help="snapshot directory to write"
    )
    args = parser.parse_args(argv)
    from .storage import save_snapshot

    try:
        db = load_database_dir(args.data)
        save_snapshot(db, args.out)
        print(f"saved {db.size} tuples over {len(db)} relations to {args.out}")
        return 0
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _serve_main(argv: Sequence[str]) -> int:
    """``repro serve``: run the ranked-query service over a CSV directory."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve ranked enumeration over TCP (line-delimited JSON; "
        "see docs/service.md for the protocol).",
    )
    parser.add_argument("--data", default=None, help="directory of <relation>.csv files")
    parser.add_argument(
        "--data-snapshot",
        default=None,
        metavar="DIR",
        help="snapshot directory written by 'repro save' (alternative to --data); "
        "opened before the listener binds, so the first request is already warm",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=None, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--max-inflight", type=int, default=4, help="concurrent engine executions"
    )
    parser.add_argument(
        "--max-queue", type=int, default=256, help="admission queue bound (beyond: overloaded)"
    )
    parser.add_argument(
        "--max-live-cursors", type=int, default=64,
        help="cursors keeping live enumerator state (beyond: LRU eviction to replay)",
    )
    parser.add_argument(
        "--cursor-ttl", type=float, default=300.0, help="idle cursor time-to-live, seconds"
    )
    parser.add_argument(
        "--journal",
        action="store_true",
        help="durable mode (requires --data-snapshot): writes go through the "
        "write-ahead journal, open cursors survive a server restart, and a "
        "kill -9 loses no acknowledged write (see docs/recovery.md)",
    )
    args = parser.parse_args(argv)
    if (args.data is None) == (args.data_snapshot is None):
        parser.error("exactly one of --data or --data-snapshot is required")
    if args.journal and args.data_snapshot is None:
        parser.error("--journal requires --data-snapshot (the journal sits "
                     "beside the snapshot files)")
    from .service import DEFAULT_PORT, serve

    durable = None
    try:
        # Build the engine (and open the snapshot) *before* serve() binds
        # the listener: a bad path or refused snapshot fails fast instead
        # of accepting connections it can never answer.
        if args.journal:
            from .storage import open_durable

            durable = open_durable(args.data_snapshot)
            engine = QueryEngine(durable.db)
        elif args.data_snapshot is not None:
            engine = QueryEngine(args.data_snapshot)
        else:
            engine = QueryEngine(load_database_dir(args.data))
        serve(
            engine,
            host=args.host,
            port=DEFAULT_PORT if args.port is None else args.port,
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
            max_live_cursors=args.max_live_cursors,
            cursor_ttl=args.cursor_ttl,
            durable=durable,
        )
        return 0
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if durable is not None:
            durable.close()


def _fuzz_main(argv: Sequence[str]) -> int:
    """``repro fuzz-deltas``: shadow-check delta maintenance under writes."""
    parser = argparse.ArgumentParser(
        prog="repro fuzz-deltas",
        description="Fuzz incremental delta maintenance: drive one long-lived "
        "engine through seeded append/delete/query schedules and shadow-check "
        "every ranked answer against a cold rebuild (see docs/incremental.md).",
    )
    parser.add_argument("--seed", type=int, default=0, help="first seed of the sweep")
    parser.add_argument("--rounds", type=int, default=500, help="number of seeded cases")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: bounded time budget (finishes well under 30s)",
    )
    args = parser.parse_args(argv)
    from .testing import fuzz

    rounds = min(args.rounds, 300) if args.quick else args.rounds
    budget = 20.0 if args.quick else None

    def progress(done: int, total: int) -> None:
        if done and done % 100 == 0:
            print(f"# {done}/{total} cases clean", file=sys.stderr)

    failure = fuzz(
        seed=args.seed, rounds=rounds, time_budget=budget, on_progress=progress
    )
    if failure is not None:
        print(failure, file=sys.stderr)
        return 1
    print(f"fuzz-deltas: clean (seeds {args.seed}..{args.seed + rounds - 1})")
    return 0


def _fuzz_crashes_main(argv: Sequence[str]) -> int:
    """``repro fuzz-crashes``: shadow-check journal recovery under kill -9."""
    parser = argparse.ArgumentParser(
        prog="repro fuzz-crashes",
        description="Fuzz crash recovery: drive a journaled snapshot through "
        "seeded write schedules, truncate the journal at seeded kill points "
        "(including mid-record), reopen, and shadow-check the recovered "
        "database bit-identically against a cold rebuild of the acknowledged "
        "prefix (see docs/recovery.md).",
    )
    parser.add_argument("--seed", type=int, default=0, help="first seed of the sweep")
    parser.add_argument(
        "--rounds", type=int, default=200, help="number of seeded kill-point schedules"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: bounded time budget (finishes well under 30s)",
    )
    args = parser.parse_args(argv)
    from .storage import kernels

    if not kernels.HAS_NUMPY:
        print("fuzz-crashes: skipped (snapshot saving requires NumPy)")
        return 0
    from .testing import fuzz_crashes

    rounds = min(args.rounds, 100) if args.quick else args.rounds
    budget = 20.0 if args.quick else None

    def progress(done: int, total: int) -> None:
        if done and done % 50 == 0:
            print(f"# {done}/{total} schedules clean", file=sys.stderr)

    failure = fuzz_crashes(
        seed=args.seed, rounds=rounds, time_budget=budget, on_progress=progress
    )
    if failure is not None:
        print(failure, file=sys.stderr)
        return 1
    print(f"fuzz-crashes: clean (seeds {args.seed}..{args.seed + rounds - 1})")
    return 0


def _query_main(argv: Sequence[str]) -> int:
    """``repro query --connect``: page ranked answers from a running server."""
    parser = argparse.ArgumentParser(
        prog="repro query",
        description="Run a ranked query against a repro-service server, paging "
        "answers through a server-side cursor.",
    )
    parser.add_argument("query", help="Datalog-style query")
    parser.add_argument(
        "--connect", required=True, metavar="HOST[:PORT]", help="server endpoint"
    )
    parser.add_argument("--k", type=int, default=None, help="LIMIT k")
    parser.add_argument(
        "--rank", choices=sorted(_RANKINGS), default=None,
        help="ranking function (default: the server's default, SUM ascending)",
    )
    parser.add_argument(
        "--desc", nargs="*", default=None, metavar="VAR",
        help="descending attributes (LEX) / bare flag to flip aggregate order",
    )
    parser.add_argument("--shards", type=int, default=None, help="sharded enumeration")
    parser.add_argument(
        "--backend", choices=("serial", "threads"), default=None,
        help="cursor backend used with --shards",
    )
    parser.add_argument(
        "--page", type=int, default=100, metavar="N", help="answers fetched per page"
    )
    parser.add_argument("--tenant", default="default", help="admission-control tenant id")
    parser.add_argument(
        "--one-shot", action="store_true",
        help="eager execute op instead of cursor paging",
    )
    parser.add_argument(
        "--format", choices=("csv", "json", "table"), default="csv",
        help="result output format",
    )
    parser.add_argument("--no-header", action="store_true", help="omit the header row")
    parser.add_argument(
        "--stats", action="store_true",
        help="print per-request engine counters (kernel calls, score builds) to stderr",
    )
    args = parser.parse_args(argv)
    from .service import connect as service_connect
    from .service.protocol import decode_answers

    if args.rank == "lex":
        desc: object = list(args.desc or ())
    else:
        desc = args.desc is not None
    try:
        host, port = _parse_endpoint(args.connect)
        with service_connect(host, port, tenant=args.tenant) as client:
            if args.one_shot:
                payload = client.request(
                    "execute",
                    query=args.query,
                    k=args.k,
                    rank=args.rank,
                    desc=desc if args.rank else None,
                    shards=args.shards,
                    backend=args.backend,
                )
                head = payload["head"]
                rows = decode_answers(payload["answers"])
                if args.stats:
                    print(f"# stats: {payload.get('stats')}", file=sys.stderr)
            else:
                cursor = client.query(
                    args.query,
                    k=args.k,
                    rank=args.rank,
                    desc=desc if args.rank else None,
                    shards=args.shards,
                    backend=args.backend,
                )
                head = list(cursor.head)
                rows = []
                for page in cursor.pages(args.page):
                    rows.extend(page)
                    if args.stats:
                        print(
                            f"# page -> position={cursor.position} "
                            f"replays={cursor.replays} stats={cursor.last_stats}",
                            file=sys.stderr,
                        )
                cursor.close()
            answers = [_RemoteAnswer(values, score) for values, score in rows]
            _write_answers(sys.stdout, head, answers, args)
        return 0
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "save":
        return _save_main(argv[1:])
    if argv and argv[0] == "query":
        return _query_main(argv[1:])
    if argv and argv[0] == "fuzz-deltas":
        return _fuzz_main(argv[1:])
    if argv and argv[0] == "fuzz-crashes":
        return _fuzz_crashes_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.query is None and not args.repl:
        parser.error("a query is required unless --repl is given")
    if args.repl and args.query is not None:
        parser.error("--repl reads queries from stdin; drop the positional query")
    if args.repl and args.explain:
        parser.error("--explain is per-query; use ':explain <query>' inside --repl")
    if (args.data is None) == (args.data_snapshot is None):
        parser.error("exactly one of --data or --data-snapshot is required")
    try:
        ranking = _build_ranking(args)
        if args.data_snapshot is not None:
            # The engine opens the snapshot memory-mapped and starts warm
            # (dictionary and code columns come straight off the files).
            engine = QueryEngine(args.data_snapshot)
        else:
            engine = QueryEngine(load_database_dir(args.data))

        if args.repl:
            return _repl(engine, ranking, args, sys.stdin)

        if args.explain:
            _print_explain(engine, args.query, ranking, args)
            return 0

        _run_one(engine, args.query, ranking, args)
        if args.stats:
            _print_engine_stats(engine)
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
