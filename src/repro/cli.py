"""Command-line interface: ranked enumeration over CSV data.

Usage (also via ``python -m repro``)::

    repro "Q(a1, a2) :- E(a1, p), E(a2, p)" --data ./csvdir --k 10
    repro "Q(x, y) :- E(x, p), E(y, p)" --data ./csvdir \\
          --rank lex --desc x --explain

* ``--data DIR`` loads every ``*.csv`` in the directory as one relation
  each (header row = column names);
* the query is the library's Datalog-style syntax (self-joins, numeric
  or quoted-string selections, ``;``-separated unions);
* ``--rank sum|lex|min|max|avg|product`` with optional ``--weights
  table.csv`` (two columns: value, weight) and ``--desc`` attributes;
* ``--explain`` prints the chosen algorithm, the query class and the
  paper's delay guarantee instead of running the query.
"""

from __future__ import annotations

import argparse
import csv
import sys
import time
from typing import Sequence

from .core.planner import METHODS, create_enumerator
from .core.ranking import (
    AvgRanking,
    LexRanking,
    MaxRanking,
    MinRanking,
    ProductRanking,
    RankingFunction,
    SumRanking,
    TableWeight,
    WeightFunction,
)
from .data.loader import load_database_dir, parse_value
from .errors import ReproError
from .query.parser import parse_query
from .query.properties import classify_query, delay_guarantee

__all__ = ["main", "build_parser"]

_RANKINGS = {
    "sum": SumRanking,
    "avg": AvgRanking,
    "min": MinRanking,
    "max": MaxRanking,
    "product": ProductRanking,
    "lex": LexRanking,
}


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser (exposed for docs/tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ranked enumeration of join-project queries over CSV data "
        "(Deep, Hu & Koutris, VLDB 2022).",
    )
    parser.add_argument("query", help="Datalog-style query, e.g. 'Q(x,y) :- E(x,p), E(y,p)'")
    parser.add_argument("--data", required=True, help="directory of <relation>.csv files")
    parser.add_argument("--k", type=int, default=None, help="LIMIT k (default: all answers)")
    parser.add_argument(
        "--rank", choices=sorted(_RANKINGS), default="sum", help="ranking function"
    )
    parser.add_argument(
        "--weights",
        default=None,
        help="CSV of value,weight pairs used as w(v) for every head attribute "
        "(default: values are their own weights)",
    )
    parser.add_argument(
        "--desc",
        nargs="*",
        default=None,
        metavar="VAR",
        help="descending attributes (LEX) / flag for descending order (aggregates: "
        "pass with no VAR to flip the whole order)",
    )
    parser.add_argument(
        "--method", choices=METHODS, default="auto", help="force a specific algorithm"
    )
    parser.add_argument(
        "--epsilon", type=float, default=None, help="star-query tradeoff knob in [0,1]"
    )
    parser.add_argument("--explain", action="store_true", help="print the plan and exit")
    parser.add_argument(
        "--stats", action="store_true", help="print timing and data-structure stats"
    )
    parser.add_argument(
        "--no-header", action="store_true", help="omit the header row of the output"
    )
    return parser


def _load_weight_table(path: str) -> WeightFunction:
    table = {}
    with open(path, newline="") as fh:
        for lineno, row in enumerate(csv.reader(fh), start=1):
            if not row:
                continue
            if len(row) != 2:
                raise ReproError(f"{path}:{lineno}: expected 'value,weight' rows")
            table[parse_value(row[0])] = float(row[1])
    return TableWeight({}, default_table=table)


def _build_ranking(args: argparse.Namespace) -> RankingFunction:
    weight = _load_weight_table(args.weights) if args.weights else None
    descending = args.desc  # None = flag absent; [] = bare flag; [vars] = per-attr
    if args.rank == "lex":
        return LexRanking(weight=weight, descending=tuple(descending or ()))
    cls = _RANKINGS[args.rank]
    kwargs = {"descending": descending is not None}
    if weight is not None:
        return cls(weight, **kwargs)
    return cls(**kwargs)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        query = parse_query(args.query)
        db = load_database_dir(args.data)
        ranking = _build_ranking(args)

        if args.explain:
            enum = create_enumerator(
                query, db, ranking, method=args.method, epsilon=args.epsilon
            )
            print(f"query class : {classify_query(query)}")
            print(f"algorithm   : {type(enum).__name__}")
            print(f"ranking     : {ranking.describe()}")
            print(f"guarantee   : {delay_guarantee(query)}")
            print(f"|D|         : {db.size}")
            return 0

        started = time.perf_counter()
        enum = create_enumerator(
            query, db, ranking, method=args.method, epsilon=args.epsilon
        )
        answers = enum.all() if args.k is None else enum.top_k(args.k)
        elapsed = time.perf_counter() - started

        writer = csv.writer(sys.stdout)
        if not args.no_header:
            writer.writerow(list(query.head) + ["score"])
        for answer in answers:
            writer.writerow(list(answer.values) + [answer.score])

        if args.stats:
            stats = getattr(enum, "stats", None)
            print(f"# {len(answers)} answers in {elapsed:.4f}s", file=sys.stderr)
            if stats is not None:
                print(f"# stats: {stats.snapshot()}", file=sys.stderr)
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
