"""The asyncio ranked-query server over one :class:`~repro.engine.QueryEngine`.

Architecture, in one pass through a request's life:

1. A connection speaks the line-JSON protocol (:mod:`.protocol`); the
   asyncio side parses frames and dispatches ops.
2. Engine-work ops (``query`` / ``execute`` / ``fetch``) first pass
   **admission control** (:class:`~repro.service.admission.FairGate`):
   a bounded in-flight limit with per-tenant round-robin queueing over
   the shared plan/score/kernel caches, shedding load beyond the queue
   bound.
3. Admitted work runs on a thread pool (the engine is synchronous),
   wrapped in :meth:`QueryEngine.measure` so every response carries its
   own exact ``kernel_calls`` / ``score_builds`` / ``seconds`` — the
   PR-5 scoped counters keep concurrent requests from bleeding into
   each other.
4. ``query`` opens a **cursor** (:mod:`.cursors`): the live enumerator
   stream from :meth:`QueryEngine.stream_parallel` parked server-side.
   ``fetch`` pages through it at enumeration-delay cost; LRU-evicted
   cursors replay transparently; TTL reaps abandoned ones.
5. :meth:`ReproServer.stop` is a graceful drain: stop accepting, let
   in-flight requests finish, then close every open cursor (releasing
   shard workers and heap state) before the pool goes down.

The service layer deliberately sits *on top of* the engine: it talks
only to :class:`QueryEngine` and public enumerator surfaces, never to
storage internals — ``tools/check_layering.py`` (rule 3) enforces that
boundary in CI.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

from ..core.ranking import (
    AvgRanking,
    LexRanking,
    MaxRanking,
    MinRanking,
    ProductRanking,
    RankingFunction,
    SumRanking,
)
from ..engine import QueryEngine
from ..errors import ReproError
from ..testing.faultinject import fault_point, fault_value
from .admission import FairGate
from .cursors import CursorTable
from .protocol import (
    CURSOR_BACKENDS,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    DeadlineExceededError,
    ServiceError,
    StaleCursorError,
    dump_message,
    encode_answers,
    error_response,
    jsonable,
    parse_message,
)

__all__ = ["ReproServer", "ServerThread", "ServiceStats", "serve", "DEFAULT_PORT"]

DEFAULT_PORT = 7461

#: Backends the eager ``execute`` op accepts (cursors are restricted to
#: :data:`~repro.service.protocol.CURSOR_BACKENDS`).
_EXECUTE_BACKENDS = ("serial", "threads", "processes")

_RANKINGS: dict[str, type[RankingFunction]] = {
    "sum": SumRanking,
    "avg": AvgRanking,
    "min": MinRanking,
    "max": MaxRanking,
    "product": ProductRanking,
    "lex": LexRanking,
}


class ServiceStats:
    """Server-level request counters (the ``stats`` op's ``service`` block)."""

    __slots__ = (
        "connections",
        "requests",
        "errors",
        "answers_served",
        "deadline_exceeded",
        "journal_errors",
        "by_op",
    )

    def __init__(self):
        self.connections = 0
        self.requests = 0
        self.errors = 0
        self.answers_served = 0
        self.deadline_exceeded = 0
        self.journal_errors = 0
        self.by_op: dict[str, int] = {}

    def count(self, op: str) -> None:
        self.requests += 1
        self.by_op[op] = self.by_op.get(op, 0) + 1

    def snapshot(self) -> dict:
        return {
            "connections": self.connections,
            "requests": self.requests,
            "errors": self.errors,
            "answers_served": self.answers_served,
            "deadline_exceeded": self.deadline_exceeded,
            "journal_errors": self.journal_errors,
            "by_op": dict(self.by_op),
        }


def _build_ranking_uncached(rank: str | None, desc: Any) -> RankingFunction | None:
    if rank is None:
        return None
    cls = _RANKINGS.get(rank)
    if cls is None:
        raise ServiceError(
            f"unknown ranking {rank!r}; choose one of {sorted(_RANKINGS)}"
        )
    if rank == "lex":
        attrs = tuple(desc) if isinstance(desc, (list, tuple)) else ()
        if not all(isinstance(a, str) for a in attrs):
            raise ServiceError("lex 'desc' must be a list of attribute names")
        return LexRanking(descending=attrs)
    return cls(descending=bool(desc))


class ReproServer:
    """One served database: engine + cursors + admission + protocol.

    Parameters
    ----------
    engine:
        The session engine to serve.  All warm state (plans, encoded
        image, partitions, score columns) is shared across every
        connection and tenant — that sharing is what admission control
        arbitrates.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (tests and
        benchmarks), readable from :attr:`port` after :meth:`start`.
    max_inflight / max_queue:
        Admission bounds: concurrent engine executions, and waiting
        requests beyond which new ones are rejected as ``overloaded``.
    max_live_cursors / cursor_ttl:
        Cursor-table bounds: cursors holding live enumerator state
        (LRU-evicted to replay records beyond this) and the idle
        time-to-live in seconds after which a cursor is dropped.
    default_page / max_page:
        ``fetch`` page size when the request names none, and the hard
        per-fetch cap.
    workers:
        Executor threads (default: ``max_inflight`` — one thread per
        admitted request is exactly enough).
    durable:
        An optional durability handle (duck-typed; in practice the
        ``DurableDatabase`` from ``repro.open_durable`` — constructed by
        the *embedding* code, never here: the service layer does not
        import storage).  When present, cursor replay specs and resume
        offsets are journaled through it, :meth:`start` restores every
        journal-recovered cursor, and the ``stats`` op grows a
        ``durability`` block.  Journaling is best-effort: data
        durability is the journal's hard guarantee, cursor state
        degrades gracefully (counted in ``journal_errors``).
    """

    def __init__(
        self,
        engine: QueryEngine,
        *,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        max_inflight: int = 4,
        max_queue: int = 256,
        max_live_cursors: int = 64,
        cursor_ttl: float = 300.0,
        default_page: int = 100,
        max_page: int = 10_000,
        workers: int | None = None,
        durable: Any = None,
    ):
        self.engine = engine
        self.durable = durable
        self.host = host
        self.port = port
        self.default_page = default_page
        self.max_page = max_page
        self.cursors = CursorTable(max_live=max_live_cursors, ttl=cursor_ttl)
        self.gate = FairGate(max_inflight, max_queue=max_queue)
        self.stats = ServiceStats()
        self._workers = workers or max_inflight
        self._pool: ThreadPoolExecutor | None = None
        self._server: asyncio.AbstractServer | None = None
        self._sweeper: asyncio.Task | None = None
        self._closing = False
        # Ranking objects cached per wire spec: plan fingerprints key
        # rankings by identity, so handing every request a fresh object
        # would defeat the prepared-plan cache across requests.
        self._rankings: dict[tuple, RankingFunction | None] = {}
        self._engine_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "ReproServer":
        """Bind, start the acceptor and the TTL sweeper."""
        if self._server is not None:
            raise ServiceError("server already started")
        self._pool = ThreadPoolExecutor(
            max_workers=self._workers, thread_name_prefix="repro-service"
        )
        self._restore_cursors()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._sweeper = asyncio.get_running_loop().create_task(self._sweep_loop())
        return self

    async def stop(self, *, timeout: float = 10.0) -> dict:
        """Graceful shutdown: stop accepting, drain, close all cursors.

        New engine ops are refused with ``shutting-down`` the moment
        this is called; requests already admitted (or queued) run to
        completion within ``timeout`` seconds; then every open cursor is
        closed — releasing its live stream and any shard workers —
        before the executor goes down.  Returns a small summary dict.
        """
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        drained = await self.gate.drain(timeout)
        if self._sweeper is not None:
            self._sweeper.cancel()
            self._sweeper = None
        cursors_closed = self.cursors.close_all()
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None
        return {"drained": drained, "cursors_closed": cursors_closed}

    async def _sweep_loop(self) -> None:
        interval = max(min(self.cursors.ttl / 4, 5.0), 0.05)
        while True:
            await asyncio.sleep(interval)
            self.cursors.sweep()

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        dump_message(
                            error_response(
                                ServiceError("request line too long", code="parse-error")
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                response = await self._respond(line)
                data = dump_message(response)
                cut = fault_value("server.send")
                if cut is not None:
                    # Injected mid-response connection drop: a prefix of
                    # the line goes out, then the socket dies — the shape
                    # the client's idempotent retry must survive.
                    writer.write(data[: max(0, min(cut, len(data)))])
                    await writer.drain()
                    break
                writer.write(data)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _respond(self, line: bytes) -> dict:
        op: str | None = None
        request_id: Any = None
        try:
            message = parse_message(line)
            request_id = message.get("id")
            op = message.get("op")
            if not isinstance(op, str):
                raise ServiceError("request needs a string 'op' field")
            response = await self._dispatch(op, message)
            response["ok"] = True
            response["op"] = op
            if request_id is not None:
                response["id"] = request_id
            return response
        except ServiceError as exc:
            self.stats.errors += 1
            return error_response(exc, op=op, id=request_id)
        except ReproError as exc:
            # Parse/plan/ranking errors from the library: the request's
            # fault, reported without dropping the connection.
            self.stats.errors += 1
            return error_response(
                ServiceError(str(exc), code="query-error"), op=op, id=request_id
            )
        except Exception as exc:  # pragma: no cover - defensive
            self.stats.errors += 1
            return error_response(
                ServiceError(f"internal error: {exc!r}", code="internal"),
                op=op,
                id=request_id,
            )

    async def _dispatch(self, op: str, message: dict) -> dict:
        self.stats.count(op)
        # Validate up front for every op, so a malformed deadline is a
        # clean ``bad-request`` even on ops that never block on one.
        deadline = _optional_number(message, "deadline")
        if op == "ping":
            return {
                "server": "repro-service",
                "protocol": PROTOCOL_VERSION,
                "|D|": self.engine.db.size,
            }
        if op == "stats":
            payload = {
                "service": self.stats.snapshot(),
                "admission": self.gate.snapshot(),
                "cursors": self.cursors.snapshot(),
                "engine": jsonable_dict(self.engine.stats.snapshot()),
            }
            if self.durable is not None:
                try:
                    payload["durability"] = jsonable_dict(
                        self.durable.snapshot_info()
                    )
                except Exception:  # pragma: no cover - defensive
                    self.stats.journal_errors += 1
            return payload
        if op == "close":
            cursor_id = _require_str(message, "cursor")
            closed = self.cursors.close(cursor_id)
            if closed:
                self._journal("record_cursor_close", cursor_id)
            return {"closed": closed}
        if op not in ("query", "execute", "fetch"):
            raise ServiceError(f"unknown op {op!r}")
        if self._closing:
            raise ServiceError("server is shutting down", code="shutting-down")
        tenant = str(message.get("tenant", "default"))
        async with self.gate.slot(tenant):
            loop = asyncio.get_running_loop()
            ctx: dict = {}
            if op == "query":
                work = self._prepare_query_work(message, tenant, ctx)
            elif op == "execute":
                work = self._prepare_execute_work(message)
            else:
                work = self._prepare_fetch_work(message, ctx)
            assert self._pool is not None
            future = loop.run_in_executor(self._pool, work)
            if deadline is None:
                return await future
            try:
                # shield(): a timeout abandons the work, it does not
                # cancel it — the executor thread cannot be interrupted
                # anyway, and the done-callback cleans up its effects.
                return await asyncio.wait_for(
                    asyncio.shield(future), timeout=deadline
                )
            except asyncio.TimeoutError:
                self.stats.deadline_exceeded += 1
                future.add_done_callback(
                    lambda f, op=op, ctx=ctx: self._abandon(op, ctx, f)
                )
                raise DeadlineExceededError(
                    f"{op} did not complete within its {deadline}s deadline; "
                    "the work was abandoned server-side (a fetch loses no "
                    "answers — retry with the same offset)"
                ) from None

    # ------------------------------------------------------------------ #
    # op bodies (run on executor threads)
    # ------------------------------------------------------------------ #
    def _stream_builder(self, parsed, ranking, shards, backend, k, generation):
        """The cursor's ``build(skip)`` replay closure — shared by fresh
        opens and journal restores so both resume identically."""

        def build(skip: int):
            if self.engine.db.generation != generation:
                raise StaleCursorError(
                    "data changed since the cursor was created; "
                    "re-run the query"
                )
            stream = self.engine.stream_parallel(
                parsed, ranking, shards=shards, backend=backend, k=k
            )
            if skip:
                next(itertools.islice(stream, skip - 1, skip), None)
            return stream

        return build

    def _prepare_query_work(
        self, message: dict, tenant: str, ctx: dict
    ) -> Callable[[], dict]:
        query_text = _require_str(message, "query")
        k = _optional_int(message, "k", floor=1)
        shards = _optional_int(message, "shards", floor=1) or 1
        backend = message.get("backend") or "serial"
        if backend not in CURSOR_BACKENDS:
            raise ServiceError(
                f"cursor backend must be one of {CURSOR_BACKENDS}, got {backend!r}"
                " (processes-backend workers cannot be parked in a cursor)"
            )
        ranking = self._ranking_for(message)
        rank_spec = message.get("rank")
        desc_spec = message.get("desc")

        def work() -> dict:
            fault_point("server.work")
            with self.engine.measure() as request:
                parsed = self.engine.parse(query_text)
                generation = self.engine.db.generation
                build = self._stream_builder(
                    parsed, ranking, shards, backend, k, generation
                )
                cursor = self.cursors.open(
                    build,
                    tenant=tenant,
                    head=parsed.head,
                    k=k,
                    generation=generation,
                )
            ctx["cursor_id"] = cursor.cursor_id
            self._journal(
                "record_cursor",
                {
                    "cursor": cursor.cursor_id,
                    "tenant": tenant,
                    "query": query_text,
                    "k": k,
                    "rank": rank_spec,
                    "desc": desc_spec,
                    "shards": shards,
                    "backend": backend,
                    "position": cursor.position,
                },
            )
            payload = cursor.describe()
            payload["head"] = list(cursor.head)
            payload["stats"] = request.snapshot()
            return payload

        return work

    def _prepare_fetch_work(self, message: dict, ctx: dict) -> Callable[[], dict]:
        cursor_id = _require_str(message, "cursor")
        n = _optional_int(message, "n", floor=1) or self.default_page
        n = min(n, self.max_page)
        at = _optional_int(message, "at", floor=0)
        cursor = self.cursors.get(cursor_id)
        ctx["cursor"] = cursor

        def work() -> dict:
            fault_point("server.work")
            before = cursor.position
            with self.engine.measure() as request:
                answers, done = cursor.fetch(n, at=at)
            ctx["answers"] = answers
            self.stats.answers_served += len(answers)
            if cursor.position != before:
                self._journal(
                    "record_cursor_position", cursor.cursor_id, cursor.position
                )
            payload = cursor.describe()
            payload["answers"] = encode_answers(answers)
            payload["done"] = done
            payload["stats"] = request.snapshot()
            return payload

        return work

    def _prepare_execute_work(self, message: dict) -> Callable[[], dict]:
        query_text = _require_str(message, "query")
        k = _optional_int(message, "k", floor=1)
        shards = _optional_int(message, "shards", floor=1) or 1
        backend = message.get("backend") or "serial"
        if backend not in _EXECUTE_BACKENDS:
            raise ServiceError(
                f"backend must be one of {_EXECUTE_BACKENDS}, got {backend!r}"
            )
        ranking = self._ranking_for(message)

        def work() -> dict:
            with self.engine.measure() as request:
                parsed = self.engine.parse(query_text)
                if shards > 1:
                    answers = self.engine.execute_parallel(
                        parsed, ranking, shards=shards, backend=backend, k=k
                    )
                else:
                    answers = self.engine.execute(parsed, ranking, k=k)
            self.stats.answers_served += len(answers)
            return {
                "head": list(parsed.head),
                "answers": encode_answers(answers),
                "count": len(answers),
                "stats": request.snapshot(),
            }

        return work

    def _ranking_for(self, message: dict) -> RankingFunction | None:
        rank = message.get("rank")
        if rank is not None and not isinstance(rank, str):
            raise ServiceError("'rank' must be a string")
        desc = message.get("desc")
        key = (rank, tuple(desc) if isinstance(desc, list) else bool(desc))
        with self._engine_lock:
            if key not in self._rankings:
                self._rankings[key] = _build_ranking_uncached(rank, desc)
            return self._rankings[key]

    # ------------------------------------------------------------------ #
    # durability plumbing (no-ops without a durable handle)
    # ------------------------------------------------------------------ #
    def _journal(self, method: str, *args: Any) -> None:
        """Best-effort cursor journaling through the durable handle.

        Data durability is the journal's hard guarantee; cursor replay
        state degrades gracefully — a refusing journal (broken after an
        injected fsync fault, say) must not fail the request that was
        otherwise served.
        """
        if self.durable is None:
            return
        try:
            getattr(self.durable, method)(*args)
        except Exception:
            self.stats.journal_errors += 1

    def _restore_cursors(self) -> int:
        """Re-register every journal-recovered cursor (start-up path).

        Fresh cursors get the same replay closure a live ``query`` op
        builds — deterministic enumeration resumes them to the exact
        next page.  Stale ones (opened against a data state that is not
        the recovered one) are restored *poisoned*: they answer
        ``stale-cursor``, never pages from a different ranked order.
        Individually unrestorable specs are skipped (those cursors
        answer ``unknown-cursor``), not fatal.
        """
        if self.durable is None:
            return 0
        try:
            recovered = self.durable.recovered_cursors()
        except Exception:
            self.stats.journal_errors += 1
            return 0
        count = 0
        for entry in recovered:
            try:
                spec = entry["spec"]
                cursor_id = spec["cursor"]
                tenant = str(spec.get("tenant", "default"))
                k = spec.get("k")
                position = int(entry.get("position", 0))
                if entry.get("stale"):
                    build = _poisoned_build
                    head: tuple = ()
                else:
                    parsed = self.engine.parse(spec["query"])
                    ranking = self._ranking_for(
                        {"rank": spec.get("rank"), "desc": spec.get("desc")}
                    )
                    build = self._stream_builder(
                        parsed,
                        ranking,
                        spec.get("shards") or 1,
                        spec.get("backend") or "serial",
                        k,
                        self.engine.db.generation,
                    )
                    head = parsed.head
                cursor = self.cursors.restore(
                    cursor_id,
                    build,
                    tenant=tenant,
                    head=head,
                    k=k,
                    generation=self.engine.db.generation,
                    position=position,
                )
                if cursor is not None:
                    count += 1
            except Exception:
                continue
        return count

    def _abandon(self, op: str, ctx: dict, future) -> None:
        """Clean up after deadline-abandoned work (loop-side callback).

        An abandoned fetch pushes its page back so the client's retry
        sees the identical ranked sequence; an abandoned query closes
        the cursor it opened (the client never learned its id).
        """
        if future.cancelled() or future.exception() is not None:
            return
        if op == "fetch":
            cursor = ctx.get("cursor")
            answers = ctx.get("answers")
            if cursor is not None and answers:
                try:
                    cursor.push_back(answers)
                except Exception:  # pragma: no cover - defensive
                    return
                self._journal(
                    "record_cursor_position", cursor.cursor_id, cursor.position
                )
        elif op == "query":
            cursor_id = ctx.get("cursor_id")
            if cursor_id and self.cursors.close(cursor_id):
                self._journal("record_cursor_close", cursor_id)


def jsonable_dict(value: dict) -> dict:
    """Engine snapshots contain nested dicts only; make them JSON-safe."""
    return {
        k: jsonable_dict(v) if isinstance(v, dict) else jsonable(v)
        for k, v in value.items()
    }


def _require_str(message: dict, field: str) -> str:
    value = message.get(field)
    if not isinstance(value, str) or not value:
        raise ServiceError(f"request needs a non-empty string {field!r} field")
    return value


def _optional_int(message: dict, field: str, *, floor: int) -> int | None:
    value = message.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServiceError(f"{field!r} must be an integer")
    if value < floor:
        raise ServiceError(f"{field!r} must be >= {floor}, got {value}")
    return value


def _optional_number(message: dict, field: str) -> float | None:
    value = message.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServiceError(f"{field!r} must be a number")
    if not value > 0:
        raise ServiceError(f"{field!r} must be > 0, got {value}")
    return float(value)


def _poisoned_build(skip: int):
    """Replay closure for a stale recovered cursor: always refuses."""
    raise StaleCursorError(
        "cursor predates the recovered data state; re-run the query"
    )


# --------------------------------------------------------------------- #
# embedding helpers
# --------------------------------------------------------------------- #
class ServerThread:
    """A server on a background thread — tests, benchmarks and docs.

    Runs its own event loop; :meth:`start` blocks until the port is
    bound, :meth:`stop` performs the graceful drain.  Usable as a
    context manager::

        with ServerThread(engine, port=0) as handle:
            client = ServiceClient(handle.host, handle.port)
    """

    def __init__(self, engine: QueryEngine, **options: Any):
        options.setdefault("port", 0)
        self.server = ReproServer(engine, **options)
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ServiceError("server thread failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            # Let per-connection handler tasks run their finally blocks
            # (writer close/teardown) before the loop goes away, or
            # their transports raise "Event loop is closed" at GC time.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    def stop(self, timeout: float = 10.0) -> None:
        loop, self._loop = self._loop, None
        if loop is None or self._thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.stop(timeout=timeout), loop
        )
        try:
            future.result(timeout + 5.0)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve(engine: QueryEngine, **options: Any) -> None:
    """Blocking entry point behind ``repro serve``: run until SIGINT/SIGTERM.

    Starts a :class:`ReproServer`, installs signal handlers where the
    platform supports them, and performs the graceful cursor-draining
    shutdown on the way out.
    """
    import signal

    server = ReproServer(engine, **options)

    async def _main() -> None:
        await server.start()
        print(f"repro-service listening on {server.host}:{server.port}", flush=True)
        stop_requested = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop_requested.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        try:
            await stop_requested.wait()
        finally:
            summary = await server.stop()
            print(f"repro-service stopped: {summary}", flush=True)

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - platform fallback
        pass
