"""Admission control: a bounded in-flight limit with per-tenant fairness.

The engine work behind every ``query`` / ``execute`` / ``fetch`` op runs
on a thread pool; letting every connection dispatch at will would both
oversubscribe the pool and let one chatty tenant starve everyone else's
access to the shared plan/score/kernel caches.  :class:`FairGate`
enforces two bounds at the asyncio layer, before any thread is touched:

* at most ``limit`` requests are in flight at once;
* when requests queue, slots are granted **round-robin across tenants**
  — a tenant with 100 queued requests and a tenant with 1 alternate,
  so the light tenant's p99 does not inherit the heavy tenant's queue.
  Within one tenant, requests stay FIFO.

The waiting queue itself is bounded (``max_queue``); beyond it requests
are rejected immediately with
:class:`~repro.service.protocol.OverloadedError` — loadshedding at the
door beats an unbounded latency cliff.

Single-event-loop discipline: every method must be called from the
server's loop; no internal locking is needed or done.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict, deque
from contextlib import asynccontextmanager

from .protocol import OverloadedError

__all__ = ["FairGate"]


class FairGate:
    """An asyncio semaphore with per-tenant round-robin queueing."""

    def __init__(self, limit: int, *, max_queue: int = 256):
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.limit = limit
        self.max_queue = max_queue
        self._inflight = 0
        self._queued = 0
        # tenant -> FIFO of waiter futures; OrderedDict doubles as the
        # round-robin ring (granting pops the first tenant and, if it
        # still has waiters, re-appends it at the back).
        self._waiters: "OrderedDict[str, deque[asyncio.Future]]" = OrderedDict()
        self._idle = asyncio.Event()
        self._idle.set()
        # Counters for the stats op.
        self.admitted = 0
        self.queued_total = 0
        self.rejected = 0
        self.peak_inflight = 0
        self.peak_queued = 0

    # ------------------------------------------------------------------ #
    # acquire / release
    # ------------------------------------------------------------------ #
    async def acquire(self, tenant: str) -> None:
        """Wait for (or immediately take) an execution slot.

        Grants immediately only when a slot is free *and* nobody is
        queued — late arrivals cannot barge past waiting tenants.
        """
        if self._inflight < self.limit and not self._waiters:
            self._admit()
            return
        if self._queued >= self.max_queue:
            self.rejected += 1
            raise OverloadedError(
                f"admission queue full ({self._queued} waiting, "
                f"{self._inflight} in flight)"
            )
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters.setdefault(tenant, deque()).append(waiter)
        self._queued += 1
        self.queued_total += 1
        self.peak_queued = max(self.peak_queued, self._queued)
        try:
            await waiter
        except asyncio.CancelledError:
            if waiter.done() and not waiter.cancelled():
                # Granted and cancelled in the same tick: hand the slot on.
                self.release()
            else:
                self._forget(tenant, waiter)
            raise

    def release(self) -> None:
        """Return a slot and grant the next tenant in the ring."""
        self._inflight -= 1
        self._grant_next()
        if self._inflight == 0 and not self._waiters:
            self._idle.set()

    @asynccontextmanager
    async def slot(self, tenant: str):
        """``async with gate.slot(tenant):`` — acquire/release scope."""
        await self.acquire(tenant)
        try:
            yield
        finally:
            self.release()

    # ------------------------------------------------------------------ #
    # shutdown support
    # ------------------------------------------------------------------ #
    async def drain(self, timeout: float | None = None) -> bool:
        """Wait until nothing is in flight or queued; ``False`` on timeout."""
        if timeout is None:
            await self._idle.wait()
            return True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _admit(self) -> None:
        self._inflight += 1
        self.admitted += 1
        self.peak_inflight = max(self.peak_inflight, self._inflight)
        self._idle.clear()

    def _grant_next(self) -> None:
        while self._waiters and self._inflight < self.limit:
            tenant, queue = next(iter(self._waiters.items()))
            self._waiters.pop(tenant)
            granted = False
            while queue:
                waiter = queue.popleft()
                self._queued -= 1
                if not waiter.done():
                    self._admit()
                    waiter.set_result(None)
                    granted = True
                    break
            if queue:
                self._waiters[tenant] = queue  # back of the ring
            if not granted:
                continue

    def _forget(self, tenant: str, waiter: asyncio.Future) -> None:
        queue = self._waiters.get(tenant)
        if queue is not None:
            try:
                queue.remove(waiter)
                self._queued -= 1
            except ValueError:
                pass
            if not queue:
                self._waiters.pop(tenant, None)
        if self._inflight == 0 and not self._waiters:
            self._idle.set()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def queued(self) -> int:
        return self._queued

    def snapshot(self) -> dict:
        return {
            "limit": self.limit,
            "max_queue": self.max_queue,
            "inflight": self._inflight,
            "queued": self._queued,
            "admitted": self.admitted,
            "queued_total": self.queued_total,
            "rejected": self.rejected,
            "peak_inflight": self.peak_inflight,
            "peak_queued": self.peak_queued,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FairGate(limit={self.limit}, inflight={self._inflight}, "
            f"queued={self._queued})"
        )
