"""Cursor lifecycle: live enumerator state behind resumable handles.

A :class:`Cursor` wraps a *live* ranked stream — the enumerator (or
merged shard stream) handed over by
:meth:`repro.engine.QueryEngine.stream_parallel` — plus everything
needed to rebuild it: next-page fetches pull more answers from the open
stream at enumeration delay cost, they never re-run the query.  That is
the whole point of serving ranked enumeration: answers 1000–1100 cost
~100 delays, not a third re-execution.

The :class:`CursorTable` bounds what live state a server holds:

* **LRU eviction** — at most ``max_live`` cursors keep their stream
  open; opening one more releases the least-recently-used cursor's
  stream (worker threads, queues, heap state).  The cursor *record*
  survives with its ``(query, offset)`` replay spec: the next fetch
  transparently rebuilds the stream and fast-forwards ``offset``
  answers.  Enumeration is deterministic over unchanged data, so the
  replayed tail is identical to the one the evicted stream would have
  produced; if the database generation moved in between, replay refuses
  with :class:`~repro.service.protocol.StaleCursorError` rather than
  silently serving answers from a different ranked order.
* **TTL expiry** — cursors idle longer than ``ttl`` seconds are removed
  entirely (subsequent fetches get ``unknown-cursor``); abandoned
  sessions cannot pin server memory forever.

Everything here is plain synchronous code guarded by locks: fetches run
on the server's executor threads, the asyncio side never touches
cursor internals directly.
"""

from __future__ import annotations

import itertools
import secrets
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Iterator, Sequence

from .protocol import BadOffsetError, UnknownCursorError

__all__ = ["Cursor", "CursorTable"]

#: ``build(skip)`` -> a ranked stream with the first ``skip`` answers
#: already consumed.  ``skip=0`` opens the initial stream; replays pass
#: the cursor's position.  May raise :class:`StaleCursorError`.
StreamBuilder = Callable[[int], Iterator[Any]]


def _close_stream(stream) -> None:
    close = getattr(stream, "close", None)
    if close is not None:
        close()


class Cursor:
    """One client's paging position inside one ranked enumeration.

    Not constructed directly — :meth:`CursorTable.open` wires the id,
    builder and bookkeeping.  Thread-safe: a per-cursor lock serialises
    concurrent fetches (pages stay disjoint and in rank order) and
    fences fetch against eviction.
    """

    __slots__ = (
        "cursor_id",
        "tenant",
        "head",
        "k",
        "generation",
        "position",
        "replays",
        "created_at",
        "last_used",
        "exhausted",
        "_build",
        "_stream",
        "_lock",
        "_on_replay",
        "_pushed",
        "_last_page",
        "_last_start",
    )

    def __init__(
        self,
        cursor_id: str,
        build: StreamBuilder,
        *,
        tenant: str,
        head: Sequence[str],
        k: int | None,
        generation: int | None,
        now: float,
        on_replay: Callable[[], None] | None = None,
    ):
        self.cursor_id = cursor_id
        self.tenant = tenant
        self.head = tuple(head)
        self.k = k
        self.generation = generation
        self.position = 0
        self.replays = 0
        self.created_at = now
        self.last_used = now
        self.exhausted = False
        self._build = build
        self._stream: Iterator[Any] | None = None
        self._lock = threading.Lock()
        self._on_replay = on_replay
        #: Answers returned by :meth:`push_back` (abandoned pages),
        #: served again before the stream is pulled.
        self._pushed: list[Any] = []
        #: Buffered copy of the last non-empty page and its start offset
        #: — re-served verbatim when a client retries the same ``at``
        #: (a response lost to a dropped connection).
        self._last_page: list[Any] | None = None
        self._last_start = 0

    # ------------------------------------------------------------------ #
    # state queries
    # ------------------------------------------------------------------ #
    @property
    def live(self) -> bool:
        """Whether the cursor currently holds an open stream."""
        return self._stream is not None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def prime(self) -> None:
        """Open the initial stream (done at ``query`` time, not first fetch).

        Preprocessing — plan binding, reduction, shard fan-out — happens
        here, so the first page is a pure enumeration fetch like every
        later one.
        """
        with self._lock:
            if self._stream is None and not self.exhausted:
                self._stream = self._build(0)

    def fetch(self, n: int, at: int | None = None) -> tuple[list[Any], bool]:
        """The next ``<= n`` ranked answers and whether the stream is done.

        Resumes the live stream when present; on an evicted (or
        journal-restored) cursor the replay fallback rebuilds the stream
        fast-forwarded to :attr:`position` first.  When the cursor was
        opened with a ``k`` cap, the page is clipped so at most ``k``
        answers are ever emitted in total — a cap reached mid-page marks
        the cursor exhausted in the same response.

        ``at`` is the client's view of its position, making the fetch
        idempotent across retries: matching the current position is a
        normal fetch; matching the *previous* page's start re-serves the
        buffered page verbatim (the response was lost in flight, the
        answers were not); a forward offset on a replayable cursor
        fast-forwards deterministically.  Anything else refuses with
        :class:`~repro.service.protocol.BadOffsetError` — paging is
        exact-or-refuse, never silently resynchronised.
        """
        with self._lock:
            if at is not None:
                at = int(at)
                if at != self.position:
                    if self._last_page is not None and at == self._last_start:
                        return list(self._last_page), (
                            self.exhausted and not self._pushed
                        )
                    if (
                        at > self.position
                        and self._stream is None
                        and not self._pushed
                        and not self.exhausted
                    ):
                        # Replayable and behind the client (e.g. a journal
                        # restored an older offset): deterministic
                        # enumeration makes the skip exact.
                        self.position = at
                    else:
                        raise BadOffsetError(
                            f"cursor {self.cursor_id!r} cannot serve offset "
                            f"{at} (position {self.position}); re-run the "
                            "query"
                        )
            if (self.exhausted and not self._pushed) or n <= 0:
                return [], self.exhausted
            want = n
            if self.k is not None:
                want = min(want, self.k - self.position)
                if want <= 0:
                    self._exhaust_locked()
                    return [], True
            start = self.position
            answers: list[Any] = []
            if self._pushed:
                take = min(want, len(self._pushed))
                answers = self._pushed[:take]
                del self._pushed[:take]
            stream_drained = False
            remaining = want - len(answers)
            if remaining > 0 and not self.exhausted:
                if self._stream is None:
                    # Evicted (or never primed): the recorded
                    # (query, offset) replay path, resumed past any
                    # pushed-back answers just served.
                    self._stream = self._build(start + len(answers))
                    self.replays += 1
                    if self._on_replay is not None:
                        self._on_replay()
                pulled = list(itertools.islice(self._stream, remaining))
                answers.extend(pulled)
                stream_drained = len(pulled) < remaining
            self.position = start + len(answers)
            if stream_drained or (self.k is not None and self.position >= self.k):
                self._exhaust_locked()
            if answers:
                self._last_page = list(answers)
                self._last_start = start
            return answers, self.exhausted and not self._pushed

    def push_back(self, answers: Sequence[Any]) -> None:
        """Return an abandoned page: it will be served again, in order.

        The deadline path uses this when a fetch completes after its
        client stopped waiting — prepending the page keeps the ranked
        sequence exact for the retry (or for a journal-restored resume).
        """
        if not answers:
            return
        with self._lock:
            self._pushed[:0] = list(answers)
            self.position -= len(answers)
            self._last_page = None

    def evict(self) -> bool:
        """Release the live stream, keeping the replayable record.

        Returns whether there was live state to drop.  Fetch-safe: an
        in-flight fetch finishes first (the lock), then the stream goes.
        """
        with self._lock:
            stream, self._stream = self._stream, None
            if stream is None:
                return False
            _close_stream(stream)
            return True

    def close(self) -> None:
        """Terminal: release the stream and refuse further fetches."""
        with self._lock:
            self._exhaust_locked()

    def _exhaust_locked(self) -> None:
        self.exhausted = True
        stream, self._stream = self._stream, None
        if stream is not None:
            _close_stream(stream)

    def describe(self) -> dict:
        """The wire-facing cursor summary (``query`` / ``fetch`` responses)."""
        return {
            "cursor": self.cursor_id,
            "position": self.position,
            "done": self.exhausted and not self._pushed,
            "live": self.live,
            "replays": self.replays,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cursor({self.cursor_id!r}, position={self.position}, "
            f"live={self.live}, done={self.exhausted})"
        )


class CursorTable:
    """All of one server's cursors: id allocation, LRU bound, TTL sweep.

    ``max_live`` bounds cursors *holding open streams* (the expensive
    state); the total record count is bounded by TTL expiry.  A
    ``clock`` injection point keeps the TTL logic testable without
    sleeping.
    """

    def __init__(
        self,
        *,
        max_live: int = 64,
        ttl: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_live < 1:
            raise ValueError(f"max_live must be >= 1, got {max_live}")
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        self.max_live = max_live
        self.ttl = ttl
        self._clock = clock
        self._cursors: "OrderedDict[str, Cursor]" = OrderedDict()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self.opened = 0
        self.closed = 0
        self.expired = 0
        self.evicted = 0
        self.replays = 0
        self.restored = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def open(
        self,
        build: StreamBuilder,
        *,
        tenant: str,
        head: Sequence[str],
        k: int | None = None,
        generation: int | None = None,
    ) -> Cursor:
        """Register (and prime) a new cursor; may LRU-evict an old one."""
        now = self._clock()
        with self._lock:
            cursor_id = f"c{next(self._ids)}-{secrets.token_hex(3)}"
            cursor = Cursor(
                cursor_id,
                build,
                tenant=tenant,
                head=head,
                k=k,
                generation=generation,
                now=now,
                on_replay=self._count_replay,
            )
            self._cursors[cursor_id] = cursor
            self.opened += 1
            self._sweep_locked(now)
        # Prime outside the table lock: preprocessing can be slow and
        # must not block unrelated cursor traffic.
        cursor.prime()
        with self._lock:
            self._evict_over_limit_locked(keep=cursor)
        return cursor

    def restore(
        self,
        cursor_id: str,
        build: StreamBuilder,
        *,
        tenant: str,
        head: Sequence[str],
        k: int | None = None,
        generation: int | None = None,
        position: int = 0,
    ) -> Cursor | None:
        """Re-register a journal-recovered cursor under its original id.

        Unlike :meth:`open`, the stream is *not* primed — a restored
        cursor rebuilds lazily on its first fetch (the replay path), so
        a server restart does not re-run every parked query up front.
        Returns ``None`` when the id already exists (recovery is not
        allowed to clobber live state).
        """
        now = self._clock()
        with self._lock:
            if cursor_id in self._cursors:
                return None
            cursor = Cursor(
                cursor_id,
                build,
                tenant=tenant,
                head=head,
                k=k,
                generation=generation,
                now=now,
                on_replay=self._count_replay,
            )
            cursor.position = int(position)
            self._cursors[cursor_id] = cursor
            self.restored += 1
            return cursor

    def get(self, cursor_id: str) -> Cursor:
        """Look up a cursor, bumping its LRU recency and last-used time."""
        now = self._clock()
        with self._lock:
            self._sweep_locked(now)
            cursor = self._cursors.get(cursor_id)
            if cursor is None:
                raise UnknownCursorError(f"unknown cursor {cursor_id!r}")
            self._cursors.move_to_end(cursor_id)
            cursor.last_used = now
            return cursor

    def close(self, cursor_id: str) -> bool:
        """Close and forget a cursor; ``False`` when it was already gone.

        Idempotent by design — a double close is a no-op, not an error
        (clients and the shutdown drain may race on the same cursor).
        """
        with self._lock:
            cursor = self._cursors.pop(cursor_id, None)
        if cursor is None:
            return False
        cursor.close()
        self.closed += 1
        return True

    def close_all(self) -> int:
        """Drain every open cursor (graceful-shutdown path)."""
        with self._lock:
            cursors = list(self._cursors.values())
            self._cursors.clear()
        for cursor in cursors:
            cursor.close()
        self.closed += len(cursors)
        return len(cursors)

    def sweep(self) -> int:
        """Expire idle cursors now; returns how many were dropped."""
        with self._lock:
            return self._sweep_locked(self._clock())

    # ------------------------------------------------------------------ #
    # internals (table lock held)
    # ------------------------------------------------------------------ #
    def _count_replay(self) -> None:
        # Plain int increment under the GIL; exactness is not worth a
        # lock on the fetch path.
        self.replays += 1

    def _sweep_locked(self, now: float) -> int:
        expired = [
            cursor_id
            for cursor_id, cursor in self._cursors.items()
            if now - cursor.last_used > self.ttl
        ]
        for cursor_id in expired:
            cursor = self._cursors.pop(cursor_id)
            cursor.close()
        self.expired += len(expired)
        return len(expired)

    def _evict_over_limit_locked(self, keep: Cursor | None = None) -> None:
        live = [c for c in self._cursors.values() if c.live]
        excess = len(live) - self.max_live
        for cursor in live:  # oldest-recency first (OrderedDict order)
            if excess <= 0:
                break
            if cursor is keep and excess < len(live):
                continue  # evict an older cursor before the brand-new one
            if cursor.evict():
                self.evicted += 1
                excess -= 1

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._cursors)

    @property
    def live_count(self) -> int:
        with self._lock:
            return sum(1 for c in self._cursors.values() if c.live)

    def snapshot(self) -> dict:
        """Counter view for the ``stats`` op."""
        with self._lock:
            live = sum(1 for c in self._cursors.values() if c.live)
            return {
                "open": len(self._cursors),
                "live": live,
                "max_live": self.max_live,
                "ttl_seconds": self.ttl,
                "opened": self.opened,
                "closed": self.closed,
                "expired": self.expired,
                "evicted": self.evicted,
                "replays": self.replays,
                "restored": self.restored,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CursorTable(open={len(self._cursors)}, max_live={self.max_live})"
