"""Cursor lifecycle: live enumerator state behind resumable handles.

A :class:`Cursor` wraps a *live* ranked stream — the enumerator (or
merged shard stream) handed over by
:meth:`repro.engine.QueryEngine.stream_parallel` — plus everything
needed to rebuild it: next-page fetches pull more answers from the open
stream at enumeration delay cost, they never re-run the query.  That is
the whole point of serving ranked enumeration: answers 1000–1100 cost
~100 delays, not a third re-execution.

The :class:`CursorTable` bounds what live state a server holds:

* **LRU eviction** — at most ``max_live`` cursors keep their stream
  open; opening one more releases the least-recently-used cursor's
  stream (worker threads, queues, heap state).  The cursor *record*
  survives with its ``(query, offset)`` replay spec: the next fetch
  transparently rebuilds the stream and fast-forwards ``offset``
  answers.  Enumeration is deterministic over unchanged data, so the
  replayed tail is identical to the one the evicted stream would have
  produced; if the database generation moved in between, replay refuses
  with :class:`~repro.service.protocol.StaleCursorError` rather than
  silently serving answers from a different ranked order.
* **TTL expiry** — cursors idle longer than ``ttl`` seconds are removed
  entirely (subsequent fetches get ``unknown-cursor``); abandoned
  sessions cannot pin server memory forever.

Everything here is plain synchronous code guarded by locks: fetches run
on the server's executor threads, the asyncio side never touches
cursor internals directly.
"""

from __future__ import annotations

import itertools
import secrets
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Iterator, Sequence

from .protocol import UnknownCursorError

__all__ = ["Cursor", "CursorTable"]

#: ``build(skip)`` -> a ranked stream with the first ``skip`` answers
#: already consumed.  ``skip=0`` opens the initial stream; replays pass
#: the cursor's position.  May raise :class:`StaleCursorError`.
StreamBuilder = Callable[[int], Iterator[Any]]


def _close_stream(stream) -> None:
    close = getattr(stream, "close", None)
    if close is not None:
        close()


class Cursor:
    """One client's paging position inside one ranked enumeration.

    Not constructed directly — :meth:`CursorTable.open` wires the id,
    builder and bookkeeping.  Thread-safe: a per-cursor lock serialises
    concurrent fetches (pages stay disjoint and in rank order) and
    fences fetch against eviction.
    """

    __slots__ = (
        "cursor_id",
        "tenant",
        "head",
        "k",
        "generation",
        "position",
        "replays",
        "created_at",
        "last_used",
        "exhausted",
        "_build",
        "_stream",
        "_lock",
        "_on_replay",
    )

    def __init__(
        self,
        cursor_id: str,
        build: StreamBuilder,
        *,
        tenant: str,
        head: Sequence[str],
        k: int | None,
        generation: int | None,
        now: float,
        on_replay: Callable[[], None] | None = None,
    ):
        self.cursor_id = cursor_id
        self.tenant = tenant
        self.head = tuple(head)
        self.k = k
        self.generation = generation
        self.position = 0
        self.replays = 0
        self.created_at = now
        self.last_used = now
        self.exhausted = False
        self._build = build
        self._stream: Iterator[Any] | None = None
        self._lock = threading.Lock()
        self._on_replay = on_replay

    # ------------------------------------------------------------------ #
    # state queries
    # ------------------------------------------------------------------ #
    @property
    def live(self) -> bool:
        """Whether the cursor currently holds an open stream."""
        return self._stream is not None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def prime(self) -> None:
        """Open the initial stream (done at ``query`` time, not first fetch).

        Preprocessing — plan binding, reduction, shard fan-out — happens
        here, so the first page is a pure enumeration fetch like every
        later one.
        """
        with self._lock:
            if self._stream is None and not self.exhausted:
                self._stream = self._build(0)

    def fetch(self, n: int) -> tuple[list[Any], bool]:
        """The next ``<= n`` ranked answers and whether the stream is done.

        Resumes the live stream when present; on an evicted cursor the
        replay fallback rebuilds the stream fast-forwarded to
        :attr:`position` first.  When the cursor was opened with a ``k``
        cap, the page is clipped so at most ``k`` answers are ever
        emitted in total — a cap reached mid-page marks the cursor
        exhausted in the same response.
        """
        with self._lock:
            if self.exhausted or n <= 0:
                return [], self.exhausted
            want = n
            if self.k is not None:
                want = min(want, self.k - self.position)
                if want <= 0:
                    self._exhaust_locked()
                    return [], True
            if self._stream is None:
                # Evicted (or never primed): the recorded (query, offset)
                # replay path.
                self._stream = self._build(self.position)
                self.replays += 1
                if self._on_replay is not None:
                    self._on_replay()
            answers = list(itertools.islice(self._stream, want))
            self.position += len(answers)
            if len(answers) < want or (self.k is not None and self.position >= self.k):
                self._exhaust_locked()
            return answers, self.exhausted

    def evict(self) -> bool:
        """Release the live stream, keeping the replayable record.

        Returns whether there was live state to drop.  Fetch-safe: an
        in-flight fetch finishes first (the lock), then the stream goes.
        """
        with self._lock:
            stream, self._stream = self._stream, None
            if stream is None:
                return False
            _close_stream(stream)
            return True

    def close(self) -> None:
        """Terminal: release the stream and refuse further fetches."""
        with self._lock:
            self._exhaust_locked()

    def _exhaust_locked(self) -> None:
        self.exhausted = True
        stream, self._stream = self._stream, None
        if stream is not None:
            _close_stream(stream)

    def describe(self) -> dict:
        """The wire-facing cursor summary (``query`` / ``fetch`` responses)."""
        return {
            "cursor": self.cursor_id,
            "position": self.position,
            "done": self.exhausted,
            "live": self.live,
            "replays": self.replays,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cursor({self.cursor_id!r}, position={self.position}, "
            f"live={self.live}, done={self.exhausted})"
        )


class CursorTable:
    """All of one server's cursors: id allocation, LRU bound, TTL sweep.

    ``max_live`` bounds cursors *holding open streams* (the expensive
    state); the total record count is bounded by TTL expiry.  A
    ``clock`` injection point keeps the TTL logic testable without
    sleeping.
    """

    def __init__(
        self,
        *,
        max_live: int = 64,
        ttl: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_live < 1:
            raise ValueError(f"max_live must be >= 1, got {max_live}")
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        self.max_live = max_live
        self.ttl = ttl
        self._clock = clock
        self._cursors: "OrderedDict[str, Cursor]" = OrderedDict()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self.opened = 0
        self.closed = 0
        self.expired = 0
        self.evicted = 0
        self.replays = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def open(
        self,
        build: StreamBuilder,
        *,
        tenant: str,
        head: Sequence[str],
        k: int | None = None,
        generation: int | None = None,
    ) -> Cursor:
        """Register (and prime) a new cursor; may LRU-evict an old one."""
        now = self._clock()
        with self._lock:
            cursor_id = f"c{next(self._ids)}-{secrets.token_hex(3)}"
            cursor = Cursor(
                cursor_id,
                build,
                tenant=tenant,
                head=head,
                k=k,
                generation=generation,
                now=now,
                on_replay=self._count_replay,
            )
            self._cursors[cursor_id] = cursor
            self.opened += 1
            self._sweep_locked(now)
        # Prime outside the table lock: preprocessing can be slow and
        # must not block unrelated cursor traffic.
        cursor.prime()
        with self._lock:
            self._evict_over_limit_locked(keep=cursor)
        return cursor

    def get(self, cursor_id: str) -> Cursor:
        """Look up a cursor, bumping its LRU recency and last-used time."""
        now = self._clock()
        with self._lock:
            self._sweep_locked(now)
            cursor = self._cursors.get(cursor_id)
            if cursor is None:
                raise UnknownCursorError(f"unknown cursor {cursor_id!r}")
            self._cursors.move_to_end(cursor_id)
            cursor.last_used = now
            return cursor

    def close(self, cursor_id: str) -> bool:
        """Close and forget a cursor; ``False`` when it was already gone.

        Idempotent by design — a double close is a no-op, not an error
        (clients and the shutdown drain may race on the same cursor).
        """
        with self._lock:
            cursor = self._cursors.pop(cursor_id, None)
        if cursor is None:
            return False
        cursor.close()
        self.closed += 1
        return True

    def close_all(self) -> int:
        """Drain every open cursor (graceful-shutdown path)."""
        with self._lock:
            cursors = list(self._cursors.values())
            self._cursors.clear()
        for cursor in cursors:
            cursor.close()
        self.closed += len(cursors)
        return len(cursors)

    def sweep(self) -> int:
        """Expire idle cursors now; returns how many were dropped."""
        with self._lock:
            return self._sweep_locked(self._clock())

    # ------------------------------------------------------------------ #
    # internals (table lock held)
    # ------------------------------------------------------------------ #
    def _count_replay(self) -> None:
        # Plain int increment under the GIL; exactness is not worth a
        # lock on the fetch path.
        self.replays += 1

    def _sweep_locked(self, now: float) -> int:
        expired = [
            cursor_id
            for cursor_id, cursor in self._cursors.items()
            if now - cursor.last_used > self.ttl
        ]
        for cursor_id in expired:
            cursor = self._cursors.pop(cursor_id)
            cursor.close()
        self.expired += len(expired)
        return len(expired)

    def _evict_over_limit_locked(self, keep: Cursor | None = None) -> None:
        live = [c for c in self._cursors.values() if c.live]
        excess = len(live) - self.max_live
        for cursor in live:  # oldest-recency first (OrderedDict order)
            if excess <= 0:
                break
            if cursor is keep and excess < len(live):
                continue  # evict an older cursor before the brand-new one
            if cursor.evict():
                self.evicted += 1
                excess -= 1

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._cursors)

    @property
    def live_count(self) -> int:
        with self._lock:
            return sum(1 for c in self._cursors.values() if c.live)

    def snapshot(self) -> dict:
        """Counter view for the ``stats`` op."""
        with self._lock:
            live = sum(1 for c in self._cursors.values() if c.live)
            return {
                "open": len(self._cursors),
                "live": live,
                "max_live": self.max_live,
                "ttl_seconds": self.ttl,
                "opened": self.opened,
                "closed": self.closed,
                "expired": self.expired,
                "evicted": self.evicted,
                "replays": self.replays,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CursorTable(open={len(self._cursors)}, max_live={self.max_live})"
