"""Wire protocol of the ranked-query service: line-delimited JSON.

One request per line, one response per line, UTF-8, ``\\n``-terminated.
Requests are JSON objects with an ``"op"`` field; responses carry
``"ok": true`` plus the op's payload, or ``"ok": false`` plus an
``"error": {"code", "message"}`` object.  A client-supplied ``"id"``
field is echoed back verbatim for correlation.  The full op reference
lives in ``docs/service.md``; the shapes here are the single source of
truth both sides (``server.py`` / ``client.py``) build on.

Answers travel as ``[values, score]`` pairs.  JSON has no tuples, so
values and composite (LEX) scores arrive as lists; :func:`tupled`
restores the library's tuple form on the client so that a decoded
answer compares equal to the same answer serialised from a local
:meth:`~repro.engine.QueryEngine.execute` run — the identity checks in
``benchmarks/bench_service_load.py`` depend on exactly this round-trip.
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "CURSOR_BACKENDS",
    "ServiceError",
    "UnknownCursorError",
    "StaleCursorError",
    "OverloadedError",
    "DeadlineExceededError",
    "BadOffsetError",
    "jsonable",
    "tupled",
    "encode_answers",
    "decode_answers",
    "dump_message",
    "parse_message",
    "error_response",
]

PROTOCOL_VERSION = 1

#: Framing bound: requests and responses beyond this are protocol errors
#: (the server passes it to ``asyncio.start_server(limit=...)``).  Large
#: result sets are meant to be paged through cursors, not shipped as one
#: giant line.
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Backends a cursor session may pick.  ``processes`` is deliberately
#: absent: a cursor holds its stream open across requests, and pinning a
#: process pool to every idle cursor is the wrong resource shape for a
#: server (the eager ``execute`` op has no such restriction server-side,
#: but the service keeps one contract for both).
CURSOR_BACKENDS = ("serial", "threads")


class ServiceError(ReproError):
    """A request-level failure with a machine-readable ``code``.

    The server turns these into ``"ok": false`` responses without
    dropping the connection; the client raises them back to the caller.
    """

    code = "bad-request"

    def __init__(self, message: str, *, code: str | None = None):
        super().__init__(message)
        if code is not None:
            self.code = code


class UnknownCursorError(ServiceError):
    """The cursor id is not (or no longer) known to the server."""

    code = "unknown-cursor"


class StaleCursorError(ServiceError):
    """An evicted cursor could not replay: the data changed underneath it."""

    code = "stale-cursor"


class OverloadedError(ServiceError):
    """Admission control refused the request (queue bound exceeded)."""

    code = "overloaded"


class DeadlineExceededError(ServiceError):
    """The request's ``deadline`` elapsed before the server finished.

    The work is abandoned server-side (a fetch's page is pushed back so
    no answers are skipped); the client may retry with a longer deadline.
    """

    code = "deadline-exceeded"


class BadOffsetError(ServiceError):
    """A fetch's ``at`` offset does not match any servable position.

    Exact-or-refuse paging: the server re-serves its buffered last page
    or fast-forwards a replayable cursor, but never guesses across an
    unservable gap — the client re-runs the query instead.
    """

    code = "bad-offset"


def jsonable(value: Any) -> Any:
    """A JSON-safe view of an answer component (tuples become lists)."""
    if isinstance(value, (tuple, list)):
        return [jsonable(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def tupled(value: Any) -> Any:
    """Undo :func:`jsonable`'s tuple flattening (lists become tuples)."""
    if isinstance(value, list):
        return tuple(tupled(v) for v in value)
    return value


def encode_answers(answers) -> list:
    """``RankedAnswer``-likes -> the wire form ``[[values, score], ...]``."""
    return [[jsonable(a.values), jsonable(a.score)] for a in answers]


def decode_answers(payload: list) -> list[tuple[tuple, Any]]:
    """Wire form -> ``[(values_tuple, score), ...]`` (client side)."""
    return [(tupled(values), tupled(score)) for values, score in payload]


def dump_message(message: dict) -> bytes:
    """Serialise one protocol message to its wire line."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def parse_message(line: bytes) -> dict:
    """Parse one wire line; :class:`ServiceError` on malformed input."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceError(f"malformed message: {exc}", code="parse-error") from exc
    if not isinstance(message, dict):
        raise ServiceError("message must be a JSON object", code="parse-error")
    return message


def error_response(exc: ServiceError, *, op: str | None = None, id: Any = None) -> dict:
    """The ``"ok": false`` wire form of a :class:`ServiceError`."""
    response: dict = {"ok": False, "error": {"code": exc.code, "message": str(exc)}}
    if op is not None:
        response["op"] = op
    if id is not None:
        response["id"] = id
    return response
