"""repro.service — the async ranked-query service layer.

A network front-end over one :class:`~repro.engine.QueryEngine`:
clients submit queries and page through ranked answers via server-side
**cursors** that park live enumerator state, so fetching answers
1000–1100 costs ~100 enumeration delays — never a re-run.  The layer
adds what serving needs on top of the engine: session/cursor lifecycle
with TTL expiry and LRU eviction (evicted cursors resume via
``(query, offset)`` replay), per-tenant fair admission control with
load shedding, exact per-request kernel/score counters under
concurrency, and graceful cursor-draining shutdown.

Module map — each is the single home of one concern:

* :mod:`.protocol` — line-JSON wire shapes, error codes, answer codecs.
* :mod:`.cursors`  — :class:`Cursor` / :class:`CursorTable` lifecycle.
* :mod:`.admission` — :class:`FairGate` bounded fair scheduling.
* :mod:`.server`   — :class:`ReproServer` (asyncio), :class:`ServerThread`,
  the blocking :func:`serve` behind ``repro serve``.
* :mod:`.client`   — :class:`ServiceClient` / :class:`RemoteCursor`,
  ``repro query --connect``'s transport.

This package depends only on the engine's public surface (enforced by
``tools/check_layering.py`` rule 3); see ``docs/service.md`` for the
protocol and operational contracts.
"""

from .admission import FairGate
from .client import RemoteCursor, ServiceClient, connect
from .cursors import Cursor, CursorTable
from .protocol import (
    CURSOR_BACKENDS,
    PROTOCOL_VERSION,
    OverloadedError,
    ServiceError,
    StaleCursorError,
    UnknownCursorError,
)
from .server import DEFAULT_PORT, ReproServer, ServerThread, serve

__all__ = [
    "ReproServer",
    "ServerThread",
    "serve",
    "ServiceClient",
    "RemoteCursor",
    "connect",
    "Cursor",
    "CursorTable",
    "FairGate",
    "ServiceError",
    "UnknownCursorError",
    "StaleCursorError",
    "OverloadedError",
    "PROTOCOL_VERSION",
    "CURSOR_BACKENDS",
    "DEFAULT_PORT",
]
