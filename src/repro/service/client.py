"""Blocking client for the ranked-query service.

:class:`ServiceClient` speaks the line-JSON protocol over a plain TCP
socket; :class:`RemoteCursor` mirrors the server-side cursor so paging
code reads like iterating a local stream::

    with connect("127.0.0.1", 7461) as client:
        with client.query("q(x, y) :- r(x, y), s(y, z)", k=50) as cursor:
            for values, score in cursor:
                ...

Answers come back as ``(values_tuple, score)`` pairs — the same shapes a
local :meth:`~repro.engine.QueryEngine.execute` produces (tuples
restored from JSON lists by :func:`~repro.service.protocol.tupled`), so
remote results compare equal to local ones.

The client is synchronous and thread-safe (one request/response pair at
a time under an internal lock); for concurrent load, open one client per
thread — connections are cheap, the server multiplexes them.

Resilience: *idempotent* ops (``ping`` / ``stats`` / ``fetch`` /
``close``) transparently reconnect and retry with exponential backoff
plus jitter when the connection drops (``ConnectionResetError``,
``BrokenPipeError``, a half-read response).  This is safe because every
``fetch`` carries the cursor's expected offset (``at``): a retried fetch
whose original response was lost in flight gets the server's buffered
last page re-served verbatim, never a skipped or duplicated answer.
Non-idempotent ops (``query`` / ``execute``) fail fast — the caller
decides whether re-running the query is acceptable.
"""

from __future__ import annotations

import itertools
import random
import socket
import threading
import time
from typing import Any, Iterator

from ..testing.faultinject import fault_point
from .protocol import (
    BadOffsetError,
    DeadlineExceededError,
    OverloadedError,
    ServiceError,
    StaleCursorError,
    UnknownCursorError,
    decode_answers,
    dump_message,
    parse_message,
)

__all__ = ["ServiceClient", "RemoteCursor", "connect"]

#: Wire error code -> the exception class raised client-side.
_ERROR_TYPES: dict[str, type[ServiceError]] = {
    "unknown-cursor": UnknownCursorError,
    "stale-cursor": StaleCursorError,
    "overloaded": OverloadedError,
    "deadline-exceeded": DeadlineExceededError,
    "bad-offset": BadOffsetError,
}

#: Ops that are safe to resend after a dropped connection.  ``fetch``
#: qualifies because it always carries its expected offset (``at``) and
#: the server re-serves the buffered page on a repeat offset.
_IDEMPOTENT = frozenset({"ping", "stats", "fetch", "close"})


def _raise_for(error: dict) -> None:
    code = error.get("code", "bad-request")
    message = error.get("message", "request failed")
    cls = _ERROR_TYPES.get(code)
    if cls is not None:
        raise cls(message)
    raise ServiceError(message, code=code)


class RemoteCursor:
    """Client-side handle on a server cursor: page, iterate, close.

    Tracks the server's view after every fetch — :attr:`position`,
    :attr:`done`, :attr:`replays` (how often eviction forced a replay
    rebuild) and :attr:`last_stats` (the per-request engine counters the
    server measured for the most recent page).
    """

    def __init__(self, client: "ServiceClient", payload: dict):
        self._client = client
        self.cursor_id: str = payload["cursor"]
        self.head: tuple = tuple(payload.get("head", ()))
        self.position: int = payload.get("position", 0)
        self.done: bool = payload.get("done", False)
        self.replays: int = payload.get("replays", 0)
        self.last_stats: dict | None = payload.get("stats")
        self._closed = False

    def fetch(
        self, n: int | None = None, *, deadline: float | None = None
    ) -> list[tuple[tuple, Any]]:
        """The next page: up to ``n`` ranked answers (server default if None).

        Returns ``[]`` once the enumeration (or the ``k`` cap) is
        exhausted; :attr:`done` flips accordingly.  The request carries
        the cursor's expected offset, so a fetch retried across a
        reconnect (or against a restarted, journal-recovered server)
        resumes at exactly this position.  ``deadline`` bounds the
        server-side work in seconds (:class:`DeadlineExceededError` on
        expiry; the page is pushed back, so a retry loses nothing).
        """
        if self._closed or self.done:
            return []
        fields: dict = {"cursor": self.cursor_id, "at": self.position}
        if n is not None:
            fields["n"] = n
        if deadline is not None:
            fields["deadline"] = deadline
        payload = self._client.request("fetch", **fields)
        self.position = payload["position"]
        self.done = payload["done"]
        self.replays = payload["replays"]
        self.last_stats = payload.get("stats")
        return decode_answers(payload["answers"])

    def pages(self, n: int | None = None) -> Iterator[list[tuple[tuple, Any]]]:
        """Iterate page-by-page until exhausted."""
        while not self.done and not self._closed:
            page = self.fetch(n)
            if page:
                yield page

    def __iter__(self) -> Iterator[tuple[tuple, Any]]:
        for page in self.pages():
            yield from page

    def close(self) -> bool:
        """Release the server-side cursor (idempotent)."""
        if self._closed:
            return False
        self._closed = True
        try:
            payload = self._client.request("close", cursor=self.cursor_id)
        except (ServiceError, OSError):
            # Connection already gone: the server's TTL sweep will reap it.
            return False
        return bool(payload.get("closed"))

    def __enter__(self) -> "RemoteCursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RemoteCursor({self.cursor_id!r}, position={self.position}, "
            f"done={self.done})"
        )


class ServiceClient:
    """One TCP connection to a :class:`~repro.service.server.ReproServer`.

    ``retries`` bounds the reconnect budget for idempotent ops; each
    retry sleeps ``backoff * 2**(attempt-1)`` seconds (capped at
    ``backoff_cap``) scaled by uniform jitter in ``[0.5, 1.0)`` so a
    fleet of clients does not reconnect in lockstep.  Pass a seeded
    ``rng`` for deterministic jitter in tests.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7461,
        *,
        tenant: str = "default",
        timeout: float = 60.0,
        retries: int = 3,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        rng: random.Random | None = None,
    ):
        self.tenant = tenant
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.reconnects = 0
        self._rng = rng if rng is not None else random.Random()
        self._sock: socket.socket | None = None
        self._rfile = None
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._connect()

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _connect(self) -> None:
        fault_point("client.connect")
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._rfile = self._sock.makefile("rb")

    def _teardown(self) -> None:
        for closer in (self._rfile, self._sock):
            if closer is not None:
                try:
                    closer.close()
                except OSError:  # pragma: no cover - best effort
                    pass
        self._rfile = None
        self._sock = None

    def request(self, op: str, **fields: Any) -> dict:
        """Send one op and return its payload; raises on ``"ok": false``.

        Idempotent ops survive a dropped connection: the client tears
        the socket down, reconnects with jittered exponential backoff
        and resends, up to ``retries`` times.  Anything else — including
        ``query``/``execute``, which may have taken effect server-side —
        surfaces the failure to the caller immediately.
        """
        message = {"op": op, "id": next(self._ids), "tenant": self.tenant}
        message.update({k: v for k, v in fields.items() if v is not None})
        line = self._exchange(dump_message(message), retry=op in _IDEMPOTENT)
        response = parse_message(line)
        if not response.get("ok"):
            _raise_for(response.get("error", {}))
        return response

    def _exchange(self, data: bytes, *, retry: bool) -> bytes:
        attempts = self.retries + 1 if retry else 1
        with self._lock:
            for attempt in range(attempts):
                if attempt:
                    delay = min(
                        self.backoff_cap, self.backoff * (2 ** (attempt - 1))
                    )
                    time.sleep(delay * (0.5 + self._rng.random() / 2))
                try:
                    if self._sock is None:
                        self._connect()
                        if attempt:
                            self.reconnects += 1
                    self._sock.sendall(data)
                    line = self._rfile.readline()
                    if not line.endswith(b"\n"):
                        # Empty read or a half-written response: the
                        # server went away mid-line — never parse it.
                        raise ServiceError(
                            "connection closed by server", code="disconnected"
                        )
                    return line
                except ServiceError as exc:
                    if exc.code != "disconnected":
                        raise
                    self._teardown()
                    if attempt + 1 == attempts:
                        raise
                except OSError as exc:
                    self._teardown()
                    if attempt + 1 == attempts:
                        raise ServiceError(
                            f"connection failed after {attempts} "
                            f"attempt(s): {exc}",
                            code="disconnected",
                        ) from exc
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------ #
    # ops
    # ------------------------------------------------------------------ #
    def ping(self) -> dict:
        return self.request("ping")

    def stats(self) -> dict:
        """Server observability: service/admission/cursor/engine counters."""
        return self.request("stats")

    def query(
        self,
        query: str,
        *,
        k: int | None = None,
        rank: str | None = None,
        desc: Any = None,
        shards: int | None = None,
        backend: str | None = None,
        deadline: float | None = None,
    ) -> RemoteCursor:
        """Open a server-side cursor over a ranked enumeration.

        ``rank`` names a ranking (``sum`` / ``avg`` / ``min`` / ``max`` /
        ``product`` / ``lex``); ``desc`` is a bool for aggregates or a
        list of attribute names for ``lex``.  ``shards``/``backend``
        select sharded enumeration (``serial`` or ``threads``).
        ``deadline`` bounds the server-side open in seconds.
        """
        payload = self.request(
            "query",
            query=query,
            k=k,
            rank=rank,
            desc=desc,
            shards=shards,
            backend=backend,
            deadline=deadline,
        )
        return RemoteCursor(self, payload)

    def execute(
        self,
        query: str,
        *,
        k: int | None = None,
        rank: str | None = None,
        desc: Any = None,
        shards: int | None = None,
        backend: str | None = None,
        deadline: float | None = None,
    ) -> list[tuple[tuple, Any]]:
        """One-shot ranked execution (no cursor); answers materialised."""
        payload = self.request(
            "execute",
            query=query,
            k=k,
            rank=rank,
            desc=desc,
            shards=shards,
            backend=backend,
            deadline=deadline,
        )
        self.last_stats = payload.get("stats")
        return decode_answers(payload["answers"])

    #: Engine counters for the most recent :meth:`execute` response.
    last_stats: dict | None = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect(
    host: str = "127.0.0.1",
    port: int = 7461,
    *,
    tenant: str = "default",
    timeout: float = 60.0,
    retries: int = 3,
    backoff: float = 0.05,
    rng: random.Random | None = None,
) -> ServiceClient:
    """Open a :class:`ServiceClient` (use as a context manager)."""
    return ServiceClient(
        host,
        port,
        tenant=tenant,
        timeout=timeout,
        retries=retries,
        backoff=backoff,
        rng=rng,
    )
