"""Blocking client for the ranked-query service.

:class:`ServiceClient` speaks the line-JSON protocol over a plain TCP
socket; :class:`RemoteCursor` mirrors the server-side cursor so paging
code reads like iterating a local stream::

    with connect("127.0.0.1", 7461) as client:
        with client.query("q(x, y) :- r(x, y), s(y, z)", k=50) as cursor:
            for values, score in cursor:
                ...

Answers come back as ``(values_tuple, score)`` pairs — the same shapes a
local :meth:`~repro.engine.QueryEngine.execute` produces (tuples
restored from JSON lists by :func:`~repro.service.protocol.tupled`), so
remote results compare equal to local ones.

The client is synchronous and thread-safe (one request/response pair at
a time under an internal lock); for concurrent load, open one client per
thread — connections are cheap, the server multiplexes them.
"""

from __future__ import annotations

import itertools
import socket
import threading
from typing import Any, Iterator

from .protocol import (
    OverloadedError,
    ServiceError,
    StaleCursorError,
    UnknownCursorError,
    decode_answers,
    dump_message,
    parse_message,
)

__all__ = ["ServiceClient", "RemoteCursor", "connect"]

#: Wire error code -> the exception class raised client-side.
_ERROR_TYPES: dict[str, type[ServiceError]] = {
    "unknown-cursor": UnknownCursorError,
    "stale-cursor": StaleCursorError,
    "overloaded": OverloadedError,
}


def _raise_for(error: dict) -> None:
    code = error.get("code", "bad-request")
    message = error.get("message", "request failed")
    cls = _ERROR_TYPES.get(code)
    if cls is not None:
        raise cls(message)
    raise ServiceError(message, code=code)


class RemoteCursor:
    """Client-side handle on a server cursor: page, iterate, close.

    Tracks the server's view after every fetch — :attr:`position`,
    :attr:`done`, :attr:`replays` (how often eviction forced a replay
    rebuild) and :attr:`last_stats` (the per-request engine counters the
    server measured for the most recent page).
    """

    def __init__(self, client: "ServiceClient", payload: dict):
        self._client = client
        self.cursor_id: str = payload["cursor"]
        self.head: tuple = tuple(payload.get("head", ()))
        self.position: int = payload.get("position", 0)
        self.done: bool = payload.get("done", False)
        self.replays: int = payload.get("replays", 0)
        self.last_stats: dict | None = payload.get("stats")
        self._closed = False

    def fetch(self, n: int | None = None) -> list[tuple[tuple, Any]]:
        """The next page: up to ``n`` ranked answers (server default if None).

        Returns ``[]`` once the enumeration (or the ``k`` cap) is
        exhausted; :attr:`done` flips accordingly.
        """
        if self._closed or self.done:
            return []
        fields: dict = {"cursor": self.cursor_id}
        if n is not None:
            fields["n"] = n
        payload = self._client.request("fetch", **fields)
        self.position = payload["position"]
        self.done = payload["done"]
        self.replays = payload["replays"]
        self.last_stats = payload.get("stats")
        return decode_answers(payload["answers"])

    def pages(self, n: int | None = None) -> Iterator[list[tuple[tuple, Any]]]:
        """Iterate page-by-page until exhausted."""
        while not self.done and not self._closed:
            page = self.fetch(n)
            if page:
                yield page

    def __iter__(self) -> Iterator[tuple[tuple, Any]]:
        for page in self.pages():
            yield from page

    def close(self) -> bool:
        """Release the server-side cursor (idempotent)."""
        if self._closed:
            return False
        self._closed = True
        try:
            payload = self._client.request("close", cursor=self.cursor_id)
        except (ServiceError, OSError):
            # Connection already gone: the server's TTL sweep will reap it.
            return False
        return bool(payload.get("closed"))

    def __enter__(self) -> "RemoteCursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RemoteCursor({self.cursor_id!r}, position={self.position}, "
            f"done={self.done})"
        )


class ServiceClient:
    """One TCP connection to a :class:`~repro.service.server.ReproServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7461,
        *,
        tenant: str = "default",
        timeout: float = 60.0,
    ):
        self.tenant = tenant
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self._sock.makefile("rb")
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def request(self, op: str, **fields: Any) -> dict:
        """Send one op and return its payload; raises on ``"ok": false``."""
        message = {"op": op, "id": next(self._ids), "tenant": self.tenant}
        message.update({k: v for k, v in fields.items() if v is not None})
        with self._lock:
            self._sock.sendall(dump_message(message))
            line = self._rfile.readline()
        if not line:
            raise ServiceError("connection closed by server", code="disconnected")
        response = parse_message(line)
        if not response.get("ok"):
            _raise_for(response.get("error", {}))
        return response

    # ------------------------------------------------------------------ #
    # ops
    # ------------------------------------------------------------------ #
    def ping(self) -> dict:
        return self.request("ping")

    def stats(self) -> dict:
        """Server observability: service/admission/cursor/engine counters."""
        return self.request("stats")

    def query(
        self,
        query: str,
        *,
        k: int | None = None,
        rank: str | None = None,
        desc: Any = None,
        shards: int | None = None,
        backend: str | None = None,
    ) -> RemoteCursor:
        """Open a server-side cursor over a ranked enumeration.

        ``rank`` names a ranking (``sum`` / ``avg`` / ``min`` / ``max`` /
        ``product`` / ``lex``); ``desc`` is a bool for aggregates or a
        list of attribute names for ``lex``.  ``shards``/``backend``
        select sharded enumeration (``serial`` or ``threads``).
        """
        payload = self.request(
            "query",
            query=query,
            k=k,
            rank=rank,
            desc=desc,
            shards=shards,
            backend=backend,
        )
        return RemoteCursor(self, payload)

    def execute(
        self,
        query: str,
        *,
        k: int | None = None,
        rank: str | None = None,
        desc: Any = None,
        shards: int | None = None,
        backend: str | None = None,
    ) -> list[tuple[tuple, Any]]:
        """One-shot ranked execution (no cursor); answers materialised."""
        payload = self.request(
            "execute",
            query=query,
            k=k,
            rank=rank,
            desc=desc,
            shards=shards,
            backend=backend,
        )
        self.last_stats = payload.get("stats")
        return decode_answers(payload["answers"])

    #: Engine counters for the most recent :meth:`execute` response.
    last_stats: dict | None = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        try:
            self._rfile.close()
        except OSError:  # pragma: no cover - best effort
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - best effort
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect(
    host: str = "127.0.0.1",
    port: int = 7461,
    *,
    tenant: str = "default",
    timeout: float = 60.0,
) -> ServiceClient:
    """Open a :class:`ServiceClient` (use as a context manager)."""
    return ServiceClient(host, port, tenant=tenant, timeout=timeout)
