"""Query hypergraphs, the GYO reduction, and acyclicity.

A join query's *hypergraph* has one vertex per variable and one hyperedge
per atom.  The query is **α-acyclic** exactly when the GYO (Graham /
Yu–Özsoyoğlu) reduction empties the hypergraph by repeatedly applying:

1. *ear vertex removal* — delete a vertex that appears in exactly one edge;
2. *subsumed edge removal* — delete an edge contained in another edge.

The reduction also yields a witness join tree: when edge ``e`` is removed
because it is contained in edge ``w``, ``w`` becomes ``e``'s neighbour in
the join tree.  :mod:`repro.query.jointree` consumes that witness map.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = ["Hypergraph", "GYOResult", "gyo_reduction"]


class Hypergraph:
    """An immutable multihypergraph ``edge name -> variable set``.

    Edge names are atom aliases, so self-joins contribute multiple edges
    with (possibly) identical variable sets.

    Examples
    --------
    >>> h = Hypergraph({"R": {"a", "b"}, "S": {"b", "c"}})
    >>> h.is_acyclic()
    True
    >>> tri = Hypergraph({"R": {"x","y"}, "S": {"y","z"}, "T": {"z","x"}})
    >>> tri.is_acyclic()
    False
    """

    __slots__ = ("edges",)

    def __init__(self, edges: Mapping[str, Iterable[str]]):
        self.edges: dict[str, frozenset[str]] = {
            name: frozenset(vs) for name, vs in edges.items()
        }

    @property
    def vertices(self) -> frozenset[str]:
        """All variables across edges."""
        out: set[str] = set()
        for vs in self.edges.values():
            out |= vs
        return frozenset(out)

    def incident_edges(self, vertex: str) -> list[str]:
        """Names of edges containing ``vertex``."""
        return [name for name, vs in self.edges.items() if vertex in vs]

    def primal_graph(self) -> dict[str, set[str]]:
        """The primal (Gaifman) graph: variables adjacent iff they co-occur
        in some edge.  Used by the GHD search."""
        adj: dict[str, set[str]] = {v: set() for v in self.vertices}
        for vs in self.edges.values():
            for v in vs:
                adj[v] |= vs - {v}
        return adj

    def is_acyclic(self) -> bool:
        """α-acyclicity via the GYO reduction."""
        return gyo_reduction(self).acyclic

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{n}{sorted(vs)}" for n, vs in self.edges.items())
        return f"Hypergraph({inner})"


class GYOResult:
    """Outcome of a GYO reduction.

    Attributes
    ----------
    acyclic:
        True when the reduction succeeded.
    witness:
        ``removed edge -> absorbing edge`` containment witnesses, in
        removal order.  For an acyclic hypergraph these edges, read as
        undirected links, form a join tree over all atom aliases (the
        final surviving edge is the tree's natural root candidate).
    survivor:
        Name of the last remaining edge (``None`` if the input was empty
        or the reduction got stuck).
    """

    __slots__ = ("acyclic", "witness", "survivor")

    def __init__(self, acyclic: bool, witness: list[tuple[str, str]], survivor: str | None):
        self.acyclic = acyclic
        self.witness = witness
        self.survivor = survivor


def gyo_reduction(hypergraph: Hypergraph) -> GYOResult:
    """Run the GYO reduction, recording containment witnesses.

    The loop alternates the two GYO rules until neither applies.  The
    hypergraph is acyclic iff a single edge remains.  Deterministic:
    candidates are scanned in insertion order so join trees are stable
    across runs (important for reproducible benchmarks).
    """
    # Work on mutable copies of the edge sets.
    edges: dict[str, set[str]] = {n: set(vs) for n, vs in hypergraph.edges.items()}
    if not edges:
        return GYOResult(True, [], None)
    witness: list[tuple[str, str]] = []

    changed = True
    while changed and len(edges) > 1:
        changed = False

        # Rule 1: remove vertices appearing in exactly one edge.
        counts: dict[str, int] = {}
        for vs in edges.values():
            for v in vs:
                counts[v] = counts.get(v, 0) + 1
        lonely = {v for v, c in counts.items() if c == 1}
        if lonely:
            for vs in edges.values():
                if vs & lonely:
                    vs -= lonely
                    changed = True

        # Rule 2: remove one edge contained in another edge.  Only one
        # removal per pass (then vertex counts are recomputed), so equal
        # edge sets cannot eliminate each other.
        names = list(edges)
        removed = None
        for a in names:
            for b in names:
                if a != b and edges[a] <= edges[b]:
                    witness.append((a, b))
                    removed = a
                    break
            if removed:
                break
        if removed is not None:
            del edges[removed]
            changed = True

    if len(edges) == 1:
        return GYOResult(True, witness, next(iter(edges)))

    # Stuck with >1 edge: cyclic — unless the leftovers became empty sets
    # (possible when atoms are disconnected single-variable edges).
    nonempty = {n for n, vs in edges.items() if vs}
    if not nonempty:
        # All variables eliminated: link the empty edges in a chain (they are
        # cartesian-product components; any tree over them is a join tree).
        names = list(edges)
        for a, b in zip(names, names[1:]):
            witness.append((a, b))
        return GYOResult(True, witness, names[-1])
    return GYOResult(False, witness, None)
