"""Query model: CQs/UCQs, hypergraphs, join trees, GHDs, parser."""

from .ghd import GHD, Bag, find_ghd, fractional_edge_cover
from .hypergraph import Hypergraph, gyo_reduction
from .jointree import JoinTree, JoinTreeNode, build_join_tree
from .parser import parse_query, parse_rule
from .properties import classify_query, delay_guarantee, is_acyclic, is_free_connex
from .query import Atom, Const, JoinProjectQuery, UnionQuery

__all__ = [
    "Atom",
    "Const",
    "JoinProjectQuery",
    "UnionQuery",
    "Hypergraph",
    "gyo_reduction",
    "JoinTree",
    "JoinTreeNode",
    "build_join_tree",
    "GHD",
    "Bag",
    "find_ghd",
    "fractional_edge_cover",
    "parse_query",
    "parse_rule",
    "classify_query",
    "delay_guarantee",
    "is_acyclic",
    "is_free_connex",
]
