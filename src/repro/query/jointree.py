"""Join trees for acyclic queries (paper §2, Figure 1).

A *join tree* has one node per atom; for every variable the nodes whose
atoms contain it form a connected subtree (the running-intersection
property).  Rooting the tree defines, per node ``i``:

* ``anchor(R_i)`` — the variables shared with the parent (``∅`` at the
  root).  Priority queues in Algorithm 1 are indexed by anchor values.
* *owned head variables* — the projection variables whose topmost
  occurrence is this node; every projection variable is owned by exactly
  one node, which is how partial outputs compose without double counting.
* ``A^π_i`` — the ordered projection variables of the subtree rooted at
  ``i``, laid out in the paper's in-order traversal (first child's block,
  then the node's own variables, then the remaining children's blocks).

Construction uses the GYO reduction witness map, so it works for any
acyclic query including self-joins; a :class:`~repro.errors.CyclicQueryError`
is raised otherwise.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..errors import CyclicQueryError, QueryError
from .hypergraph import Hypergraph, gyo_reduction
from .query import Atom, JoinProjectQuery

__all__ = ["JoinTreeNode", "JoinTree", "build_join_tree"]


class JoinTreeNode:
    """One node of a rooted join tree.

    Attributes
    ----------
    atom:
        The query atom at this node.
    parent / children:
        Tree links (``parent is None`` at the root).
    anchor:
        Ordered variables shared with the parent (``()`` at the root).
    own_head_vars:
        Projection variables owned by this node (topmost occurrence),
        ordered as they appear in the atom.
    subtree_head_vars:
        The paper's ``A^π_i``: ordered projection variables of the whole
        subtree, in in-order layout.  Filled by :class:`JoinTree`.
    """

    __slots__ = (
        "atom",
        "parent",
        "children",
        "anchor",
        "own_head_vars",
        "subtree_head_vars",
    )

    def __init__(self, atom: Atom):
        self.atom = atom
        self.parent: JoinTreeNode | None = None
        self.children: list[JoinTreeNode] = []
        self.anchor: tuple[str, ...] = ()
        self.own_head_vars: tuple[str, ...] = ()
        self.subtree_head_vars: tuple[str, ...] = ()

    @property
    def alias(self) -> str:
        """The atom alias (unique node identifier)."""
        return self.atom.alias

    @property
    def variables(self) -> frozenset[str]:
        """Variables of the node's atom."""
        return self.atom.var_set

    @property
    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return not self.children

    @property
    def is_root(self) -> bool:
        """True when the node has no parent."""
        return self.parent is None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"JoinTreeNode({self.alias}, anchor={self.anchor}, own={self.own_head_vars})"


class JoinTree:
    """A rooted join tree for a :class:`JoinProjectQuery`.

    Use :func:`build_join_tree` to construct one; the constructor assumes
    the parent/child links are already a valid tree over the query atoms
    and derives anchors, ownership and subtree orders, then *verifies* the
    running-intersection property (defence in depth against bugs in the
    GYO witness handling).
    """

    __slots__ = ("query", "root", "nodes", "_by_alias")

    def __init__(self, query: JoinProjectQuery, root: JoinTreeNode, nodes: Sequence[JoinTreeNode]):
        self.query = query
        self.root = root
        self.nodes: tuple[JoinTreeNode, ...] = tuple(nodes)
        self._by_alias = {n.alias: n for n in self.nodes}
        if len(self._by_alias) != len(self.nodes):
            raise QueryError("duplicate atom aliases in join tree")
        self._derive_anchors()
        self._derive_ownership()
        self._derive_subtree_orders()
        self._verify_running_intersection()

    # ------------------------------------------------------------------ #
    # derivation
    # ------------------------------------------------------------------ #
    def _derive_anchors(self) -> None:
        for node in self.nodes:
            if node.parent is None:
                node.anchor = ()
            else:
                shared = node.parent.variables & node.variables
                node.anchor = tuple(v for v in node.atom.variables if v in shared)

    def _derive_ownership(self) -> None:
        head = self.query.head_set
        for node in self.nodes:
            anchored = set(node.anchor)
            node.own_head_vars = tuple(
                v for v in node.atom.variables if v in head and v not in anchored
            )

    def _derive_subtree_orders(self) -> None:
        def build(node: JoinTreeNode) -> tuple[str, ...]:
            parts: list[str] = []
            if node.children:
                parts.extend(build(node.children[0]))
            parts.extend(node.own_head_vars)
            for child in node.children[1:]:
                parts.extend(build(child))
            node.subtree_head_vars = tuple(parts)
            return node.subtree_head_vars

        order = build(self.root)
        if set(order) != self.query.head_set or len(order) != len(self.query.head):
            raise QueryError(
                f"ownership derivation failed: traversal {order} vs head {self.query.head}"
            )

    def _verify_running_intersection(self) -> None:
        for var in self.query.variables:
            holders = [n for n in self.nodes if var in n.variables]
            # In a tree, a vertex set is connected iff (#nodes - #internal
            # parent links) == 1.
            links = sum(
                1 for n in holders if n.parent is not None and var in n.parent.variables
            )
            if len(holders) - links != 1:
                raise CyclicQueryError(
                    f"variable {var!r} does not induce a connected subtree; "
                    "the tree is not a valid join tree"
                )

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    def node(self, alias: str) -> JoinTreeNode:
        """Node by atom alias."""
        try:
            return self._by_alias[alias]
        except KeyError:
            raise QueryError(f"join tree has no node {alias!r}") from None

    def post_order(self) -> Iterator[JoinTreeNode]:
        """Children-before-parents iteration (Algorithm 1's order)."""

        def walk(node: JoinTreeNode) -> Iterator[JoinTreeNode]:
            for child in node.children:
                yield from walk(child)
            yield node

        return walk(self.root)

    def pre_order(self) -> Iterator[JoinTreeNode]:
        """Parents-before-children iteration (top-down reducer pass)."""

        def walk(node: JoinTreeNode) -> Iterator[JoinTreeNode]:
            yield node
            for child in node.children:
                yield from walk(child)

        return walk(self.root)

    @property
    def output_order(self) -> tuple[str, ...]:
        """The global projection-variable order (root's ``A^π``)."""
        return self.root.subtree_head_vars

    def depth(self) -> int:
        """Height of the tree (1 for a single node)."""

        def h(node: JoinTreeNode) -> int:
            return 1 + max((h(c) for c in node.children), default=0)

        return h(self.root)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        def render(node: JoinTreeNode, depth: int) -> list[str]:
            lines = ["  " * depth + repr(node.atom) + f"  anchor={node.anchor}"]
            for child in node.children:
                lines.extend(render(child, depth + 1))
            return lines

        return "\n".join(render(self.root, 0))

    # ------------------------------------------------------------------ #
    # transforms
    # ------------------------------------------------------------------ #
    def rerooted(self, root_alias: str) -> "JoinTree":
        """The same tree re-rooted at another atom (paper: any root works)."""
        return build_join_tree(self.query, root=root_alias, _edges=self._undirected_edges())

    def pruned(self) -> tuple["JoinTree", list[str]]:
        """Drop maximal subtrees containing no projection variable.

        Such subtrees are pure existential filters; after a full-reducer
        pass every remaining tuple is already guaranteed to extend into
        them, so the enumerator can ignore them (used by
        :mod:`repro.core.acyclic`; see Lemma 1's opening assumption).

        Returns the pruned tree and the list of dropped atom aliases.
        May return ``self`` unchanged when nothing is prunable.
        """
        keep: set[str] = set()

        def mark(node: JoinTreeNode) -> bool:
            has_output = bool(node.own_head_vars)
            for child in node.children:
                if mark(child):
                    has_output = True
            if has_output:
                keep.add(node.alias)
            return has_output

        mark(self.root)
        if not keep:
            # Head vars exist, so the root path to some owner is kept; this
            # cannot happen for a validated query.
            raise QueryError("pruning would remove the entire tree")
        if len(keep) == len(self.nodes):
            return self, []
        dropped = [n.alias for n in self.nodes if n.alias not in keep]
        kept_atoms = [n.atom for n in self.nodes if n.alias in keep]
        sub_query = JoinProjectQuery(kept_atoms, self.query.head, name=self.query.name)
        edges = [
            (a, b) for a, b in self._undirected_edges() if a in keep and b in keep
        ]
        tree = build_join_tree(sub_query, root=self.root.alias, _edges=edges)
        return tree, dropped

    def _undirected_edges(self) -> list[tuple[str, str]]:
        return [
            (node.alias, node.parent.alias) for node in self.nodes if node.parent is not None
        ]


def build_join_tree(
    query: JoinProjectQuery,
    root: str | None = None,
    *,
    _edges: Sequence[tuple[str, str]] | None = None,
) -> JoinTree:
    """Construct a rooted join tree for an acyclic query.

    Parameters
    ----------
    query:
        The join-project query.
    root:
        Optional atom alias to use as the root.  The paper proves any
        root yields the same guarantees; benchmarks sweep this.
    _edges:
        Internal: pre-computed undirected tree edges (used by
        :meth:`JoinTree.rerooted` / :meth:`JoinTree.pruned`).

    Raises
    ------
    CyclicQueryError
        If the query hypergraph fails the GYO test.
    """
    aliases = [a.alias for a in query.atoms]
    if _edges is None:
        result = gyo_reduction(Hypergraph(query.edge_map()))
        if not result.acyclic:
            raise CyclicQueryError(
                f"query {query.name} is cyclic; use repro.core.cyclic (GHD-based) instead"
            )
        edges = result.witness
    else:
        edges = list(_edges)

    if len(query.atoms) == 1:
        node = JoinTreeNode(query.atoms[0])
        return JoinTree(query, node, [node])

    adjacency: dict[str, list[str]] = {alias: [] for alias in aliases}
    for a, b in edges:
        adjacency[a].append(b)
        adjacency[b].append(a)

    root_alias = root if root is not None else aliases[0]
    if root_alias not in adjacency:
        raise QueryError(f"unknown root alias {root_alias!r}")

    atom_by_alias = {a.alias: a for a in query.atoms}
    nodes: dict[str, JoinTreeNode] = {alias: JoinTreeNode(atom_by_alias[alias]) for alias in aliases}

    # Orient edges away from the root with an iterative DFS (stable child
    # order: adjacency insertion order).
    visited = {root_alias}
    stack = [root_alias]
    order = [root_alias]
    while stack:
        current = stack.pop()
        for neighbour in adjacency[current]:
            if neighbour not in visited:
                visited.add(neighbour)
                nodes[neighbour].parent = nodes[current]
                nodes[current].children.append(nodes[neighbour])
                stack.append(neighbour)
                order.append(neighbour)
    if len(visited) != len(aliases):
        raise CyclicQueryError(
            f"join tree for {query.name} is disconnected: {set(aliases) - visited}"
        )
    return JoinTree(query, nodes[root_alias], [nodes[a] for a in order])
