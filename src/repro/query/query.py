"""The query model: join-project queries and unions thereof.

The paper studies queries of the form

    Q = π_A( R_1(A_1) ⋈ R_2(A_2) ⋈ ... ⋈ R_m(A_m) )

where each ``R_i(A_i)`` is an *atom*: a relation name together with an
ordered tuple of query variables bound positionally to the relation's
columns.  Self-joins are expressed by repeating the relation name under
different variables (e.g. the DBLP 2-hop query uses the author-paper edge
relation twice).  The natural join equates variables with the same name
across atoms.

``head`` is the ordered tuple of projection variables ``A`` (the paper's
``SELECT DISTINCT`` list); a query is *full* when the head covers every
variable.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..errors import QueryError

__all__ = ["Const", "Atom", "JoinProjectQuery", "UnionQuery"]


class Const:
    """A constant term inside an atom: an equality selection.

    ``Atom("R", ("x", Const(3)))`` stands for ``σ_{#2=3}(R)`` with the
    remaining column bound to ``x`` — the paper's "selections can be
    easily incorporated" device.  The parser produces these for numeric
    literals and quoted strings (``R(x, 3)``, ``R(x, 'actor')``).
    """

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __repr__(self) -> str:
        return repr(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Const", self.value))


class Atom:
    """One occurrence of a relation in a query body.

    Parameters
    ----------
    relation:
        Name of the relation in the database.
    terms:
        Per-column terms, bound positionally: variable names (strings)
        or :class:`Const` equality selections.  At least one variable is
        required and repeated variables inside one atom are rejected
        (the standard join-project fragment).
    alias:
        Optional distinct name for this occurrence; defaults to the
        relation name, and is made unique per query automatically.

    Examples
    --------
    >>> Atom("R", ("x", "y"))
    R(x, y)
    >>> Atom("Movie", ("m", Const(2024)))
    Movie(m, 2024)
    """

    __slots__ = ("relation", "terms", "variables", "alias")

    def __init__(self, relation: str, terms: Sequence[str | Const], alias: str | None = None):
        if not relation:
            raise QueryError("atom needs a relation name")
        ts = tuple(terms)
        if not ts:
            raise QueryError(f"atom over {relation!r} needs at least one term")
        vs: list[str] = []
        for t in ts:
            if isinstance(t, Const):
                continue
            if not isinstance(t, str) or not t:
                raise QueryError(
                    f"terms must be variable names or Const values, got {t!r}"
                )
            vs.append(t)
        if not vs:
            raise QueryError(f"atom over {relation!r} needs at least one variable")
        if len(set(vs)) != len(vs):
            raise QueryError(f"repeated variable inside atom {relation}{ts}")
        self.relation = relation
        self.terms = ts
        self.variables = tuple(vs)
        self.alias = alias or relation

    @property
    def arity(self) -> int:
        """Number of relation columns this atom binds (terms, not vars)."""
        return len(self.terms)

    @property
    def selections(self) -> tuple[tuple[int, Any], ...]:
        """``(column position, required value)`` pairs for Const terms."""
        return tuple(
            (i, t.value) for i, t in enumerate(self.terms) if isinstance(t, Const)
        )

    @property
    def variable_positions(self) -> tuple[int, ...]:
        """Column positions of the variable terms, in variable order."""
        return tuple(i for i, t in enumerate(self.terms) if not isinstance(t, Const))

    @property
    def var_set(self) -> frozenset[str]:
        """The variables of this atom as a frozenset."""
        return frozenset(self.variables)

    def position(self, var: str) -> int:
        """Index of ``var`` inside this atom's variable tuple."""
        try:
            return self.variables.index(var)
        except ValueError:
            raise QueryError(f"atom {self!r} has no variable {var!r}") from None

    def __repr__(self) -> str:
        return f"{self.alias}({', '.join(str(t) for t in self.terms)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        return (
            self.relation == other.relation
            and self.terms == other.terms
            and self.alias == other.alias
        )

    def __hash__(self) -> int:
        return hash((self.relation, self.terms, self.alias))


def _uniquify_aliases(atoms: Sequence[Atom]) -> list[Atom]:
    """Give every atom occurrence a distinct alias (``R``, ``R#2``, ...)."""
    seen: dict[str, int] = {}
    out: list[Atom] = []
    for atom in atoms:
        count = seen.get(atom.alias, 0) + 1
        seen[atom.alias] = count
        if count == 1:
            out.append(atom)
        else:
            out.append(Atom(atom.relation, atom.terms, alias=f"{atom.alias}#{count}"))
    return out


class JoinProjectQuery:
    """A join-project query ``π_head(atom_1 ⋈ ... ⋈ atom_m)``.

    Parameters
    ----------
    atoms:
        The body; at least one atom.
    head:
        Ordered projection variables (the paper's ``A``).  Must be a
        subset of the body variables.  Defaults to *all* variables in
        first-appearance order (a full query).
    name:
        Optional label used in reports and benchmarks.

    Examples
    --------
    The paper's Example 1 (co-author pairs) over an edge relation
    ``R(author, paper)``:

    >>> q = JoinProjectQuery(
    ...     [Atom("R", ("a1", "p")), Atom("R", ("a2", "p"))], head=("a1", "a2")
    ... )
    >>> q.is_full
    False
    >>> sorted(q.variables)
    ['a1', 'a2', 'p']
    """

    __slots__ = ("atoms", "head", "name")

    def __init__(
        self,
        atoms: Iterable[Atom],
        head: Sequence[str] | None = None,
        *,
        name: str | None = None,
    ):
        atom_list = _uniquify_aliases(list(atoms))
        if not atom_list:
            raise QueryError("a query needs at least one atom")
        self.atoms: tuple[Atom, ...] = tuple(atom_list)
        all_vars = self.variables
        if head is None:
            head_t = self._vars_in_appearance_order()
        else:
            head_t = tuple(head)
            if len(set(head_t)) != len(head_t):
                raise QueryError(f"repeated variable in head {head_t}")
            missing = [v for v in head_t if v not in all_vars]
            if missing:
                raise QueryError(f"head variables {missing} do not appear in any atom")
        if not head_t:
            raise QueryError("empty head: boolean queries are not in the enumeration fragment")
        self.head: tuple[str, ...] = head_t
        self.name = name or self._default_name()

    # ------------------------------------------------------------------ #
    # derived structure
    # ------------------------------------------------------------------ #
    @property
    def variables(self) -> frozenset[str]:
        """All variables appearing in the body."""
        return frozenset(v for atom in self.atoms for v in atom.variables)

    def _vars_in_appearance_order(self) -> tuple[str, ...]:
        seen: list[str] = []
        for atom in self.atoms:
            for v in atom.variables:
                if v not in seen:
                    seen.append(v)
        return tuple(seen)

    @property
    def head_set(self) -> frozenset[str]:
        """The projection variables as a frozenset."""
        return frozenset(self.head)

    @property
    def is_full(self) -> bool:
        """True when the head covers every body variable (no projection)."""
        return self.head_set == self.variables

    @property
    def existential_variables(self) -> frozenset[str]:
        """Variables projected away (the paper's ``A \\ A``)."""
        return self.variables - self.head_set

    def atoms_with(self, var: str) -> list[Atom]:
        """All atoms whose variable tuple mentions ``var``."""
        return [a for a in self.atoms if var in a.var_set]

    def edge_map(self) -> dict[str, frozenset[str]]:
        """Hypergraph view: ``alias -> variable set`` (one edge per atom)."""
        return {a.alias: a.var_set for a in self.atoms}

    def full_version(self) -> "JoinProjectQuery":
        """The same body with *all* variables in the head (Algorithm 6)."""
        return JoinProjectQuery(
            self.atoms, self._vars_in_appearance_order(), name=f"{self.name}_full"
        )

    def with_head(self, head: Sequence[str]) -> "JoinProjectQuery":
        """The same body under a different projection list."""
        return JoinProjectQuery(self.atoms, head, name=self.name)

    def _default_name(self) -> str:
        return "Q(" + ",".join(a.alias for a in self.atoms) + ")"

    # ------------------------------------------------------------------ #
    # protocol
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:
        body = " ⋈ ".join(repr(a) for a in self.atoms)
        return f"π_{{{', '.join(self.head)}}}({body})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JoinProjectQuery):
            return NotImplemented
        return self.atoms == other.atoms and self.head == other.head

    def __hash__(self) -> int:
        return hash((self.atoms, self.head))


class UnionQuery:
    """A union of join-project queries over a shared head (paper §5, Thm 4).

    All branches must project the *same* head variables in the same order
    so that their outputs are union-compatible.

    Examples
    --------
    >>> q1 = JoinProjectQuery([Atom("R", ("x", "y"))], head=("x",))
    >>> q2 = JoinProjectQuery([Atom("S", ("x", "z"))], head=("x",))
    >>> u = UnionQuery([q1, q2])
    >>> len(u.branches)
    2
    """

    __slots__ = ("branches", "head", "name")

    def __init__(self, branches: Iterable[JoinProjectQuery], *, name: str | None = None):
        branch_list = list(branches)
        if not branch_list:
            raise QueryError("a union query needs at least one branch")
        head = branch_list[0].head
        for q in branch_list[1:]:
            if q.head != head:
                raise QueryError(
                    f"union branches disagree on the head: {q.head} vs {head}"
                )
        self.branches: tuple[JoinProjectQuery, ...] = tuple(branch_list)
        self.head: tuple[str, ...] = head
        self.name = name or " ∪ ".join(q.name for q in branch_list)

    def __repr__(self) -> str:
        return " ∪ ".join(repr(q) for q in self.branches)

    def __len__(self) -> int:
        return len(self.branches)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnionQuery):
            return NotImplemented
        return self.branches == other.branches

    def __hash__(self) -> int:
        return hash(self.branches)
