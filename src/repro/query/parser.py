"""A tiny Datalog-style parser for join-project queries.

The library's programmatic API (:class:`~repro.query.query.Atom`,
:class:`~repro.query.query.JoinProjectQuery`) is the primary interface,
but a compact text form is convenient in examples, tests and notebooks:

    Q(a1, a2) :- R(a1, p), R(a2, p)

* the rule head lists the projection variables (``SELECT DISTINCT``),
* the body lists atoms as ``RelationName(v1, v2, ...)``,
* numeric literals and quoted strings are equality selections
  (``Movie(m, 2024)``, ``Person(p, 'actor')``),
* several rules with the same head, separated by ``;``, form a union
  query (UCQ).

Examples
--------
>>> q = parse_query("Q(a1, a2) :- R(a1, p), R(a2, p)")
>>> q.head
('a1', 'a2')
>>> u = parse_query("Q(x) :- R(x, y) ; Q(x) :- S(x, z)")
>>> len(u.branches)
2
>>> parse_query("Q(m) :- Movie(m, 2024, 'drama')").atoms[0].selections
((1, 2024), (2, 'drama'))
"""

from __future__ import annotations

import re

from ..errors import QueryError
from .query import Atom, Const, JoinProjectQuery, UnionQuery

__all__ = ["parse_query", "parse_rule"]

_ATOM_RE = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(\s*([^()]*?)\s*\)\s*")
_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?\d*\.\d+$")
_QUOTED_RE = re.compile(r"""^(['"])(.*)\1$""")


def _parse_term(text: str) -> str | Const:
    """Variable name, or Const for numeric literals / quoted strings."""
    if _INT_RE.match(text):
        return Const(int(text))
    if _FLOAT_RE.match(text):
        return Const(float(text))
    quoted = _QUOTED_RE.match(text)
    if quoted:
        return Const(quoted.group(2))
    return text


def _parse_atom_list(text: str, *, what: str) -> list[tuple[str, tuple]]:
    """Parse ``R(a, b), S(b, 3)`` into ``[(name, terms), ...]``."""
    out: list[tuple[str, tuple]] = []
    pos = 0
    while pos < len(text):
        match = _ATOM_RE.match(text, pos)
        if not match:
            raise QueryError(f"cannot parse {what} at: {text[pos:]!r}")
        name, inner = match.group(1), match.group(2)
        terms = tuple(_parse_term(v.strip()) for v in inner.split(",") if v.strip())
        if not terms:
            raise QueryError(f"atom {name!r} has no terms")
        out.append((name, terms))
        pos = match.end()
        if pos < len(text):
            if text[pos] != ",":
                raise QueryError(f"expected ',' between atoms, got {text[pos:]!r}")
            pos += 1
    if not out:
        raise QueryError(f"empty {what}")
    return out


def parse_rule(text: str) -> JoinProjectQuery:
    """Parse a single rule ``Head(vars) :- Atom(vars), ...``."""
    if ":-" not in text:
        raise QueryError(f"rule {text!r} is missing ':-'")
    head_text, body_text = text.split(":-", 1)
    heads = _parse_atom_list(head_text.strip(), what="rule head")
    if len(heads) != 1:
        raise QueryError(f"rule head must be a single atom: {head_text!r}")
    head_name, head_terms = heads[0]
    head_vars = []
    for t in head_terms:
        if isinstance(t, Const):
            raise QueryError(f"rule head cannot contain the constant {t!r}")
        head_vars.append(t)
    atoms = [
        Atom(name, ts) for name, ts in _parse_atom_list(body_text.strip(), what="rule body")
    ]
    return JoinProjectQuery(atoms, head_vars, name=head_name)


def parse_query(text: str) -> JoinProjectQuery | UnionQuery:
    """Parse one rule, or several ``;``-separated rules into a union.

    Returns a :class:`JoinProjectQuery` for a single rule and a
    :class:`UnionQuery` when more than one rule is given.
    """
    rules = [part.strip() for part in text.split(";") if part.strip()]
    if not rules:
        raise QueryError("empty query text")
    queries = [parse_rule(rule) for rule in rules]
    if len(queries) == 1:
        return queries[0]
    return UnionQuery(queries)
