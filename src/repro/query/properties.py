"""Structural query properties: free-connexity and friends (Appendix E).

A join query is **free-connex** when it is acyclic *and* the hypergraph
extended with one extra edge containing exactly the projection variables
is still acyclic.  For free-connex queries the paper's Algorithm 2
recovers ``O(log |D|)`` delay after linear preprocessing (Appendix E):
after the reducer pass, all non-projection machinery collapses into
pure filters and the enumeration behaves like a full query.

These predicates drive documentation-grade diagnostics
(:func:`classify_query`) and the guarantees surfaced by
:func:`delay_guarantee`.
"""

from __future__ import annotations

from ..errors import QueryError
from .hypergraph import Hypergraph
from .query import JoinProjectQuery, UnionQuery

__all__ = ["is_acyclic", "is_free_connex", "classify_query", "delay_guarantee"]

_HEAD_EDGE = "__head__"


def is_acyclic(query: JoinProjectQuery) -> bool:
    """α-acyclicity of the query body (GYO test)."""
    return Hypergraph(query.edge_map()).is_acyclic()


def is_free_connex(query: JoinProjectQuery) -> bool:
    """Free-connexity: body acyclic and body+head-edge acyclic.

    Full acyclic queries are trivially free-connex (the head edge covers
    every variable, which is always compatible).

    Examples
    --------
    >>> from .parser import parse_query
    >>> is_free_connex(parse_query("Q(x, y) :- R(x, y), S(y, z)"))
    True
    >>> is_free_connex(parse_query("Q(x, z) :- R(x, y), S(y, z)"))
    False
    """
    edges = dict(query.edge_map())
    if not Hypergraph(edges).is_acyclic():
        return False
    if _HEAD_EDGE in edges:  # pragma: no cover - aliases never collide
        raise QueryError(f"reserved alias {_HEAD_EDGE!r} used by an atom")
    edges[_HEAD_EDGE] = query.head_set
    return Hypergraph(edges).is_acyclic()


def classify_query(query: JoinProjectQuery | UnionQuery) -> str:
    """A coarse label: ``"union"``, ``"full acyclic"``, ``"free-connex"``,
    ``"acyclic"`` or ``"cyclic"`` — the classes the paper's guarantees
    distinguish."""
    if isinstance(query, UnionQuery):
        return "union"
    if not is_acyclic(query):
        return "cyclic"
    if query.is_full:
        return "full acyclic"
    if is_free_connex(query):
        return "free-connex"
    return "acyclic"


def delay_guarantee(query: JoinProjectQuery | UnionQuery) -> str:
    """The paper's worst-case delay bound for the class of ``query``.

    Examples
    --------
    >>> from .parser import parse_query
    >>> delay_guarantee(parse_query("Q(x, z) :- R(x, y), S(y, z)"))
    'O(|D| log |D|) delay after O(|D|) preprocessing (Theorem 1)'
    """
    label = classify_query(query)
    if label == "union":
        branches = [classify_query(b) for b in query.branches]  # type: ignore[union-attr]
        if all(b in ("full acyclic", "free-connex", "acyclic") for b in branches):
            return (
                "O(|D| log |D|) delay after O(|D|) preprocessing per branch "
                "(Theorem 4)"
            )
        return "O(|D|^fhw log |D|) delay, fhw of the worst branch (Theorem 4)"
    if label in ("full acyclic", "free-connex"):
        return "O(log |D|) delay after O(|D|) preprocessing (Appendix E)"
    if label == "acyclic":
        return "O(|D| log |D|) delay after O(|D|) preprocessing (Theorem 1)"
    return "O(|D|^fhw log |D|) delay and preprocessing (Theorem 3)"
