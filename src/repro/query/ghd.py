"""Generalized hypertree decompositions (paper §2 and §5, Figure 2).

For cyclic queries the paper's Theorem 3 materialises the subquery of
every bag of a GHD and then runs the acyclic algorithm over the bag tree,
paying ``O(|D|^fhw)`` where ``fhw`` is the *fractional hypertree width*:
the maximum over bags of the fractional edge cover number ``ρ*``.

This module provides:

* :func:`fractional_edge_cover` — ``ρ*`` of a variable set via linear
  programming (scipy) with a greedy integral fallback;
* :func:`find_ghd` — a decomposition search over elimination orderings of
  the primal graph (exhaustive for small queries, min-fill/min-degree +
  seeded random restarts otherwise), returning the minimum-width GHD
  found;
* :class:`GHD` — the decomposition object consumed by
  :mod:`repro.core.cyclic`.

The implementation reproduces the widths in the paper's Figure 2:
``fhw = 2`` for cycles, ``m`` for the ``n×m`` biclique, and ``2`` for the
butterfly query.
"""

from __future__ import annotations

import itertools
import random
from typing import Mapping, Sequence

from ..errors import DecompositionError
from .query import JoinProjectQuery
from .hypergraph import Hypergraph

__all__ = ["Bag", "GHD", "fractional_edge_cover", "find_ghd", "tree_decomposition_from_order"]

_EXHAUSTIVE_LIMIT = 6  # up to 6 variables: try every elimination order
_RANDOM_RESTARTS = 400


def fractional_edge_cover(
    variables: frozenset[str] | set[str],
    edges: Mapping[str, frozenset[str]],
) -> tuple[float, dict[str, float]]:
    """Fractional edge cover number ``ρ*(variables)``.

    Minimise ``Σ_F u_F`` subject to ``Σ_{F ∋ X} u_F ≥ 1`` for every
    ``X ∈ variables`` and ``u ≥ 0``.  Edges that do not intersect the
    variable set are still allowed but useless, so they are dropped.

    Returns the optimum and an assignment.  Uses :mod:`scipy` when
    available; otherwise falls back to a greedy *integral* cover, which
    upper-bounds ``ρ*`` (documented, and sufficient for choosing between
    candidate decompositions).
    """
    vars_needed = set(variables)
    if not vars_needed:
        return 0.0, {}
    useful = {name: vs & vars_needed for name, vs in edges.items() if vs & vars_needed}
    uncovered = vars_needed - set().union(*useful.values()) if useful else set(vars_needed)
    if uncovered:
        raise DecompositionError(f"variables {sorted(uncovered)} are not covered by any edge")

    try:
        return _lp_edge_cover(vars_needed, useful)
    except ImportError:  # pragma: no cover - scipy is installed in CI
        return _greedy_edge_cover(vars_needed, useful)


def _lp_edge_cover(
    vars_needed: set[str], useful: dict[str, frozenset[str]]
) -> tuple[float, dict[str, float]]:
    from scipy.optimize import linprog

    names = sorted(useful)
    var_list = sorted(vars_needed)
    a_ub = [[-1.0 if v in useful[name] else 0.0 for name in names] for v in var_list]
    b_ub = [-1.0] * len(var_list)
    res = linprog(
        c=[1.0] * len(names), A_ub=a_ub, b_ub=b_ub, bounds=[(0.0, None)] * len(names),
        method="highs",
    )
    if not res.success:  # pragma: no cover - defensive
        raise DecompositionError(f"edge-cover LP failed: {res.message}")
    weights = {name: float(w) for name, w in zip(names, res.x) if w > 1e-9}
    return float(res.fun), weights


def _greedy_edge_cover(
    vars_needed: set[str], useful: dict[str, frozenset[str]]
) -> tuple[float, dict[str, float]]:
    remaining = set(vars_needed)
    weights: dict[str, float] = {}
    while remaining:
        name = max(sorted(useful), key=lambda n: len(useful[n] & remaining))
        gain = useful[name] & remaining
        if not gain:  # pragma: no cover - covered check earlier
            raise DecompositionError("greedy cover stuck")
        weights[name] = 1.0
        remaining -= gain
    return float(len(weights)), weights


class Bag:
    """One bag of a GHD: a variable set plus the atoms it fully contains."""

    __slots__ = ("bag_id", "variables", "contained_atom_aliases", "cover_value", "cover")

    def __init__(self, bag_id: int, variables: frozenset[str]):
        self.bag_id = bag_id
        self.variables = variables
        self.contained_atom_aliases: list[str] = []
        self.cover_value: float = 0.0
        self.cover: dict[str, float] = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Bag#{self.bag_id}{sorted(self.variables)} ρ*={self.cover_value:.2f}"


class GHD:
    """A generalized hypertree decomposition of a query.

    Attributes
    ----------
    query:
        The decomposed query.
    bags:
        The bags, ids equal to list positions.
    tree_edges:
        Undirected edges between bag ids forming a tree.
    width:
        ``max_t ρ*(B_t)`` for this decomposition (its fractional
        hypertree width).
    """

    __slots__ = ("query", "bags", "tree_edges", "width")

    def __init__(
        self,
        query: JoinProjectQuery,
        bags: Sequence[Bag],
        tree_edges: Sequence[tuple[int, int]],
    ):
        self.query = query
        self.bags: tuple[Bag, ...] = tuple(bags)
        self.tree_edges: tuple[tuple[int, int], ...] = tuple(tree_edges)
        self._assign_atoms()
        self._validate()
        edges = query.edge_map()
        for bag in self.bags:
            bag.cover_value, bag.cover = fractional_edge_cover(bag.variables, edges)
        self.width = max((bag.cover_value for bag in self.bags), default=0.0)

    def _assign_atoms(self) -> None:
        for bag in self.bags:
            bag.contained_atom_aliases = [
                atom.alias for atom in self.query.atoms if atom.var_set <= bag.variables
            ]

    def _validate(self) -> None:
        n = len(self.bags)
        if n == 0:
            raise DecompositionError("a GHD needs at least one bag")
        if len(self.tree_edges) != n - 1:
            raise DecompositionError(
                f"{n} bags need {n - 1} tree edges, got {len(self.tree_edges)}"
            )
        # Connectivity of the bag tree.
        adj: dict[int, set[int]] = {i: set() for i in range(n)}
        for a, b in self.tree_edges:
            adj[a].add(b)
            adj[b].add(a)
        seen = {0}
        stack = [0]
        while stack:
            x = stack.pop()
            for y in adj[x]:
                if y not in seen:
                    seen.add(y)
                    stack.append(y)
        if len(seen) != n:
            raise DecompositionError("bag tree is disconnected")
        # Every atom contained in some bag (GHD property (i)).
        for atom in self.query.atoms:
            if not any(atom.var_set <= bag.variables for bag in self.bags):
                raise DecompositionError(f"atom {atom!r} is not contained in any bag")
        # Running intersection over variables (GHD property (ii)).
        for var in self.query.variables:
            holders = [b.bag_id for b in self.bags if var in b.variables]
            holder_set = set(holders)
            links = sum(1 for a, b in self.tree_edges if a in holder_set and b in holder_set)
            if len(holders) - links > 1:
                raise DecompositionError(f"variable {var!r} violates running intersection")

    def __len__(self) -> int:
        return len(self.bags)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GHD(width={self.width:.2f}, bags={[sorted(b.variables) for b in self.bags]})"


def tree_decomposition_from_order(
    adjacency: Mapping[str, set[str]], order: Sequence[str]
) -> tuple[list[frozenset[str]], list[tuple[int, int]]]:
    """Tree decomposition of a graph from an elimination ordering.

    Standard construction: eliminating ``v`` creates the bag
    ``{v} ∪ N(v)`` over the current (filled) graph, then turns ``N(v)``
    into a clique.  The bag of ``v`` is attached to the bag of the first
    vertex of ``N(v)`` eliminated after ``v``.  Bags subsumed by a
    neighbouring bag are contracted away.
    """
    adj: dict[str, set[str]] = {v: set(ns) for v, ns in adjacency.items()}
    position = {v: i for i, v in enumerate(order)}
    raw_bags: list[frozenset[str]] = []
    bag_of_vertex: dict[str, int] = {}
    parents: list[int | None] = []

    for v in order:
        neighbours = set(adj[v])
        raw_bags.append(frozenset({v} | neighbours))
        bag_of_vertex[v] = len(raw_bags) - 1
        parents.append(None)
        # Fill edges among the neighbours, then remove v.
        for a in neighbours:
            adj[a].discard(v)
            adj[a] |= neighbours - {a}
        del adj[v]

    for i, v in enumerate(order):
        later = [u for u in raw_bags[i] if u != v and position[u] > position[v]]
        if later:
            first = min(later, key=lambda u: position[u])
            parents[i] = bag_of_vertex[first]

    edges = [(i, p) for i, p in enumerate(parents) if p is not None]
    # Components with no parent (disconnected graphs): chain them together.
    roots = [i for i, p in enumerate(parents) if p is None]
    for a, b in zip(roots, roots[1:]):
        edges.append((a, b))
    return _contract_subsumed(raw_bags, edges)


def _contract_subsumed(
    bags: list[frozenset[str]], edges: list[tuple[int, int]]
) -> tuple[list[frozenset[str]], list[tuple[int, int]]]:
    """Merge bags contained in a neighbour; renumber compactly."""
    adj: dict[int, set[int]] = {i: set() for i in range(len(bags))}
    for a, b in edges:
        adj[a].add(b)
        adj[b].add(a)
    alive = set(range(len(bags)))
    changed = True
    while changed:
        changed = False
        for i in sorted(alive):
            for j in sorted(adj[i]):
                if j in alive and bags[i] <= bags[j]:
                    # Reattach i's other neighbours to j, drop i.
                    for k in adj[i]:
                        if k != j:
                            adj[k].discard(i)
                            adj[k].add(j)
                            adj[j].add(k)
                    adj[j].discard(i)
                    alive.discard(i)
                    changed = True
                    break
            if changed:
                break
    renumber = {old: new for new, old in enumerate(sorted(alive))}
    new_bags = [bags[old] for old in sorted(alive)]
    new_edges = sorted(
        {
            (min(renumber[a], renumber[b]), max(renumber[a], renumber[b]))
            for a in alive
            for b in adj[a]
            if b in alive and a < b
        }
    )
    return new_bags, new_edges


def _candidate_orders(vertices: list[str], adjacency: Mapping[str, set[str]], seed: int):
    """Yield elimination orders: exhaustive for tiny graphs, heuristics
    plus seeded random restarts otherwise."""
    if len(vertices) <= _EXHAUSTIVE_LIMIT:
        yield from itertools.permutations(vertices)
        return
    yield _min_fill_order(adjacency)
    yield _min_degree_order(adjacency)
    rng = random.Random(seed)
    for _ in range(_RANDOM_RESTARTS):
        perm = vertices[:]
        rng.shuffle(perm)
        yield tuple(perm)


def _min_degree_order(adjacency: Mapping[str, set[str]]) -> tuple[str, ...]:
    adj = {v: set(ns) for v, ns in adjacency.items()}
    order: list[str] = []
    while adj:
        v = min(sorted(adj), key=lambda x: len(adj[x]))
        neighbours = adj[v]
        for a in neighbours:
            adj[a].discard(v)
            adj[a] |= neighbours - {a}
        del adj[v]
        order.append(v)
    return tuple(order)


def _min_fill_order(adjacency: Mapping[str, set[str]]) -> tuple[str, ...]:
    adj = {v: set(ns) for v, ns in adjacency.items()}

    def fill_cost(v: str) -> int:
        ns = list(adj[v])
        return sum(
            1 for i, a in enumerate(ns) for b in ns[i + 1 :] if b not in adj[a]
        )

    order: list[str] = []
    while adj:
        v = min(sorted(adj), key=fill_cost)
        neighbours = adj[v]
        for a in neighbours:
            adj[a].discard(v)
            adj[a] |= neighbours - {a}
        del adj[v]
        order.append(v)
    return tuple(order)


_GHD_CACHE: dict[tuple, GHD] = {}


def find_ghd(query: JoinProjectQuery, *, seed: int = 0) -> GHD:
    """Search for a minimum-width GHD of ``query``.

    Exhaustive over elimination orderings for queries with at most
    ``6`` variables (covers every query in the paper's evaluation),
    heuristic + seeded random restarts beyond.  Results are cached per
    query structure.

    Note: this reproduces the *fhw*-based Theorem 3.  The PANDA-based
    submodular-width refinement of Theorem 4 constructs data-dependent
    decompositions and is out of scope; see DESIGN.md.
    """
    cache_key = (query.atoms, query.head)
    cached = _GHD_CACHE.get(cache_key)
    if cached is not None:
        return cached

    hg = Hypergraph(query.edge_map())
    adjacency = hg.primal_graph()
    vertices = sorted(adjacency)
    if not vertices:
        raise DecompositionError("query has no variables")

    edges = query.edge_map()
    # Elimination orders revisit the same bags constantly; cache ρ* per bag.
    cover_cache: dict[frozenset[str], float] = {}

    def rho_star(bag: frozenset[str]) -> float:
        value = cover_cache.get(bag)
        if value is None:
            value = fractional_edge_cover(bag, edges)[0]
            cover_cache[bag] = value
        return value

    best: tuple[float, list[frozenset[str]], list[tuple[int, int]]] | None = None
    for order in _candidate_orders(vertices, adjacency, seed):
        bags, tree_edges = tree_decomposition_from_order(adjacency, order)
        width = max(rho_star(bag) for bag in bags)
        if best is None or width < best[0] - 1e-9:
            best = (width, bags, tree_edges)
            if width <= 1.0 + 1e-9:
                break  # cannot do better than acyclic
    assert best is not None
    _, bags, tree_edges = best
    ghd = GHD(query, [Bag(i, vs) for i, vs in enumerate(bags)], tree_edges)
    _GHD_CACHE[cache_key] = ghd
    return ghd
