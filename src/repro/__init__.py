"""repro — Ranked Enumeration of Join Queries with Projections.

A faithful, self-contained Python implementation of

    Shaleen Deep, Xiao Hu, Paraschos Koutris.
    "Ranked Enumeration of Join Queries with Projections."
    PVLDB 15(5), VLDB 2022 (arXiv:2201.05566).

The library answers ``SELECT DISTINCT .. ORDER BY .. LIMIT k`` over
join-project queries with *delay guarantees*: after linear-time
preprocessing, each successive answer is produced in near-linear
worst-case time — no full-join materialisation, no blocking sort.

Quickstart
----------
>>> from repro import Database, parse_query, enumerate_ranked
>>> db = Database()
>>> _ = db.add_relation("R", ("author", "paper"), [(1, 10), (2, 10), (3, 20)])
>>> q = parse_query("Q(a1, a2) :- R(a1, p), R(a2, p)")   # co-author pairs
>>> [a.values for a in enumerate_ranked(q, db, k=3)]
[(1, 1), (1, 2), (2, 1)]

For repeated queries over one database, the session layer amortises
per-query work (parsing, classification, join-tree construction, the
full-reducer pass) behind LRU caches with automatic invalidation:

>>> from repro import QueryEngine
>>> engine = QueryEngine(db)
>>> [a.values for a in engine.execute("Q(a1, a2) :- R(a1, p), R(a2, p)", k=3)]
[(1, 1), (1, 2), (2, 1)]
>>> _ = engine.execute("Q(a1, a2) :- R(a1, p), R(a2, p)", k=3)
>>> engine.stats.plan_hits
1

Main entry points
-----------------
* :class:`repro.QueryEngine` — the cached session layer: parsed-query
  and prepared-plan caches, generation-counter invalidation,
  :class:`repro.EngineStats` observability;
* :func:`repro.enumerate_ranked` / :func:`repro.create_enumerator` — the
  planner that picks the right algorithm for any CQ/UCQ;
* :class:`repro.AcyclicRankedEnumerator` — Theorem 1's ``LinDelay``;
* :class:`repro.LexBacktrackEnumerator` — Algorithm 3 (lexicographic);
* :class:`repro.StarTradeoffEnumerator` — Theorem 2's tradeoff;
* :class:`repro.CyclicRankedEnumerator` — Theorem 3 (GHD-based);
* :class:`repro.UnionRankedEnumerator` — Theorem 4 (UCQs);
* :mod:`repro.parallel` — sharded execution: hash partitioning
  (:func:`repro.partition_query`), worker backends and the
  order-preserving merge behind
  :meth:`repro.QueryEngine.execute_parallel`;
* :func:`repro.save_snapshot` / :func:`repro.open_database` — the
  persistent column store: save an instance once, reopen it
  memory-mapped for instant warm starts and zero-copy process shards;
* :mod:`repro.workloads` — the paper's datasets and queries, synthesised;
* :mod:`repro.algorithms` — Yannakakis + the engine baselines.
"""

from .core import (
    AcyclicRankedEnumerator,
    AvgRanking,
    CompositeRanking,
    CyclicRankedEnumerator,
    Desc,
    EnumerationStats,
    LexBacktrackEnumerator,
    LexRanking,
    MaxRanking,
    MinRanking,
    MinWeightProjectionEnumerator,
    ProductRanking,
    RankedAnswer,
    RankingFunction,
    StarTradeoffEnumerator,
    SumRanking,
    TableWeight,
    UnionRankedEnumerator,
    create_enumerator,
    enumerate_ranked,
    is_star_query,
)
from .core.planner import QueryPlan, plan_query
from .data import Database, Relation
from .data.partition import (
    QueryPartition,
    choose_partition_attribute,
    partition_query,
)
from .engine import EngineStats, PreparedPlan, QueryEngine
from .parallel import execute_sharded, merge_ranked_streams, stream_sharded
from .storage import (
    DurableDatabase,
    JournalError,
    SnapshotError,
    open_database,
    open_durable,
    save_snapshot,
)
from .errors import (
    CyclicQueryError,
    DecompositionError,
    NotAStarQueryError,
    QueryError,
    RankingError,
    ReproError,
    SchemaError,
    WorkloadError,
)
from .query import (
    Atom,
    Const,
    JoinProjectQuery,
    UnionQuery,
    build_join_tree,
    classify_query,
    delay_guarantee,
    find_ghd,
    is_free_connex,
    parse_query,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # data
    "Database",
    "Relation",
    # persistence + durability
    "DurableDatabase",
    "JournalError",
    "SnapshotError",
    "open_database",
    "open_durable",
    "save_snapshot",
    # session layer
    "QueryEngine",
    "PreparedPlan",
    "EngineStats",
    "QueryPlan",
    "plan_query",
    # parallel subsystem
    "QueryPartition",
    "choose_partition_attribute",
    "partition_query",
    "execute_sharded",
    "stream_sharded",
    "merge_ranked_streams",
    # query model
    "Atom",
    "Const",
    "JoinProjectQuery",
    "UnionQuery",
    "parse_query",
    "build_join_tree",
    "find_ghd",
    "classify_query",
    "delay_guarantee",
    "is_free_connex",
    # enumerators
    "AcyclicRankedEnumerator",
    "LexBacktrackEnumerator",
    "StarTradeoffEnumerator",
    "CyclicRankedEnumerator",
    "UnionRankedEnumerator",
    "MinWeightProjectionEnumerator",
    "create_enumerator",
    "enumerate_ranked",
    "is_star_query",
    "RankedAnswer",
    "EnumerationStats",
    # rankings
    "RankingFunction",
    "SumRanking",
    "AvgRanking",
    "MinRanking",
    "MaxRanking",
    "ProductRanking",
    "LexRanking",
    "CompositeRanking",
    "TableWeight",
    "Desc",
    # errors
    "ReproError",
    "SchemaError",
    "QueryError",
    "CyclicQueryError",
    "NotAStarQueryError",
    "DecompositionError",
    "RankingError",
    "WorkloadError",
]
