"""Seeded mutation fuzzer for incremental delta maintenance.

One long-lived :class:`~repro.engine.QueryEngine` is driven through a
randomized interleaving of appends, deletes and ranked queries.  Every
query is shadow-checked: the live engine's top-k (values *and* scores,
in order) must be bit-identical to a fresh engine built cold from the
database's current contents.  The live engine serves some of those
queries from delta-refreshed warm state and some from rebuild
fallbacks; the shadow check cannot tell and must never need to.

Everything is derived deterministically from an integer seed, so a
failure is a one-line repro.  On divergence the failing schedule is
greedily shrunk — ops dropped one at a time while the failure persists,
then unused initial rows — and reported as a
:class:`FuzzFailure` whose ``str()`` is the minimal schedule plus the
seed that produced it.

Entry points: :func:`fuzz` (used by ``repro fuzz-deltas`` and the
``tests/fuzz_deltas.py`` smoke wrapper), :func:`generate_case` /
:func:`run_case` / :func:`shrink_case` for one case at a time.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable

from ..core.ranking import LexRanking, RankingFunction, SumRanking
from ..data import Database
from ..engine import QueryEngine
from ..query import parse_query

__all__ = ["FuzzFailure", "FuzzCase", "fuzz", "generate_case", "run_case", "shrink_case"]

SHAPES = {
    "acyclic": "Q(a, d) :- R(a, b), S(b, c), T(c, d)",
    "star": "Q(x0, x1, x2) :- R(x0, b), R(x1, b), R(x2, b)",
    "cyclic": "Q(x, y) :- R(x, y), S(y, z), T(z, x)",
}
RANKINGS = {"sum": SumRanking, "lex": LexRanking}

DOMAIN = 4
MAX_INITIAL_ROWS = 8
MIN_OPS, MAX_OPS = 6, 14

#: Schedule ops, all value-level so a case prints as a repro:
#: ``("append", relation, rows)``, ``("delete", relation, row)``,
#: ``("query", ranking, k)``.
Op = tuple


@dataclass
class FuzzCase:
    """One deterministic (database, write-schedule) instance."""

    seed: int
    shape: str
    encode: bool
    relations: dict[str, list[tuple]]
    schedule: list[Op]

    @property
    def query_text(self) -> str:
        return SHAPES[self.shape]


@dataclass
class FuzzFailure:
    """A shadow-check divergence, with enough to reproduce it."""

    case: FuzzCase
    op_index: int
    got: list
    expected: list
    shrunk: "FuzzCase | None" = field(default=None)

    def __str__(self) -> str:
        case = self.shrunk or self.case
        lines = [
            f"delta fuzzer divergence (seed {self.case.seed})",
            f"  query:  {case.query_text}",
            f"  encode: {case.encode}",
            "  initial rows:",
        ]
        for name, rows in sorted(case.relations.items()):
            lines.append(f"    {name}: {rows}")
        lines.append("  minimal schedule:" if self.shrunk else "  schedule:")
        for op in case.schedule:
            lines.append(f"    {op}")
        lines.append(f"  live engine returned: {self.got}")
        lines.append(f"  cold rebuild returns: {self.expected}")
        lines.append(
            f"  repro: python -m repro fuzz-deltas --seed {self.case.seed} --rounds 1"
        )
        return "\n".join(lines)


def _random_row(arity: int, rng: random.Random) -> tuple:
    return tuple(rng.randint(0, DOMAIN) for _ in range(arity))


def generate_case(seed: int) -> FuzzCase:
    """The deterministic case for one seed."""
    rng = random.Random(f"deltafuzz/{seed}")
    shape = rng.choice(sorted(SHAPES))
    query = parse_query(SHAPES[shape])
    arities = {
        atom.relation: len(atom.variables) for atom in query.atoms
    }
    relations = {
        name: [
            _random_row(arity, rng)
            for _ in range(rng.randint(0, MAX_INITIAL_ROWS))
        ]
        for name, arity in sorted(arities.items())
    }
    # Generate the schedule against simulated contents so deletes always
    # target rows that exist at that point of the run.
    contents = {name: list(rows) for name, rows in relations.items()}
    schedule: list[Op] = []
    for _ in range(rng.randint(MIN_OPS, MAX_OPS)):
        kind = rng.randrange(5)
        name = rng.choice(sorted(contents))
        if kind <= 1:  # append burst
            rows = [
                _random_row(arities[name], rng)
                for _ in range(rng.randint(1, 3))
            ]
            contents[name].extend(rows)
            schedule.append(("append", name, tuple(rows)))
        elif kind == 2 and contents[name]:
            row = rng.choice(contents[name])
            contents[name] = [r for r in contents[name] if r != row]
            schedule.append(("delete", name, row))
        else:
            schedule.append(
                ("query", rng.choice(sorted(RANKINGS)), rng.choice((5, 10)))
            )
    schedule.append(("query", rng.choice(sorted(RANKINGS)), 10))
    return FuzzCase(seed, shape, rng.random() < 0.5, relations, schedule)


def _answers(engine: QueryEngine, query, ranking: RankingFunction, k: int):
    return [(a.values, a.score) for a in engine.execute(query, ranking, k=k)]


def run_case(case: FuzzCase) -> FuzzFailure | None:
    """Replay one case; the first shadow-check divergence, or ``None``."""
    db = Database()
    for name, rows in sorted(case.relations.items()):
        arity = len(rows[0]) if rows else len(
            next(
                a.variables
                for a in parse_query(case.query_text).atoms
                if a.relation == name
            )
        )
        db.add_relation(name, tuple(f"c{i}" for i in range(arity)), rows)
    query = parse_query(case.query_text)
    engine = QueryEngine(db, encode=case.encode)
    # One ranking instance per name: plans cache by ranking identity, so
    # fresh instances per query would sidestep the warm path under test.
    rankings = {name: cls() for name, cls in RANKINGS.items()}
    for index, op in enumerate(case.schedule):
        if op[0] == "append":
            db[op[1]].add_rows(list(op[2]))
        elif op[0] == "delete":
            db[op[1]].remove(op[2])
        else:
            _, rank_name, k = op
            got = _answers(engine, query, rankings[rank_name], k)
            shadow = Database()
            for rel in db:
                shadow.add_relation(rel.name, rel.attrs, list(rel))
            expected = _answers(
                QueryEngine(shadow, encode=case.encode),
                query,
                RANKINGS[rank_name](),
                k,
            )
            if got != expected:
                return FuzzFailure(case, index, got, expected)
    return None


def _still_fails(case: FuzzCase) -> bool:
    return run_case(case) is not None


def shrink_case(case: FuzzCase) -> FuzzCase:
    """Greedily minimise a failing case (ops first, then initial rows).

    Drops one schedule op / one initial row at a time, keeping every
    removal that preserves the failure, until a fixpoint.  The result
    still fails (it is only ever replaced by failing variants).
    """
    current = case
    changed = True
    while changed:
        changed = False
        for i in range(len(current.schedule) - 1, -1, -1):
            trial = FuzzCase(
                current.seed,
                current.shape,
                current.encode,
                {n: list(r) for n, r in current.relations.items()},
                current.schedule[:i] + current.schedule[i + 1 :],
            )
            if trial.schedule and _still_fails(trial):
                current = trial
                changed = True
        for name in sorted(current.relations):
            for j in range(len(current.relations[name]) - 1, -1, -1):
                relations = {n: list(r) for n, r in current.relations.items()}
                del relations[name][j]
                trial = FuzzCase(
                    current.seed,
                    current.shape,
                    current.encode,
                    relations,
                    list(current.schedule),
                )
                if _still_fails(trial):
                    current = trial
                    changed = True
    return current


def fuzz(
    *,
    seed: int = 0,
    rounds: int = 200,
    time_budget: float | None = None,
    on_progress: Callable[[int, int], None] | None = None,
) -> FuzzFailure | None:
    """Run ``rounds`` seeded cases starting at ``seed``.

    Returns the first divergence — already shrunk — or ``None``.  A
    ``time_budget`` (seconds) stops early without failing; cases are
    independent, so a clean partial sweep is still a clean sweep of the
    seeds it covered.
    """
    started = time.monotonic()
    for i in range(rounds):
        if time_budget is not None and time.monotonic() - started > time_budget:
            break
        if on_progress is not None:
            on_progress(i, rounds)
        failure = run_case(generate_case(seed + i))
        if failure is not None:
            failure.shrunk = shrink_case(failure.case)
            return failure
    return None
