"""Randomized testing harnesses for the engine's mutable-data paths.

:mod:`~repro.testing.faultinject` is imported eagerly: it is pure
stdlib, and the storage and service layers import its fault points at
module load.  The fuzzers are exported lazily (PEP 562) because they
import the engine, which imports storage — loading them here eagerly
would close an import cycle through ``storage.journal``'s use of the
fault points.
"""

from . import faultinject
from .faultinject import FaultError, FaultPlan, clock, fault_point, fault_value, inject

__all__ = [
    "CrashFailure",
    "FaultError",
    "FaultPlan",
    "FuzzFailure",
    "clock",
    "fault_point",
    "fault_value",
    "faultinject",
    "fuzz",
    "fuzz_crashes",
    "generate_case",
    "inject",
    "run_case",
    "shrink_case",
]

_DELTAFUZZ_EXPORTS = {"FuzzFailure", "fuzz", "generate_case", "run_case", "shrink_case"}
_CRASHFUZZ_EXPORTS = {"CrashFailure", "fuzz_crashes"}


def __getattr__(name):
    if name in _DELTAFUZZ_EXPORTS:
        from . import deltafuzz

        return getattr(deltafuzz, name)
    if name in _CRASHFUZZ_EXPORTS:
        from . import crashfuzz

        return getattr(crashfuzz, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
