"""Randomized testing harnesses for the engine's mutable-data paths."""

from .deltafuzz import FuzzFailure, fuzz, generate_case, run_case, shrink_case

__all__ = ["FuzzFailure", "fuzz", "generate_case", "run_case", "shrink_case"]
