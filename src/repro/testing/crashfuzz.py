"""Seeded crash-recovery fuzzer for the write-ahead delta journal.

Each round builds a snapshot-backed durable database
(:func:`repro.open_durable`), drives it through a randomized schedule
of append bursts, deletes and checkpoints, then simulates kill -9 at
seeded byte offsets into the journal — including offsets that land in
the middle of a record, the torn-write case.  For every kill point the
directory is copied, the journal copy truncated to the offset, and the
copy reopened through :func:`repro.open_database`; the recovered
database must be **bit-identical** (row-for-row, and in its ranked
top-k answers) to a cold rebuild that applies exactly the acknowledged
prefix — the ops whose journal record was fully on disk at the kill
point.  Nothing acknowledged may be lost; nothing torn may leak in.

Everything derives deterministically from an integer seed, so a failure
is a one-line repro.  On divergence the failing schedule is greedily
shrunk (ops, then initial rows) while any kill point still fails, and
reported as a :class:`CrashFailure`.

Entry points: :func:`fuzz_crashes` (used by ``repro fuzz-crashes`` and
the CI ``recovery-smoke`` job), :func:`generate_case` /
:func:`run_case` / :func:`shrink_case` for one case at a time.

Requires NumPy (snapshot *saving* does); :func:`fuzz_crashes` raises
:class:`~repro.errors.ReproError` without it so callers can skip.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable

from ..data import Database
from ..errors import ReproError
from ..query import parse_query
from ..storage import kernels
from ..storage.journal import journal_path, open_durable
from ..storage.persist import open_database, save_snapshot

__all__ = [
    "CrashCase",
    "CrashFailure",
    "fuzz_crashes",
    "generate_case",
    "run_case",
    "shrink_case",
]

QUERY = "Q(a, c) :- R(a, b), S(b, c)"

DOMAIN = 5
MAX_INITIAL_ROWS = 8
MIN_OPS, MAX_OPS = 4, 10
KILLS_PER_CASE = 3

#: Schedule ops, all value-level so a case prints as a repro:
#: ``("append", relation, rows)``, ``("delete", relation, row)``,
#: ``("checkpoint",)``.
Op = tuple


@dataclass
class CrashCase:
    """One deterministic (snapshot, write-schedule, kill-points) instance."""

    seed: int
    relations: dict[str, list[tuple]]
    schedule: list[Op]
    kills: int = KILLS_PER_CASE


@dataclass
class CrashFailure:
    """A recovery divergence, with enough to reproduce it."""

    case: CrashCase
    offset: int
    journal_bytes: int
    detail: str
    shrunk: "CrashCase | None" = field(default=None)

    def __str__(self) -> str:
        case = self.shrunk or self.case
        lines = [
            f"crash fuzzer divergence (seed {self.case.seed})",
            f"  kill offset: byte {self.offset} of a "
            f"{self.journal_bytes}-byte journal",
            "  initial rows:",
        ]
        for name, rows in sorted(case.relations.items()):
            lines.append(f"    {name}: {rows}")
        lines.append("  minimal schedule:" if self.shrunk else "  schedule:")
        for op in case.schedule:
            lines.append(f"    {op}")
        lines.append(f"  {self.detail}")
        lines.append(
            f"  repro: python -m repro fuzz-crashes --seed {self.case.seed} "
            "--rounds 1"
        )
        return "\n".join(lines)


def _random_row(rng: random.Random) -> tuple:
    return (rng.randint(0, DOMAIN), rng.randint(0, DOMAIN))


def generate_case(seed: int) -> CrashCase:
    """The deterministic case for one seed."""
    rng = random.Random(f"crashfuzz/{seed}")
    relations = {
        name: [
            _random_row(rng) for _ in range(rng.randint(1, MAX_INITIAL_ROWS))
        ]
        for name in ("R", "S")
    }
    # Generate against simulated contents so deletes target rows that
    # exist at that point of the run.
    contents = {name: list(rows) for name, rows in relations.items()}
    schedule: list[Op] = []
    for _ in range(rng.randint(MIN_OPS, MAX_OPS)):
        kind = rng.randrange(6)
        name = rng.choice(sorted(contents))
        if kind <= 2:  # append burst
            rows = [_random_row(rng) for _ in range(rng.randint(1, 3))]
            contents[name].extend(rows)
            schedule.append(("append", name, tuple(rows)))
        elif kind <= 4 and contents[name]:
            row = rng.choice(contents[name])
            contents[name] = [r for r in contents[name] if r != row]
            schedule.append(("delete", name, row))
        else:
            schedule.append(("checkpoint",))
    if not any(op[0] != "checkpoint" for op in schedule):
        schedule.append(("append", "R", (_random_row(rng),)))
    return CrashCase(seed, relations, schedule)


def _build_database(relations: dict[str, list[tuple]]) -> Database:
    db = Database()
    attrs = {"R": ("a", "b"), "S": ("b", "c")}
    for name in ("R", "S"):
        db.add_relation(name, attrs[name], list(relations.get(name, ())))
    return db


def _apply(db: Database, op: Op) -> None:
    if op[0] == "append":
        db[op[1]].add_rows(list(op[2]))
    elif op[0] == "delete":
        db[op[1]].remove(op[2])


def _answers(db: Database, k: int = 8) -> list:
    from ..core import enumerate_ranked

    query = parse_query(QUERY)
    return [(a.values, a.score) for a in enumerate_ranked(query, db, k=k)]


def _state(db: Database) -> dict[str, list[tuple]]:
    return {rel.name: list(rel) for rel in db}


def run_case(case: CrashCase) -> CrashFailure | None:
    """Replay one case; the first recovery divergence, or ``None``.

    Builds the journaled directory once, then for each seeded kill
    offset copies it, truncates the journal copy (the crash image a
    kill -9 mid-append leaves behind) and shadow-checks the reopened
    copy against a cold rebuild of the acknowledged prefix.
    """
    root = tempfile.mkdtemp(prefix="crashfuzz-")
    try:
        work = os.path.join(root, "work")
        save_snapshot(_build_database(case.relations), work)
        durable = open_durable(work)
        # ``base``: schedule prefix already folded into the snapshot by
        # the latest checkpoint; ``post``: (ack-offset, op) pairs whose
        # records live in the current journal.
        base: list[Op] = []
        post: list[tuple[int, Op]] = []
        applied: list[Op] = []
        with durable:
            for op in case.schedule:
                if op[0] == "append":
                    durable.append(op[1], list(op[2]))
                    post.append((durable.journal_bytes, op))
                elif op[0] == "delete":
                    durable.delete(op[1], op[2])
                    post.append((durable.journal_bytes, op))
                else:
                    durable.checkpoint()
                    base = base + [op for _, op in post]
                    post = []
            applied = base + [op for _, op in post]
            final = durable.journal_bytes
        rng = random.Random(f"crashfuzz/{case.seed}/kills")
        offsets = sorted(
            {final} | {rng.randint(0, final) for _ in range(case.kills)}
        )
        for index, offset in enumerate(offsets):
            crash = os.path.join(root, f"crash-{index}")
            shutil.copytree(work, crash)
            with open(journal_path(crash), "r+b") as handle:
                handle.truncate(offset)
            acked = base + [op for end, op in post if end <= offset]
            cold = _build_database(case.relations)
            for op in acked:
                _apply(cold, op)
            recovered = open_database(crash)
            got, expected = _state(recovered), _state(cold)
            if got != expected:
                return CrashFailure(
                    case,
                    offset,
                    final,
                    f"recovered rows {got} != acknowledged prefix {expected}",
                )
            got_k, expected_k = _answers(recovered), _answers(cold)
            if got_k != expected_k:
                return CrashFailure(
                    case,
                    offset,
                    final,
                    f"recovered top-k {got_k} != cold rebuild {expected_k}",
                )
        del applied
        return None
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _still_fails(case: CrashCase) -> bool:
    return run_case(case) is not None


def shrink_case(case: CrashCase) -> CrashCase:
    """Greedily minimise a failing case (ops first, then initial rows)."""
    current = case
    changed = True
    while changed:
        changed = False
        for i in range(len(current.schedule) - 1, -1, -1):
            trial = CrashCase(
                current.seed,
                {n: list(r) for n, r in current.relations.items()},
                current.schedule[:i] + current.schedule[i + 1 :],
                current.kills,
            )
            if trial.schedule and _still_fails(trial):
                current = trial
                changed = True
        for name in sorted(current.relations):
            for j in range(len(current.relations[name]) - 1, -1, -1):
                relations = {n: list(r) for n, r in current.relations.items()}
                del relations[name][j]
                trial = CrashCase(
                    current.seed, relations, list(current.schedule), current.kills
                )
                if _still_fails(trial):
                    current = trial
                    changed = True
    return current


def fuzz_crashes(
    *,
    seed: int = 0,
    rounds: int = 200,
    time_budget: float | None = None,
    on_progress: Callable[[int, int], None] | None = None,
) -> CrashFailure | None:
    """Run ``rounds`` seeded kill-point schedules starting at ``seed``.

    Returns the first divergence — already shrunk — or ``None``.  A
    ``time_budget`` (seconds) stops early without failing; cases are
    independent, so a clean partial sweep is still a clean sweep of the
    seeds it covered.
    """
    if not kernels.HAS_NUMPY:
        raise ReproError(
            "crash fuzzing builds snapshots, which requires NumPy; "
            "this interpreter has none"
        )
    started = time.monotonic()
    for i in range(rounds):
        if time_budget is not None and time.monotonic() - started > time_budget:
            break
        if on_progress is not None:
            on_progress(i, rounds)
        failure = run_case(generate_case(seed + i))
        if failure is not None:
            failure.shrunk = shrink_case(failure.case)
            return failure
    return None
