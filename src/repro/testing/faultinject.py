"""Deterministic seeded fault injection for the durability layer.

Crash-safety code is exactly the code that never runs in a happy-path
test suite: the fsync that fails, the write torn at byte N, the
connection dropped mid-page, the shard worker that dies, the clock that
jumps past a TTL.  This module plants named **fault points** through the
journal (:mod:`repro.storage.journal`), the snapshot writer
(:mod:`repro.storage.persist`), the server and client
(:mod:`repro.service`) and the parallel workers, and lets a test arm
them with a :class:`FaultPlan`:

>>> from repro.testing.faultinject import FaultPlan, inject, fault_point
>>> plan = FaultPlan().fail("journal.fsync", at=2)
>>> with inject(plan):
...     fault_point("journal.fsync")      # first hit: passes
...     try:
...         fault_point("journal.fsync")  # second hit: injected failure
...     except OSError as exc:
...         print("injected:", exc)
injected: [faultinject] journal.fsync (hit 2)
>>> plan.hits("journal.fsync")
2

Everything is deterministic: actions trigger on exact hit counts, and
:meth:`FaultPlan.rng` derives seeded generators for schedule building,
so a failing fault scenario is a one-line repro.  With no plan injected
every fault point is a no-op — production code pays one dict lookup.

The module is deliberately **pure stdlib with no repro imports**, so
the storage layer can import it without creating a cycle through the
testing package.

Fault-point catalogue (see docs/recovery.md for the recovery semantics
at each point):

===================  ====================================================
point                where it fires
===================  ====================================================
``journal.write``    before a journal record's bytes are written; a
                     ``cut`` action writes only the first N bytes and
                     raises (a torn write / kill mid-write)
``journal.fsync``    before the journal fsyncs a record (``fail`` =
                     fsync failure: the write is never acknowledged)
``journal.checkpoint``  between the checkpoint's snapshot commit and
                     the atomic journal swap (the crash window the
                     recovery protocol must close)
``persist.fsync``    before each snapshot data file / manifest fsync
``server.send``      before the server writes a response line; a
                     ``cut`` action sends a prefix and drops the
                     connection (mid-page disconnect)
``server.work``      inside query/fetch executor work (``delay`` =
                     a slow request, for deadline tests)
``client.connect``   before the client opens its TCP connection
``parallel.worker``  inside each shard worker's enumeration
                     (``fail`` = shard-worker death)
``clock``            no explicit point: :func:`clock` adds the plan's
                     ``jump_clock`` offset to ``time.monotonic()``
===================  ====================================================
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager

__all__ = [
    "FaultError",
    "FaultPlan",
    "active_plan",
    "clock",
    "fault_point",
    "fault_value",
    "inject",
]


class FaultError(OSError):
    """The failure an armed fault point injects.

    An ``OSError`` subclass on purpose: fsync failures, torn writes and
    dropped connections surface as ``OSError`` in real life, and the
    code under test must take its real error paths, not a special-cased
    testing one.
    """


class _Action:
    """One armed behaviour of one fault point (trigger on hit ``at``)."""

    __slots__ = ("kind", "at", "value")

    def __init__(self, kind: str, at: int, value: float | int | None = None):
        if at < 1:
            raise ValueError(f"fault actions trigger on hit counts >= 1, got {at}")
        self.kind = kind  # "fail" | "cut" | "delay"
        self.at = at
        self.value = value


class FaultPlan:
    """A deterministic schedule of injected faults, armed via :func:`inject`.

    Actions trigger on exact per-point hit counts (the first hit is
    ``at=1``); hit counters and the list of triggered actions are
    queryable afterwards, so a test can assert both that the fault fired
    and how the code recovered.
    """

    def __init__(self, *, seed: int = 0):
        self.seed = seed
        self._actions: dict[str, list[_Action]] = {}
        self._hits: dict[str, int] = {}
        self._clock_offset = 0.0
        self.triggered: list[tuple[str, int, str]] = []
        self._lock = threading.Lock()

    # -- arming ---------------------------------------------------------- #
    def fail(self, point: str, *, at: int = 1) -> "FaultPlan":
        """Raise :class:`FaultError` on the ``at``-th hit of ``point``."""
        self._actions.setdefault(point, []).append(_Action("fail", at))
        return self

    def cut(self, point: str, *, at: int = 1, byte: int = 0) -> "FaultPlan":
        """Tear the ``at``-th operation at ``byte`` (torn write / dropped
        connection): :func:`fault_value` returns ``byte`` there."""
        self._actions.setdefault(point, []).append(_Action("cut", at, byte))
        return self

    def delay(self, point: str, *, at: int = 1, seconds: float = 0.1) -> "FaultPlan":
        """Sleep ``seconds`` on the ``at``-th hit (slow request / stall)."""
        self._actions.setdefault(point, []).append(_Action("delay", at, seconds))
        return self

    def jump_clock(self, seconds: float) -> "FaultPlan":
        """Shift :func:`clock` by ``seconds`` (TTL expiry without sleeping)."""
        self._clock_offset += seconds
        return self

    # -- deterministic helpers ------------------------------------------- #
    def rng(self, label: str = "") -> random.Random:
        """A seeded generator derived from the plan seed and ``label``."""
        return random.Random(f"faultinject/{self.seed}/{label}")

    def hits(self, point: str) -> int:
        """How many times ``point`` has fired under this plan."""
        with self._lock:
            return self._hits.get(point, 0)

    # -- the hot path ----------------------------------------------------- #
    def _hit(self, point: str) -> _Action | None:
        with self._lock:
            count = self._hits.get(point, 0) + 1
            self._hits[point] = count
            for action in self._actions.get(point, ()):
                if action.at == count:
                    self.triggered.append((point, count, action.kind))
                    return action
        return None


#: The process-global armed plan (fault points are hit from executor and
#: server threads, so thread-locals would miss them by design).
_ACTIVE: FaultPlan | None = None
_ACTIVE_LOCK = threading.Lock()


@contextmanager
def inject(plan: FaultPlan):
    """Arm ``plan`` for the duration of the ``with`` block (not nestable)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        if _ACTIVE is not None:
            raise RuntimeError("a fault plan is already injected (no nesting)")
        _ACTIVE = plan
    try:
        yield plan
    finally:
        with _ACTIVE_LOCK:
            _ACTIVE = None


def active_plan() -> FaultPlan | None:
    """The currently injected plan, if any."""
    return _ACTIVE


def fault_point(point: str) -> None:
    """Production-side hook: no-op unless an armed action matches.

    A ``fail`` action raises :class:`FaultError`; a ``delay`` action
    sleeps.  (``cut`` actions are served by :func:`fault_value`.)
    """
    plan = _ACTIVE
    if plan is None:
        return
    action = plan._hit(point)
    if action is None or action.kind == "cut":
        return
    if action.kind == "delay":
        time.sleep(action.value or 0.0)
        return
    raise FaultError(f"[faultinject] {point} (hit {action.at})")


def fault_value(point: str) -> int | None:
    """Production-side hook for ``cut`` actions: the byte offset, or ``None``.

    The caller decides what a cut means (write a prefix then raise;
    send a prefix then close the socket); non-``cut`` actions at the
    same point behave as in :func:`fault_point`.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    action = plan._hit(point)
    if action is None:
        return None
    if action.kind == "cut":
        return int(action.value or 0)
    if action.kind == "delay":
        time.sleep(action.value or 0.0)
        return None
    raise FaultError(f"[faultinject] {point} (hit {action.at})")


def clock() -> float:
    """``time.monotonic()`` plus the armed plan's clock jump.

    Wire this as the ``clock`` of a
    :class:`~repro.service.cursors.CursorTable` (or anything else that
    takes an injectable clock) to test TTL behaviour under clock jumps
    without sleeping.
    """
    base = time.monotonic()
    plan = _ACTIVE
    return base + plan._clock_offset if plan is not None else base
