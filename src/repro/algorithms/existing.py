"""Algorithm 6: reusing a *full-query* ranked enumerator (Appendix B).

The strawman the paper analyses: take a state-of-the-art any-k
enumerator for full queries [26, 65], give non-projection attributes
weight zero, enumerate the full results in rank order, project each one
and drop consecutive duplicates.  Appendix B proves the delay degrades
to ``Ω(|D|^(ℓ-1))`` on an ℓ-relation instance whose smallest answer is
produced ``|D|^(ℓ-1)`` times — our Appendix-B benchmark regenerates
exactly that blow-up against LinDelay.

As the full-query enumerator we use this library's own
:class:`~repro.core.acyclic.AcyclicRankedEnumerator` on the full version
of the query, which (Appendix E) matches the ``O(log |D|)``-delay
guarantees of the prior work it stands in for.

Correctness note (documented deviation): with all-zero weights on the
existential attributes, *different* projected tuples can have equal SUM
scores and interleave in the full-result order, so the paper's
consecutive-duplicate check alone could emit a projected tuple twice.
We therefore rank the full query by the composite ``rank then_by
LEX(head)``, which keeps equal projections adjacent without changing
the projected order.  See DESIGN.md §6.
"""

from __future__ import annotations

import time
from typing import Iterator

from ..core.acyclic import AcyclicRankedEnumerator
from ..core.answers import EnumerationStats, RankedAnswer
from ..core.base import RankedEnumeratorBase
from ..core.ranking import CompositeRanking, LexRanking, RankingFunction, SumRanking
from ..data.database import Database
from ..query.query import JoinProjectQuery

__all__ = ["FullQueryRankedBaseline"]


class FullQueryRankedBaseline(RankedEnumeratorBase):
    """Algorithm 6: project + dedup over a full-query ranked enumerator.

    Attributes
    ----------
    full_results_consumed:
        How many *full* results the inner enumerator produced — the
        duplication factor the paper's Appendix B lower-bounds (each
        projected answer may be backed by up to ``|D|^(ℓ-1)`` full
        results).
    """

    def __init__(
        self,
        query: JoinProjectQuery,
        db: Database,
        ranking: RankingFunction | None = None,
        *,
        dedup_inserts: bool = True,
    ):
        self.query = query
        self.db = db
        self.ranking = ranking or SumRanking()
        self.full_query = query.full_version()
        self.stats = EnumerationStats()
        self.full_results_consumed = 0

        # The head ranking, applied to the full query: existential
        # attributes do not contribute (the "weight zero" trick is
        # implicit — the ranking only ever reads head variables), and the
        # LEX(head) tie-break keeps equal projections adjacent.
        self._head_positions = {v: i for i, v in enumerate(query.head)}
        head_only = _HeadOnlyRanking(self.ranking, frozenset(query.head))
        composite = CompositeRanking(head_only, _HeadOnlyRanking(
            LexRanking(order=tuple(query.head)), frozenset(query.head)
        ))
        self._inner = AcyclicRankedEnumerator(
            self.full_query,
            db,
            composite,
            dedup_inserts=dedup_inserts,
        )
        self._bound = self.ranking.bind(self._head_positions)
        self._projection = tuple(
            self.full_query.head.index(v) for v in query.head
        )

    def preprocess(self) -> "FullQueryRankedBaseline":
        """Preprocess the inner full-query enumerator."""
        started = time.perf_counter()
        self._inner.preprocess()
        self.stats.preprocess_seconds = time.perf_counter() - started
        return self

    def __iter__(self) -> Iterator[RankedAnswer]:
        self.preprocess()
        final = self._bound.final_score
        last: tuple | None = None
        proj = self._projection
        for full_answer in self._inner:
            self.full_results_consumed += 1
            values = tuple(full_answer.values[i] for i in proj)
            if values != last:  # Algorithm 6 line 6
                last = values
                self.stats.answers += 1
                key = full_answer.key[0]  # composite: (head rank, lex tiebreak)
                yield RankedAnswer(values, final(key), key=key)

    def fresh(self) -> "FullQueryRankedBaseline":
        """A new baseline with identical configuration."""
        return FullQueryRankedBaseline(self.query, self.db, self.ranking)


class _HeadOnlyRanking(RankingFunction):
    """Restrict a ranking to the head variables of the original query.

    When bound over the *full* query's variables, existential variables
    are filtered out of every key computation — exactly the paper's
    "assign weight zero to all values of attributes A \\ A" device,
    generalised so it also works for LEX.
    """

    kind = "head-only"

    def __init__(self, inner: RankingFunction, head: frozenset[str]):
        self.inner = inner
        self.head = head

    def bind(self, positions):
        head_positions = {v: i for v, i in positions.items() if v in self.head}
        return _HeadOnlyBound(self.inner.bind(head_positions), self.head)

    def describe(self) -> str:
        return f"{self.inner.describe()} on head only"


class _HeadOnlyBound:
    """Bound wrapper that drops non-head pairs before keying."""

    def __init__(self, inner, head: frozenset[str]):
        self.inner = inner
        self.head = head
        self.zero = inner.zero
        # Restriction to head variables preserves SUM/LEX strictness: a
        # child advance either strictly raises the head key (sum adds a
        # positive delta, lex merge grows) or ties it, in which case the
        # full-tuple tie-break strictly grows instead.  Weak inner
        # rankings (MIN/MAX) stay weak.
        self.strictly_monotone = inner.strictly_monotone

    def key(self, pairs):
        return self.inner.key([(a, v) for a, v in pairs if a in self.head])

    def combine(self, keys):
        return self.inner.combine(keys)

    def final_score(self, key):
        return self.inner.final_score(key)

    def key_of_output(self, variables, values):
        return self.key(list(zip(variables, values)))
