"""The Yannakakis algorithm: full reducer and join evaluation.

Both the preprocessing phase of Algorithm 1 and the star-query
preprocessing (Algorithm 4) start with the classic Yannakakis machinery
[70]:

* :func:`full_reduce` — two semi-join sweeps over a join tree that delete
  every *dangling* tuple (one that participates in no join result); for
  acyclic queries the reduced instance is globally consistent.
* :func:`project_join` — the multiway bottom-up join that materialises,
  per node, the subquery result over ``A^π_i ∪ anchor(R_i)`` (with early
  projection + dedup), and thus the distinct projected output at the
  root.  This is the paper's "BFS" building block and the engine of the
  heavy-output materialisation ``O_H``.
* :func:`evaluate` — convenience: distinct ``Q(D)`` as a set of head
  tuples.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..data.database import Database
from ..data.index import group_by
from ..errors import QueryError
from ..query.jointree import JoinTree, JoinTreeNode, build_join_tree
from ..query.query import JoinProjectQuery
from .semijoin import semijoin, shared_positions

__all__ = ["atom_instances", "full_reduce", "project_join", "evaluate"]

Row = tuple
Instances = dict[str, list[Row]]


def atom_instances(
    query: JoinProjectQuery, db: Database, *, distinct: bool = True
) -> Instances:
    """Bind every atom to its relation's rows (validating arities).

    Equality selections (:class:`~repro.query.query.Const` terms) are
    applied here, and rows are projected onto the atom's variable
    columns, so every downstream consumer sees rows aligned with
    ``atom.variables``.  Set semantics: duplicate rows are dropped by
    default, matching the paper's model (a database is a *set* of
    tuples).

    Physically this binds each atom through its relation's scan access
    path (:meth:`repro.data.relation.Relation.instance_rows`), whose
    select/project views are cached per atom signature — repeated cold
    executions of the same query re-project nothing.  The returned
    lists are shared cache state: rebind or filter them into fresh
    lists, never mutate them in place (``full_reduce`` and every
    enumerator already copy before filtering).
    """
    out: Instances = {}
    for atom in query.atoms:
        rel = db[atom.relation]
        if rel.arity != atom.arity:
            raise QueryError(
                f"atom {atom!r} has {atom.arity} terms but relation "
                f"{rel.name!r} has arity {rel.arity}"
            )
        out[atom.alias] = rel.instance_rows(
            atom.variable_positions, atom.selections, distinct=distinct
        )
    return out


def full_reduce(tree: JoinTree, instances: Mapping[str, list[Row]]) -> Instances:
    """Remove all dangling tuples (two semi-join sweeps, O(|D|) passes).

    Returns fresh per-alias row lists; the input mapping is not mutated.
    """
    state: Instances = {alias: list(rows) for alias, rows in instances.items()}

    # Bottom-up: parent ⋉ child for every edge, children first.
    for node in tree.post_order():
        for child in node.children:
            p_pos, c_pos = shared_positions(node.atom.variables, child.atom.variables)
            state[node.alias] = semijoin(
                state[node.alias], p_pos, state[child.alias], c_pos
            )

    # Top-down: child ⋉ parent, parents first.
    for node in tree.pre_order():
        for child in node.children:
            p_pos, c_pos = shared_positions(node.atom.variables, child.atom.variables)
            state[child.alias] = semijoin(
                state[child.alias], c_pos, state[node.alias], p_pos
            )
    return state


def _join_on(
    left_rows: Sequence[Row],
    left_vars: Sequence[str],
    right_rows: Sequence[Row],
    right_vars: Sequence[str],
) -> tuple[list[Row], tuple[str, ...]]:
    """Hash join; output schema = left vars ++ (right vars \\ left vars)."""
    l_pos, r_pos = shared_positions(left_vars, right_vars)
    extra_positions = [i for i, v in enumerate(right_vars) if v not in left_vars]
    out_vars = tuple(left_vars) + tuple(right_vars[i] for i in extra_positions)
    index = group_by(right_rows, r_pos)
    out: list[Row] = []
    for lrow in left_rows:
        key = tuple(lrow[i] for i in l_pos)
        for rrow in index.get(key, ()):
            out.append(lrow + tuple(rrow[i] for i in extra_positions))
    return out, out_vars


def project_join(
    tree: JoinTree, instances: Mapping[str, list[Row]]
) -> tuple[list[Row], tuple[str, ...]]:
    """Distinct projected output via the join tree with early projection.

    At every node the intermediate result is projected onto
    ``A^π_i ∪ anchor(R_i)`` and de-duplicated before flowing upward —
    the multiway plan the paper contrasts with engines' binary plans.

    Returns ``(rows, head_order)`` where ``head_order`` is the tree's
    in-order projection layout (root's ``A^π``); callers reorder to the
    query head as needed.
    """

    def walk(node: JoinTreeNode) -> tuple[list[Row], tuple[str, ...]]:
        rows: list[Row] = list(instances[node.alias])
        variables: tuple[str, ...] = node.atom.variables
        for child in node.children:
            child_rows, child_vars = walk(child)
            rows, variables = _join_on(rows, variables, child_rows, child_vars)
        keep = tuple(node.subtree_head_vars) + tuple(
            v for v in node.anchor if v not in node.subtree_head_vars
        )
        pos = tuple(variables.index(v) for v in keep)
        seen: set[Row] = set()
        projected: list[Row] = []
        for r in rows:
            p = tuple(r[i] for i in pos)
            if p not in seen:
                seen.add(p)
                projected.append(p)
        return projected, keep

    rows, variables = walk(tree.root)
    head_order = tree.output_order
    pos = tuple(variables.index(v) for v in head_order)
    return [tuple(r[i] for i in pos) for r in rows], head_order


def evaluate(
    query: JoinProjectQuery,
    db: Database,
    *,
    tree: JoinTree | None = None,
    reduce_first: bool = True,
) -> set[Row]:
    """Distinct ``Q(D)`` as a set of tuples aligned with ``query.head``."""
    if tree is None:
        tree = build_join_tree(query)
    instances = atom_instances(query, db)
    if reduce_first:
        instances = full_reduce(tree, instances)
    rows, order = project_join(tree, instances)
    reorder = tuple(order.index(v) for v in query.head)
    return {tuple(r[i] for i in reorder) for r in rows}
