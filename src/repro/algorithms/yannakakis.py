"""The Yannakakis algorithm: full reducer and join evaluation.

Both the preprocessing phase of Algorithm 1 and the star-query
preprocessing (Algorithm 4) start with the classic Yannakakis machinery
[70]:

* :func:`full_reduce` — two semi-join sweeps over a join tree that delete
  every *dangling* tuple (one that participates in no join result); for
  acyclic queries the reduced instance is globally consistent.
* :func:`project_join` — the multiway bottom-up join that materialises,
  per node, the subquery result over ``A^π_i ∪ anchor(R_i)`` (with early
  projection + dedup), and thus the distinct projected output at the
  root.  This is the paper's "BFS" building block and the engine of the
  heavy-output materialisation ``O_H``.
* :func:`evaluate` — convenience: distinct ``Q(D)`` as a set of head
  tuples.
"""

from __future__ import annotations

from collections import deque
from typing import Mapping, Sequence

from ..data.database import Database
from ..data.index import group_by
from ..errors import QueryError
from ..query.jointree import JoinTree, JoinTreeNode, build_join_tree
from ..query.query import JoinProjectQuery
from ..storage import kernels
from .semijoin import semijoin, shared_positions

__all__ = [
    "AtomInstances",
    "ReducedInstances",
    "atom_instances",
    "full_reduce",
    "refresh_reduction",
    "project_join",
    "evaluate",
]

Row = tuple
Instances = dict[str, list[Row]]


class AtomInstances(dict):
    """Per-alias row lists that can also serve their code matrices.

    Behaves exactly like the plain ``dict[str, list[Row]]`` every
    consumer expects; additionally each alias bound through
    :func:`atom_instances` remembers its relation + view signature, so
    the vectorised reducer and the GHD bag materialiser can fetch the
    ``int64`` matrix aligned with the row list
    (:meth:`repro.data.relation.Relation.instance_codes`) without
    re-converting tuples — the matrices are cached at the storage layer
    per store version.
    """

    __slots__ = ("_sources",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._sources: dict[str, tuple] = {}

    def bind_source(self, alias, relation, positions, selections, distinct) -> None:
        """Record where an alias's rows came from (enables ``codes``)."""
        self._sources[alias] = (
            relation,
            tuple(positions),
            tuple(selections),
            bool(distinct),
        )

    def codes(self, alias: str):
        """The code matrix aligned with ``self[alias]``, or ``None``."""
        source = self._sources.get(alias)
        if source is None:
            return None
        relation, positions, selections, distinct = source
        return relation.instance_codes(positions, selections, distinct=distinct)

    def source_of(self, alias: str):
        """``(relation, positions, selections, distinct)`` or ``None``.

        How the batched ranking path (:func:`repro.core.ranking.batched_node_keys`)
        reaches the storage-cached score columns aligned with this
        alias's rows.
        """
        return self._sources.get(alias)

    def survivors_of(self, alias: str):
        """Row indices of ``self[alias]`` within the source view.

        ``None`` means "all view rows, in view order" — true by
        construction for unreduced instances; :class:`ReducedInstances`
        overrides this with the reducer's survivor arrays.
        """
        return None


class ReducedInstances(AtomInstances):
    """Fully-reduced per-alias rows that remember where they came from.

    Produced by the vectorised reducer: each alias's surviving rows are
    a gather of the original view list, and the gather indices are kept
    so downstream array consumers (score columns) can project any
    view-aligned array onto the reduced rows without re-deriving
    anything.  Behaves exactly like the plain dict the scalar reducer
    returns.
    """

    __slots__ = ("_survivors", "_snapshot")

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._survivors: dict[str, object] = {}
        #: ``alias -> (store, store_version, view_len)`` at build time:
        #: what :func:`refresh_reduction` diffs against the stores'
        #: delta logs to update this reduction instead of rebuilding.
        self._snapshot: dict[str, tuple] = {}

    @classmethod
    def from_reduction(cls, source: Mapping[str, list[Row]], rows_by_alias, survivors):
        out = cls(rows_by_alias)
        source_of = getattr(source, "source_of", None)
        survivors_of = getattr(source, "survivors_of", None)
        prior_snapshots = getattr(source, "_snapshot", None)
        for alias in rows_by_alias:
            src = source_of(alias) if source_of is not None else None
            if src is not None:
                out.bind_source(alias, *src)
            kept = survivors.get(alias)
            # Compose with the input's own survivors (re-reducing an
            # already-reduced instance): the stored indices must always
            # be relative to the *view*, whatever the input was.
            prior = survivors_of(alias) if survivors_of is not None else None
            if prior is not None:
                kept = prior if kept is None else prior[kept]
            out._survivors[alias] = kept
            if prior is None and src is not None:
                # Unreduced source: ``source[alias]`` IS the full view.
                store = getattr(src[0], "_store", None)
                if store is not None:
                    out._snapshot[alias] = (store, store.version, len(source[alias]))
            elif prior_snapshots is not None and alias in prior_snapshots:
                out._snapshot[alias] = prior_snapshots[alias]
        return out

    def survivors_of(self, alias: str):
        return self._survivors.get(alias)

    def codes(self, alias: str):
        matrix = super().codes(alias)
        if matrix is None:
            return None
        kept = self._survivors.get(alias)
        return matrix if kept is None else matrix[kept]


def atom_instances(
    query: JoinProjectQuery, db: Database, *, distinct: bool = True
) -> Instances:
    """Bind every atom to its relation's rows (validating arities).

    Equality selections (:class:`~repro.query.query.Const` terms) are
    applied here, and rows are projected onto the atom's variable
    columns, so every downstream consumer sees rows aligned with
    ``atom.variables``.  Set semantics: duplicate rows are dropped by
    default, matching the paper's model (a database is a *set* of
    tuples).

    Physically this binds each atom through its relation's scan access
    path (:meth:`repro.data.relation.Relation.instance_rows`), whose
    select/project views are cached per atom signature — repeated cold
    executions of the same query re-project nothing.  The returned
    lists are shared cache state: rebind or filter them into fresh
    lists, never mutate them in place (``full_reduce`` and every
    enumerator already copy before filtering).
    """
    out = AtomInstances()
    for atom in query.atoms:
        rel = db[atom.relation]
        if rel.arity != atom.arity:
            raise QueryError(
                f"atom {atom!r} has {atom.arity} terms but relation "
                f"{rel.name!r} has arity {rel.arity}"
            )
        out[atom.alias] = rel.instance_rows(
            atom.variable_positions, atom.selections, distinct=distinct
        )
        out.bind_source(
            atom.alias, rel, atom.variable_positions, atom.selections, distinct
        )
    return out


def instance_matrix(instances: Mapping[str, list[Row]], alias: str, width: int):
    """The code matrix for one bound alias, or ``None``.

    Prefers the storage-cached matrix of an :class:`AtomInstances`
    binding; falls back to a one-off conversion of the row list.  The
    length check guards against any drift between a cached matrix and
    the row list it must mirror.
    """
    rows = instances[alias]
    codes_of = getattr(instances, "codes", None)
    matrix = codes_of(alias) if codes_of is not None else None
    if matrix is None:
        matrix = kernels.codes_matrix(rows, width)
    if matrix is None or len(matrix) != len(rows):
        return None
    return matrix


def full_reduce(
    tree: JoinTree,
    instances: Mapping[str, list[Row]],
    *,
    use_kernels: bool | None = None,
) -> Instances:
    """Remove all dangling tuples (two semi-join sweeps, O(|D|) passes).

    Returns fresh per-alias row lists; the input mapping is not mutated.
    The vectorised sweep returns them as a :class:`ReducedInstances`
    (still a plain dict to every existing consumer) carrying the
    source-view bindings and survivor index arrays that let the score
    columns of :mod:`repro.storage.scores` project onto the reduced
    rows; the scalar sweep returns an ordinary dict.

    When the instances are integer-coded (dictionary-encoded execution,
    or plain integer data) and NumPy is available, the sweeps run as
    array kernels — packed keys, ``np.isin`` membership masks, index
    gathers — with output lists identical to the row-at-a-time path
    (same tuples, same order).  ``use_kernels`` forces the choice for
    the batched sweep (``None`` = automatic); non-representable data
    falls back transparently.  Note that the fallback sweep runs
    through :func:`~repro.algorithms.semijoin.semijoin`, whose own
    large-multi-column kernel dispatch still applies — use
    :func:`repro.storage.kernels.set_enabled` to disable vectorisation
    entirely (as the benchmarks do for their row-at-a-time baselines).
    """
    if use_kernels is None:
        use_kernels = kernels.enabled()
    if use_kernels and kernels.enabled():
        state = _kernel_full_reduce(tree, instances)
        if state is not None:
            return state
        kernels.counters.record_fallback()

    state: Instances = {alias: list(rows) for alias, rows in instances.items()}

    # Bottom-up: parent ⋉ child for every edge, children first.
    for node in tree.post_order():
        for child in node.children:
            p_pos, c_pos = shared_positions(node.atom.variables, child.atom.variables)
            state[node.alias] = semijoin(
                state[node.alias], p_pos, state[child.alias], c_pos
            )

    # Top-down: child ⋉ parent, parents first.
    for node in tree.pre_order():
        for child in node.children:
            p_pos, c_pos = shared_positions(node.atom.variables, child.atom.variables)
            state[child.alias] = semijoin(
                state[child.alias], c_pos, state[node.alias], p_pos
            )
    return state


def _kernel_full_reduce(
    tree: JoinTree, instances: Mapping[str, list[Row]]
) -> Instances | None:
    """Both semi-join sweeps as array ops; ``None`` → caller falls back.

    Per alias the reducer tracks the surviving-row index array instead
    of rebuilding row lists per edge; the final lists are gathered from
    the *original* tuples, so output identity (objects included) is
    exact.
    """
    np = kernels.np
    matrices = {}
    for node in tree.nodes:
        matrix = instance_matrix(instances, node.alias, len(node.atom.variables))
        if matrix is None:
            return None
        matrices[node.alias] = matrix

    current = matrices
    survivors: dict[str, object] = {}

    def filter_with(alias: str, mask) -> None:
        if mask.all():
            return
        selected = np.nonzero(mask)[0]
        current[alias] = current[alias][selected]
        kept = survivors.get(alias)
        survivors[alias] = selected if kept is None else kept[selected]

    def semi(a_alias, a_pos, b_alias, b_pos) -> bool:
        """``a ⋉ b`` in place; False → unpackable key (full fallback)."""
        a_mat, b_mat = current[a_alias], current[b_alias]
        if not a_pos:  # cartesian edge: keep a iff b is non-empty
            if len(b_mat) == 0 and len(a_mat):
                filter_with(a_alias, np.zeros(len(a_mat), dtype=bool))
            return True
        if len(a_mat) == 0:
            return True
        if len(b_mat) == 0:
            filter_with(a_alias, np.zeros(len(a_mat), dtype=bool))
            return True
        packed = kernels.pack_pair(
            [a_mat[:, i] for i in a_pos], [b_mat[:, j] for j in b_pos]
        )
        if packed is None:
            return False
        filter_with(a_alias, kernels.semijoin_mask(*packed))
        return True

    for node in tree.post_order():
        for child in node.children:
            p_pos, c_pos = shared_positions(node.atom.variables, child.atom.variables)
            if not semi(node.alias, p_pos, child.alias, c_pos):
                return None
    for node in tree.pre_order():
        for child in node.children:
            p_pos, c_pos = shared_positions(node.atom.variables, child.atom.variables)
            if not semi(child.alias, c_pos, node.alias, p_pos):
                return None

    rows_by_alias: Instances = {}
    for alias, rows in instances.items():
        kept = survivors.get(alias)
        rows_by_alias[alias] = (
            list(rows) if kept is None else [rows[i] for i in kept.tolist()]
        )
    return ReducedInstances.from_reduction(instances, rows_by_alias, survivors)


def refresh_reduction(tree: JoinTree, reduced) -> "ReducedInstances | None":
    """Update a warm reduction from the stores' delta logs, or ``None``.

    Given a :class:`ReducedInstances` produced over the same join tree,
    replays what changed in the underlying stores since its snapshot and
    returns a **new** ``ReducedInstances`` whose per-alias rows, order
    and survivor arrays are exactly what :func:`full_reduce` would
    produce cold on the mutated database (the old object is untouched,
    so open cursors keep their consistent snapshot).  ``None`` means the
    gap is not delta-expressible — history compacted away, a relation
    with both appends and deletes in its gap, a rebound store, a scalar
    (non-``ReducedInstances``) reduction — and the caller rebuilds,
    which is always correct.

    Why replay is exact: the fully-reduced instance is the unique
    *maximal pairwise-consistent* sub-instance over the join tree, i.e.
    the greatest fixpoint of arc-consistency along tree edges.  The
    fixpoint depends only on the final instance, never on the mutation
    order, so the gap is processed as deletes-then-appends:

    * **deletes** only shrink the fixpoint — drop vanished survivors and
      propagate support loss (a key disappearing from one side of an
      edge kills every neighbour row it was supporting);
    * **appends** only grow it — appended view rows (store appends keep
      every select/project/distinct view prefix-stable, so the new view
      is exactly the old view plus a tail) join as candidates, and a
      previously-dangling row can resurrect *only* if some edge key of
      it is newly provided (were all its keys already present among
      survivors, the old reduction would not have been maximal), so the
      closure seeds from new keys alone; one arc-consistency pruning
      pass over the candidates then lands on the new fixpoint.
    """
    np = kernels.np
    if not kernels.HAS_NUMPY or not isinstance(reduced, ReducedInstances):
        return None
    aliases = list(reduced)
    snapshots = reduced._snapshot
    if set(snapshots) != set(aliases):
        return None

    # ---- diff every alias's view against its store's delta log ------- #
    new_views: dict[str, list[Row]] = {}
    base_views: dict[str, list[Row]] = {}  # views "as if deletes ran first"
    tails: dict[str, list[Row]] = {}
    had_deletes = False
    for alias in aliases:
        src = reduced.source_of(alias)
        if src is None:
            return None
        relation, positions, selections, distinct = src
        if not distinct:
            return None  # value-identity below needs duplicate-free views
        store, version, view_len = snapshots[alias]
        if getattr(relation, "_store", None) is not store:
            return None
        deltas = store.deltas_since(version)
        if deltas is None:
            return None
        has_append = any(d.is_append for d in deltas)
        has_delete = any(d.is_delete for d in deltas)
        if has_append and has_delete:
            return None
        view = relation.instance_rows(positions, selections, distinct=True)
        new_views[alias] = view
        if has_append:
            if len(view) < view_len:
                return None  # drift: the log and the view disagree
            base_views[alias] = view[:view_len]
            tails[alias] = view[view_len:]
        else:
            base_views[alias] = view
            tails[alias] = []
            had_deletes = had_deletes or has_delete
    if not had_deletes and not any(tails.values()):
        return reduced  # nothing changed; the warm state is current

    # ---- edge structure + lazily built per-edge key buckets ---------- #
    edges: list[tuple[str, str, tuple, tuple]] = []
    for node in tree.post_order():
        for child in node.children:
            if node.alias not in reduced or child.alias not in reduced:
                return None
            p_pos, c_pos = shared_positions(node.atom.variables, child.atom.variables)
            edges.append((node.alias, child.alias, tuple(p_pos), tuple(c_pos)))
    adjacency: dict[str, list] = {alias: [] for alias in aliases}
    for eid, (p, c, p_pos, c_pos) in enumerate(edges):
        adjacency[p].append((c, p_pos, c_pos, eid))
        adjacency[c].append((p, c_pos, p_pos, eid))

    alive: dict[str, set] = {alias: set(reduced[alias]) for alias in aliases}
    buckets: dict[tuple, dict] = {}

    def bucket(alias: str, eid: int, pos: tuple) -> dict:
        """``edge key -> set of alias's alive rows`` (built on demand)."""
        b = buckets.get((alias, eid))
        if b is None:
            b = {}
            for r in alive[alias]:
                b.setdefault(tuple(r[i] for i in pos), set()).add(r)
            buckets[(alias, eid)] = b
        return b

    def retract(alias: str, rows: list) -> None:
        """Remove rows; cascade support loss to arc-consistency fixpoint."""
        work = deque([(alias, rows)])
        while work:
            a, gone = work.popleft()
            gone = [r for r in gone if r in alive[a]]
            if not gone:
                continue
            # Build both sides of every adjacent edge BEFORE mutating
            # alive: a lazily built bucket must still see these rows.
            sides = [
                (nbr, bucket(a, eid, my_pos), bucket(nbr, eid, o_pos), my_pos)
                for nbr, my_pos, o_pos, eid in adjacency[a]
            ]
            for r in gone:
                alive[a].discard(r)
            for nbr, my_bkt, nbr_bkt, my_pos in sides:
                for r in gone:
                    key = tuple(r[i] for i in my_pos)
                    providers = my_bkt.get(key)
                    if providers is None:
                        continue
                    providers.discard(r)
                    if not providers:
                        # The key vanished from this side: every
                        # neighbour row it was supporting dangles now.
                        del my_bkt[key]
                        victims = nbr_bkt.get(key)
                        if victims:
                            work.append((nbr, list(victims)))

    # ---- phase 1: deletes (survivors only shrink) -------------------- #
    if had_deletes:
        for alias in aliases:
            view_set = set(new_views[alias])
            vanished = [r for r in reduced[alias] if r not in view_set]
            if vanished:
                retract(alias, vanished)

    # ---- phase 2: appends (candidates + resurrection closure) -------- #
    pending: deque = deque()
    dead_cache: dict[str, list] = {}

    def dead_rows(alias: str) -> list:
        rows = dead_cache.get(alias)
        if rows is None:
            live = alive[alias]
            rows = [r for r in base_views[alias] if r not in live]
            dead_cache[alias] = rows
        return rows

    admit_work: deque = deque(
        (alias, tail) for alias, tail in tails.items() if tail
    )
    while admit_work:
        a, candidates = admit_work.popleft()
        fresh = [r for r in candidates if r not in alive[a]]
        if not fresh:
            continue
        sides = [
            (nbr, bucket(a, eid, my_pos), bucket(nbr, eid, o_pos), my_pos, o_pos)
            for nbr, my_pos, o_pos, eid in adjacency[a]
        ]
        # Keys these rows provide that no current row of ``a`` provides:
        # the only keys that can resurrect previously-dangling rows.
        triggers = []
        for nbr, my_bkt, _nbr_bkt, my_pos, o_pos in sides:
            new_keys = {
                key
                for key in (tuple(r[i] for i in my_pos) for r in fresh)
                if key not in my_bkt
            }
            if new_keys:
                triggers.append((nbr, o_pos, new_keys))
        for r in fresh:
            alive[a].add(r)
            pending.append((a, r))
        for _nbr, my_bkt, _nbr_bkt, my_pos, _o_pos in sides:
            for r in fresh:
                my_bkt.setdefault(tuple(r[i] for i in my_pos), set()).add(r)
        for nbr, o_pos, new_keys in triggers:
            live = alive[nbr]
            hits = [
                r
                for r in dead_rows(nbr)
                if r not in live and tuple(r[i] for i in o_pos) in new_keys
            ]
            if hits:
                admit_work.append((nbr, hits))

    # Arc-consistency check over every admitted candidate: optimism is
    # corrected here, and retract() cascades any knock-on losses.
    while pending:
        a, r = pending.popleft()
        if r not in alive[a]:
            continue
        for nbr, my_pos, o_pos, eid in adjacency[a]:
            if not bucket(nbr, eid, o_pos).get(tuple(r[i] for i in my_pos)):
                retract(a, [r])
                break

    # ---- assemble: new-view order = cold full_reduce order ----------- #
    out_rows: Instances = {}
    out = ReducedInstances()
    for alias in aliases:
        view = new_views[alias]
        live = alive[alias]
        if len(live) == len(view):
            out_rows[alias] = list(view)
            kept = None
        else:
            indices = [i for i, r in enumerate(view) if r in live]
            out_rows[alias] = [view[i] for i in indices]
            kept = np.asarray(indices, dtype=np.int64)
        out[alias] = out_rows[alias]
        src = reduced.source_of(alias)
        out.bind_source(alias, *src)
        out._survivors[alias] = kept
        store = src[0]._store
        out._snapshot[alias] = (store, store.version, len(view))
    return out


def _join_on(
    left_rows: Sequence[Row],
    left_vars: Sequence[str],
    right_rows: Sequence[Row],
    right_vars: Sequence[str],
) -> tuple[list[Row], tuple[str, ...]]:
    """Hash join; output schema = left vars ++ (right vars \\ left vars)."""
    l_pos, r_pos = shared_positions(left_vars, right_vars)
    extra_positions = [i for i, v in enumerate(right_vars) if v not in left_vars]
    out_vars = tuple(left_vars) + tuple(right_vars[i] for i in extra_positions)
    index = group_by(right_rows, r_pos)
    out: list[Row] = []
    for lrow in left_rows:
        key = tuple(lrow[i] for i in l_pos)
        for rrow in index.get(key, ()):
            out.append(lrow + tuple(rrow[i] for i in extra_positions))
    return out, out_vars


def project_join(
    tree: JoinTree, instances: Mapping[str, list[Row]]
) -> tuple[list[Row], tuple[str, ...]]:
    """Distinct projected output via the join tree with early projection.

    At every node the intermediate result is projected onto
    ``A^π_i ∪ anchor(R_i)`` and de-duplicated before flowing upward —
    the multiway plan the paper contrasts with engines' binary plans.

    Returns ``(rows, head_order)`` where ``head_order`` is the tree's
    in-order projection layout (root's ``A^π``); callers reorder to the
    query head as needed.
    """

    def walk(node: JoinTreeNode) -> tuple[list[Row], tuple[str, ...]]:
        rows: list[Row] = list(instances[node.alias])
        variables: tuple[str, ...] = node.atom.variables
        for child in node.children:
            child_rows, child_vars = walk(child)
            rows, variables = _join_on(rows, variables, child_rows, child_vars)
        keep = tuple(node.subtree_head_vars) + tuple(
            v for v in node.anchor if v not in node.subtree_head_vars
        )
        pos = tuple(variables.index(v) for v in keep)
        seen: set[Row] = set()
        projected: list[Row] = []
        for r in rows:
            p = tuple(r[i] for i in pos)
            if p not in seen:
                seen.add(p)
                projected.append(p)
        return projected, keep

    rows, variables = walk(tree.root)
    head_order = tree.output_order
    pos = tuple(variables.index(v) for v in head_order)
    return [tuple(r[i] for i in pos) for r in rows], head_order


def evaluate(
    query: JoinProjectQuery,
    db: Database,
    *,
    tree: JoinTree | None = None,
    reduce_first: bool = True,
) -> set[Row]:
    """Distinct ``Q(D)`` as a set of tuples aligned with ``query.head``."""
    if tree is None:
        tree = build_join_tree(query)
    instances = atom_instances(query, db)
    if reduce_first:
        instances = full_reduce(tree, instances)
    rows, order = project_join(tree, instances)
    reorder = tuple(order.index(v) for v in query.head)
    return {tuple(r[i] for i in reorder) for r in rows}
