"""Brute-force reference evaluation (test oracle).

Joins all atoms by backtracking over variable assignments, projects,
de-duplicates, and sorts by ``(rank key, output tuple)`` — exactly the
order every enumerator must reproduce.  Exponential and tiny-input only;
used by the differential test suites, never by benchmarks.
"""

from __future__ import annotations

from typing import Any

from ..core.ranking import RankingFunction, SumRanking
from ..data.database import Database
from ..query.query import JoinProjectQuery, UnionQuery

__all__ = ["join_results", "ranked_output", "ranked_union_output"]

Row = tuple


def join_results(query: JoinProjectQuery, db: Database) -> list[dict[str, Any]]:
    """All satisfying variable assignments (as dicts), with multiplicity
    one per combination of (distinct) atom tuples."""
    from .yannakakis import atom_instances

    instances = atom_instances(query, db)
    results: list[dict[str, Any]] = []

    def extend(i: int, binding: dict[str, Any]) -> None:
        if i == len(query.atoms):
            results.append(dict(binding))
            return
        atom = query.atoms[i]
        for row in instances[atom.alias]:
            new = dict(binding)
            ok = True
            for var, value in zip(atom.variables, row):
                if var in new:
                    if new[var] != value:
                        ok = False
                        break
                else:
                    new[var] = value
            if ok:
                extend(i + 1, new)

    extend(0, {})
    return results


def ranked_output(
    query: JoinProjectQuery,
    db: Database,
    ranking: RankingFunction | None = None,
) -> list[tuple[Row, Any]]:
    """Distinct projected output sorted by ``(rank key, tuple)``.

    Returns ``[(head tuple, final score), ...]`` — the exact sequence a
    correct ranked enumerator must produce.
    """
    ranking = ranking or SumRanking()
    bound = ranking.bind({v: i for i, v in enumerate(query.head)})
    distinct: set[Row] = set()
    for binding in join_results(query, db):
        distinct.add(tuple(binding[v] for v in query.head))
    keyed = [
        (bound.key_of_output(query.head, values), values) for values in distinct
    ]
    keyed.sort()
    return [(values, bound.final_score(key)) for key, values in keyed]


def ranked_union_output(
    union: UnionQuery,
    db: Database,
    ranking: RankingFunction | None = None,
) -> list[tuple[Row, Any]]:
    """Oracle for UCQs: union of branch outputs, ranked and de-duplicated."""
    ranking = ranking or SumRanking()
    bound = ranking.bind({v: i for i, v in enumerate(union.head)})
    distinct: set[Row] = set()
    for branch in union.branches:
        for binding in join_results(branch, db):
            distinct.add(tuple(binding[v] for v in branch.head))
    keyed = [(bound.key_of_output(union.head, values), values) for values in distinct]
    keyed.sort()
    return [(values, bound.final_score(key)) for key, values in keyed]
