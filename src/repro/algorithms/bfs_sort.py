"""The paper's "BFS and sort" baseline (§6.2).

Computes the *distinct projected* output with the multiway
early-projection join (the BFS step, :func:`repro.algorithms.yannakakis.project_join`)
and then sorts it by the ranking function.  Unlike the engine baseline
it never materialises the full join, so it is competitive for large
``k`` — but it is still blocking (the first answer costs as much as the
last), still needs the whole distinct output in memory, and "deciding to
use BFS and sort requires knowledge of the output result size, which is
unknown apriori" (paper §6.2).
"""

from __future__ import annotations

import time
from typing import Any, Iterator

from ..core.answers import EnumerationStats, RankedAnswer
from ..core.base import RankedEnumeratorBase
from ..core.ranking import RankingFunction, SumRanking
from ..data.database import Database
from ..query.jointree import JoinTree, build_join_tree
from ..query.query import JoinProjectQuery
from .yannakakis import atom_instances, full_reduce, project_join

__all__ = ["BfsSortBaseline"]

Row = tuple


class BfsSortBaseline(RankedEnumeratorBase):
    """Distinct-output materialisation + sort (the paper's BFS&sort).

    Attributes
    ----------
    output_size:
        ``|Q(D)|`` — the distinct output cardinality this baseline must
        hold in memory (its failure mode on the IMDB 4-hop query, where
        the paper reports ~0.5 trillion items).
    """

    def __init__(
        self,
        query: JoinProjectQuery,
        db: Database,
        ranking: RankingFunction | None = None,
        *,
        join_tree: JoinTree | None = None,
    ):
        self.query = query
        self.db = db
        self.ranking = ranking or SumRanking()
        self.join_tree = join_tree or build_join_tree(query)
        self.stats = EnumerationStats()
        self.output_size = 0
        self._sorted: list[tuple[Any, Row]] | None = None
        self._bound = self.ranking.bind({v: i for i, v in enumerate(query.head)})

    def preprocess(self) -> "BfsSortBaseline":
        """Materialise the distinct output (BFS) and sort it (blocking)."""
        if self._sorted is not None:
            return self
        started = time.perf_counter()
        instances = full_reduce(self.join_tree, atom_instances(self.query, self.db))
        rows, order = project_join(self.join_tree, instances)
        reorder = tuple(order.index(v) for v in self.query.head)
        head = self.query.head
        key_of = self._bound.key_of_output
        keyed = []
        for row in rows:
            values = tuple(row[i] for i in reorder)
            keyed.append((key_of(head, values), values))
        keyed.sort()
        self._sorted = keyed
        self.output_size = len(keyed)
        self.stats.preprocess_seconds = time.perf_counter() - started
        return self

    def __iter__(self) -> Iterator[RankedAnswer]:
        self.preprocess()
        assert self._sorted is not None
        final = self._bound.final_score
        for key, values in self._sorted:
            self.stats.answers += 1
            yield RankedAnswer(values, final(key), key=key)

    def fresh(self) -> "BfsSortBaseline":
        """A new baseline with identical configuration."""
        return BfsSortBaseline(self.query, self.db, self.ranking, join_tree=self.join_tree)
