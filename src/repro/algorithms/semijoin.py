"""Semi-join primitives over positional row lists.

The enumerators and the Yannakakis reducer work on *atom instances*:
plain lists of tuples whose columns align with an atom's variable tuple.
These helpers implement the hash-based primitives over that
representation.

Both :func:`semijoin` and :func:`antijoin` dispatch large multi-column
inputs to the vectorised membership kernels
(:mod:`repro.storage.kernels`) when the key columns are integer-valued —
packed ``int64`` keys and one ``np.isin`` pass instead of a per-row
tuple build + set probe — and fall back to the set-based path otherwise.
The size floor is the shared :func:`repro.storage.kernels.min_rows`
threshold (default ``KERNEL_MIN_ROWS = 1024`` total rows across both
sides — deliberately raised from the earlier standalone 512 when the
thresholds were unified; override per engine or thread to retune).
Outputs are identical either way (the surviving rows are the original
tuple objects, in input order).
"""

from __future__ import annotations

from typing import Sequence

from ..storage import kernels

__all__ = ["shared_positions", "key_set", "semijoin", "antijoin"]

Row = tuple


def shared_positions(
    vars_a: Sequence[str], vars_b: Sequence[str]
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Aligned column positions of the shared variables of two schemas.

    The shared variables are taken in ``vars_a`` order; the returned
    position tuples project rows of either side onto the same key space.

    >>> shared_positions(("a", "b", "c"), ("c", "b", "d"))
    ((1, 2), (1, 0))
    """
    shared = [v for v in vars_a if v in vars_b]
    pos_a = tuple(vars_a.index(v) for v in shared)
    pos_b = tuple(vars_b.index(v) for v in shared)
    return pos_a, pos_b


def key_set(rows: Sequence[Row], positions: Sequence[int]) -> set[tuple]:
    """Distinct projections of ``rows`` onto ``positions``."""
    pos = tuple(positions)
    return {tuple(r[i] for i in pos) for r in rows}


def _kernel_filter(
    left_rows: Sequence[Row],
    left_positions: Sequence[int],
    right_rows: Sequence[Row],
    right_positions: Sequence[int],
    *,
    anti: bool,
) -> list[Row] | None:
    """Surviving left rows via an array membership mask, or ``None``.

    Only attempted where the kernels actually win: multi-column keys
    (the Python path must build a tuple per row) on inputs large enough
    to amortise the per-call column conversion.  Single-column keys stay
    on Python sets, which are already tuple-free and fast.
    """
    if len(left_positions) < 2 or not kernels.enabled():
        return None
    if len(left_rows) + len(right_rows) < kernels.min_rows():
        return None
    # Cheap first-row probe before any O(n) column conversion: string-
    # or otherwise fat-keyed data answers with two type checks per call
    # instead of a full wasted pass (the conversion still validates
    # every cell when the probe passes).
    if left_rows and any(type(left_rows[0][i]) is not int for i in left_positions):
        kernels.counters.record_fallback()
        return None
    if right_rows and any(
        type(right_rows[0][j]) is not int for j in right_positions
    ):
        kernels.counters.record_fallback()
        return None
    left_cols = kernels.key_columns(left_rows, left_positions)
    right_cols = kernels.key_columns(right_rows, right_positions)
    if left_cols is None or right_cols is None:
        kernels.counters.record_fallback()
        return None
    packed = kernels.pack_pair(left_cols, right_cols)
    if packed is None:
        kernels.counters.record_fallback()
        return None
    mask = kernels.antijoin_mask(*packed) if anti else kernels.semijoin_mask(*packed)
    return [left_rows[i] for i in kernels.np.nonzero(mask)[0].tolist()]


def semijoin(
    left_rows: Sequence[Row],
    left_positions: Sequence[int],
    right_rows: Sequence[Row],
    right_positions: Sequence[int],
) -> list[Row]:
    """``left ⋉ right``: left rows with a join partner on the right.

    With no shared columns (both position tuples empty) this degenerates
    to "keep left iff right is non-empty", which is the correct semantics
    for cartesian-product join-tree edges.  The single-column case — by
    far the most common in the paper's queries — avoids per-row tuple
    construction (this sits on the lexicographic enumerator's hot path).
    """
    if not left_positions and not right_positions:
        return list(left_rows) if right_rows else []
    if len(left_positions) == 1 and len(right_positions) == 1:
        j = right_positions[0]
        keys = {r[j] for r in right_rows}
        i = left_positions[0]
        return [r for r in left_rows if r[i] in keys]
    vectorised = _kernel_filter(
        left_rows, left_positions, right_rows, right_positions, anti=False
    )
    if vectorised is not None:
        return vectorised
    keys = key_set(right_rows, right_positions)
    pos = tuple(left_positions)
    return [r for r in left_rows if tuple(r[i] for i in pos) in keys]


def antijoin(
    left_rows: Sequence[Row],
    left_positions: Sequence[int],
    right_rows: Sequence[Row],
    right_positions: Sequence[int],
) -> list[Row]:
    """``left ▷ right``: left rows with *no* join partner on the right."""
    if not left_positions and not right_positions:
        return [] if right_rows else list(left_rows)
    if not right_rows:
        return list(left_rows)
    if len(left_positions) == 1 and len(right_positions) == 1:
        # Mirror of semijoin's fast path: no per-row key tuples.
        j = right_positions[0]
        keys = {r[j] for r in right_rows}
        i = left_positions[0]
        return [r for r in left_rows if r[i] not in keys]
    vectorised = _kernel_filter(
        left_rows, left_positions, right_rows, right_positions, anti=True
    )
    if vectorised is not None:
        return vectorised
    keys = key_set(right_rows, right_positions)
    pos = tuple(left_positions)
    return [r for r in left_rows if tuple(r[i] for i in pos) not in keys]
