"""Semi-join primitives over positional row lists.

The enumerators and the Yannakakis reducer work on *atom instances*:
plain lists of tuples whose columns align with an atom's variable tuple.
These helpers implement the hash-based primitives over that
representation.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["shared_positions", "key_set", "semijoin", "antijoin"]

Row = tuple


def shared_positions(
    vars_a: Sequence[str], vars_b: Sequence[str]
) -> tuple[tuple[int, ...], tuple[int, ...]]:
    """Aligned column positions of the shared variables of two schemas.

    The shared variables are taken in ``vars_a`` order; the returned
    position tuples project rows of either side onto the same key space.

    >>> shared_positions(("a", "b", "c"), ("c", "b", "d"))
    ((1, 2), (1, 0))
    """
    shared = [v for v in vars_a if v in vars_b]
    pos_a = tuple(vars_a.index(v) for v in shared)
    pos_b = tuple(vars_b.index(v) for v in shared)
    return pos_a, pos_b


def key_set(rows: Sequence[Row], positions: Sequence[int]) -> set[tuple]:
    """Distinct projections of ``rows`` onto ``positions``."""
    pos = tuple(positions)
    return {tuple(r[i] for i in pos) for r in rows}


def semijoin(
    left_rows: Sequence[Row],
    left_positions: Sequence[int],
    right_rows: Sequence[Row],
    right_positions: Sequence[int],
) -> list[Row]:
    """``left ⋉ right``: left rows with a join partner on the right.

    With no shared columns (both position tuples empty) this degenerates
    to "keep left iff right is non-empty", which is the correct semantics
    for cartesian-product join-tree edges.  The single-column case — by
    far the most common in the paper's queries — avoids per-row tuple
    construction (this sits on the lexicographic enumerator's hot path).
    """
    if not left_positions and not right_positions:
        return list(left_rows) if right_rows else []
    if len(left_positions) == 1 and len(right_positions) == 1:
        j = right_positions[0]
        keys = {r[j] for r in right_rows}
        i = left_positions[0]
        return [r for r in left_rows if r[i] in keys]
    keys = key_set(right_rows, right_positions)
    pos = tuple(left_positions)
    return [r for r in left_rows if tuple(r[i] for i in pos) in keys]


def antijoin(
    left_rows: Sequence[Row],
    left_positions: Sequence[int],
    right_rows: Sequence[Row],
    right_positions: Sequence[int],
) -> list[Row]:
    """``left ▷ right``: left rows with *no* join partner on the right."""
    if not left_positions and not right_positions:
        return [] if right_rows else list(left_rows)
    keys = key_set(right_rows, right_positions)
    pos = tuple(left_positions)
    return [r for r in left_rows if tuple(r[i] for i in pos) not in keys]
