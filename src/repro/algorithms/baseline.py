"""Engine-style baseline: materialise → de-duplicate → sort → LIMIT.

This is the faithful *algorithmic* stand-in for MariaDB, PostgreSQL and
Neo4j in the paper's experiments.  The paper's own analysis (§1, §6.2,
confirmed by inspecting the engines' query plans) attributes their cost
to exactly this serial pipeline of blocking operators:

1. materialise the **full join** with binary (left-deep hash) joins;
2. apply DISTINCT over the projection;
3. sort the distinct output by the ranking function;
4. return the top ``k``.

Consequently the baseline is *rank-agnostic* (same cost for SUM and
LEX — Figure 6's key observation), *k-agnostic* (LIMIT 10 costs the
same as LIMIT ∞ — Figure 5), and its memory footprint is the full join
size (the out-of-memory failures on IMDB 3-star and the large-scale
datasets).  ``join_order`` lets the benchmarks reproduce the paper's
join-order-hint experiment (§6.2: < 3 % impact, because materialisation
dominates).
"""

from __future__ import annotations

import time
from typing import Any, Iterator, Sequence

from ..core.answers import EnumerationStats, RankedAnswer
from ..core.base import RankedEnumeratorBase
from ..core.ranking import RankingFunction, SumRanking
from ..data.database import Database
from ..data.index import group_by
from ..errors import QueryError
from ..query.query import JoinProjectQuery, UnionQuery

__all__ = ["EngineBaseline"]

Row = tuple


class EngineBaseline(RankedEnumeratorBase):
    """Materialise/dedup/sort pipeline mimicking RDBMS & graph engines.

    Parameters
    ----------
    query:
        A join-project query or a union (engines evaluate UNION by
        concatenating the branch materialisations before DISTINCT).
    db:
        The database instance.
    ranking:
        The ranking function — used *only* in the final sort, exactly
        like the engines (the join/dedup phases never see it).
    join_order:
        Optional atom-alias order for the left-deep plan (the paper's
        join-order hints); defaults to query order.
    label:
        Cosmetic engine name for reports ("postgresql-like", ...).

    Attributes
    ----------
    intermediate_tuples:
        Total tuples produced across all binary-join intermediates — the
        materialisation cost the paper identifies as the bottleneck.
    peak_intermediate:
        Largest single intermediate (memory-footprint proxy; the paper
        reports multi-GB / out-of-memory here).
    """

    def __init__(
        self,
        query: JoinProjectQuery | UnionQuery,
        db: Database,
        ranking: RankingFunction | None = None,
        *,
        join_order: Sequence[str] | None = None,
        label: str = "engine",
        memory_limit_tuples: int | None = None,
    ):
        self.query = query
        self.db = db
        self.ranking = ranking or SumRanking()
        self.join_order = tuple(join_order) if join_order is not None else None
        self.label = label
        self.memory_limit_tuples = memory_limit_tuples
        self.stats = EnumerationStats()
        self.intermediate_tuples = 0
        self.peak_intermediate = 0
        #: Time spent in the rank-agnostic join+dedup phases vs the sort.
        self.join_seconds = 0.0
        self.sort_seconds = 0.0
        self._sorted: list[tuple[Any, Row]] | None = None
        head = query.head
        self._bound = self.ranking.bind({v: i for i, v in enumerate(head)})

    # ------------------------------------------------------------------ #
    # the blocking pipeline
    # ------------------------------------------------------------------ #
    def preprocess(self) -> "EngineBaseline":
        """Run the whole blocking pipeline (all three serial phases)."""
        if self._sorted is not None:
            return self
        started = time.perf_counter()
        branches = (
            self.query.branches
            if isinstance(self.query, UnionQuery)
            else (self.query,)
        )
        distinct: set[Row] = set()
        for branch in branches:
            rows, variables = self._materialise_full_join(branch)
            head_positions = tuple(variables.index(v) for v in branch.head)
            for row in rows:  # DISTINCT over the projection
                distinct.add(tuple(row[i] for i in head_positions))
        self.join_seconds = time.perf_counter() - started
        sort_started = time.perf_counter()
        head = self.query.head
        key_of = self._bound.key_of_output
        self._sorted = sorted((key_of(head, t), t) for t in distinct)  # blocking sort
        self.sort_seconds = time.perf_counter() - sort_started
        self.stats.preprocess_seconds = time.perf_counter() - started
        return self

    def _materialise_full_join(
        self, branch: JoinProjectQuery
    ) -> tuple[list[Row], tuple[str, ...]]:
        """Left-deep binary hash joins in ``join_order``."""
        from .yannakakis import atom_instances

        order = list(self.join_order) if self.join_order else [a.alias for a in branch.atoms]
        atoms = {a.alias: a for a in branch.atoms}
        if sorted(order) != sorted(atoms):
            raise QueryError(
                f"join_order {order} must be a permutation of atom aliases {sorted(atoms)}"
            )
        instances = atom_instances(branch, self.db)
        first = atoms[order[0]]
        acc_rows: list[Row] = instances[first.alias]
        acc_vars: tuple[str, ...] = first.variables
        for alias in order[1:]:
            atom = atoms[alias]
            right_rows = instances[alias]
            acc_rows, acc_vars = self._hash_join(acc_rows, acc_vars, right_rows, atom.variables)
            self.intermediate_tuples += len(acc_rows)
            self.peak_intermediate = max(self.peak_intermediate, len(acc_rows))
            if (
                self.memory_limit_tuples is not None
                and len(acc_rows) > self.memory_limit_tuples
            ):
                raise MemoryError(
                    f"{self.label}: intermediate of {len(acc_rows)} tuples exceeds "
                    f"the configured limit {self.memory_limit_tuples} (the paper's "
                    "out-of-memory failures)"
                )
        return acc_rows, acc_vars

    @staticmethod
    def _hash_join(
        left_rows: list[Row],
        left_vars: tuple[str, ...],
        right_rows: list[Row],
        right_vars: tuple[str, ...],
    ) -> tuple[list[Row], tuple[str, ...]]:
        shared = [v for v in left_vars if v in right_vars]
        l_pos = tuple(left_vars.index(v) for v in shared)
        r_pos = tuple(right_vars.index(v) for v in shared)
        extra = [i for i, v in enumerate(right_vars) if v not in left_vars]
        out_vars = left_vars + tuple(right_vars[i] for i in extra)
        index = group_by(right_rows, r_pos)
        out: list[Row] = []
        for lrow in left_rows:
            key = tuple(lrow[i] for i in l_pos)
            for rrow in index.get(key, ()):
                out.append(lrow + tuple(rrow[i] for i in extra))
        return out, out_vars

    # ------------------------------------------------------------------ #
    # enumeration over the sorted materialisation
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[RankedAnswer]:
        self.preprocess()
        assert self._sorted is not None
        final = self._bound.final_score
        for key, values in self._sorted:
            self.stats.answers += 1
            yield RankedAnswer(values, final(key), key=key)

    def fresh(self) -> "EngineBaseline":
        """A new baseline with identical configuration."""
        return EngineBaseline(
            self.query,
            self.db,
            self.ranking,
            join_order=self.join_order,
            label=self.label,
            memory_limit_tuples=self.memory_limit_tuples,
        )
