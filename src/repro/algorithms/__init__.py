"""Substrate algorithms: Yannakakis, semi-joins, and the baselines the
paper evaluates against (engine-style materialise/sort, BFS+sort,
Algorithm 6, and the brute-force test oracle).

Attributes are resolved lazily (PEP 562): the enumerators in
:mod:`repro.core` import the Yannakakis machinery from here while the
baselines import the enumerators back, so eager re-exports would form an
import cycle.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .baseline import EngineBaseline
    from .bfs_sort import BfsSortBaseline
    from .existing import FullQueryRankedBaseline
    from .naive import join_results, ranked_output, ranked_union_output
    from .semijoin import antijoin, key_set, semijoin, shared_positions
    from .yannakakis import atom_instances, evaluate, full_reduce, project_join

__all__ = [
    "EngineBaseline",
    "BfsSortBaseline",
    "FullQueryRankedBaseline",
    "join_results",
    "ranked_output",
    "ranked_union_output",
    "semijoin",
    "antijoin",
    "key_set",
    "shared_positions",
    "atom_instances",
    "full_reduce",
    "project_join",
    "evaluate",
]

_HOMES = {
    "EngineBaseline": "baseline",
    "BfsSortBaseline": "bfs_sort",
    "FullQueryRankedBaseline": "existing",
    "join_results": "naive",
    "ranked_output": "naive",
    "ranked_union_output": "naive",
    "semijoin": "semijoin",
    "antijoin": "semijoin",
    "key_set": "semijoin",
    "shared_positions": "semijoin",
    "atom_instances": "yannakakis",
    "full_reduce": "yannakakis",
    "project_join": "yannakakis",
    "evaluate": "yannakakis",
}


def __getattr__(name: str):
    home = _HOMES.get(name)
    if home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{home}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value
