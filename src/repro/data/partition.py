"""Hash partitioning of a database for sharded ranked enumeration.

The parallel subsystem (:mod:`repro.parallel`) scales enumeration by
splitting the input into ``k`` *shards*, running one enumerator per
shard, and recombining the ranked shard streams with an
order-preserving merge.  This module is the data half of that story:

* :func:`choose_partition_attribute` picks the join variable whose
  hash classes split the most work (the variable shared by the most
  atoms, weighted by the tuples behind them);
* :func:`partition_query` materialises the shards.

Partitioning is **per atom**, not per relation: every atom of the
query gets its own shard relation, named after the atom's alias, and
the query is rewritten so each atom reads its private relation.  This
is what makes self-joins shardable — the two atoms of the 2-hop query
``Q(a1, a2) :- R(a1, p), R(a2, p)`` both bind the partition variable
``p`` to column 1 of ``R``, but a chain ``R(x, y), R(y, z)`` binds
``y`` to different columns per atom, which a single partition of ``R``
cannot serve.

Correctness invariant (what the merge relies on):

* an atom that *binds* the partition variable ``v`` keeps, in shard
  ``s``, exactly the rows whose ``v``-column hashes to ``s``;
* an atom that does not bind ``v`` is *replicated* (every shard sees
  all of its rows, sharing the tuple list in process).

Any join answer binds ``v`` to a single value, so all of its witness
tuples land together in the shard that value hashes to: shard ``s``
enumerates exactly the answers whose ``v``-value hashes to ``s``.
When ``v`` is projected away, one output tuple can be derived from
several ``v``-values and hence surface in several shards — the merge
de-duplicates adjacent equal outputs, which suffices because rank keys
are functions of the output values (see :mod:`repro.parallel.merge`).

Hashing is *stable* (CRC-based, not Python's salted ``hash``) so shard
assignment is reproducible across processes and runs.

Examples
--------
>>> from repro.data import Database
>>> from repro.query import parse_query
>>> db = Database()
>>> _ = db.add_relation("R", ("a", "p"), [(1, 10), (2, 10), (3, 99)])
>>> q = parse_query("Q(a1, a2) :- R(a1, p), R(a2, p)")
>>> choose_partition_attribute(q, db)
'p'
>>> part = partition_query(q, db, shards=2)
>>> part.attribute, len(part.databases)
('p', 2)
>>> sorted(shard_db.size for shard_db in part.databases)  # per-atom shards
[2, 4]
"""

from __future__ import annotations

import zlib
from typing import Any, Sequence

from ..errors import SchemaError
from ..query.query import Atom, JoinProjectQuery, UnionQuery
from ..storage import kernels
from .database import Database
from .relation import Relation

__all__ = [
    "QueryPartition",
    "choose_partition_attribute",
    "partition_query",
    "rewrite_for_sharding",
    "stable_shard",
]


def _stable_hash(value: Any) -> int:
    """A deterministic, process-independent hash for shard assignment.

    Integers map to themselves (so small consecutive keys spread evenly
    and tests are easy to reason about); everything else goes through
    CRC32 of its ``repr``.  Python's built-in ``hash`` is unsuitable:
    string hashing is salted per process, and shard assignment must
    agree between the parent and any worker that re-derives it.

    Invariant: values that compare equal must hash equal, or the
    witnesses of one join value would be split across shards and the
    answer silently lost.  Join keys compare across numeric types
    (``10 == 10.0 == True and 1``), so bools and integral floats are
    canonicalised to ``int`` before hashing — mixed-type key columns
    are realistic because the CSV loader types each cell independently.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return zlib.crc32(repr(value).encode("utf-8"))


def stable_shard(value: Any, shards: int) -> int:
    """Shard index of ``value`` under stable hashing (in ``[0, shards)``).

    >>> stable_shard(10, 4), stable_shard(11, 4)
    (2, 3)
    >>> stable_shard("alice", 4) == stable_shard("alice", 4)
    True
    """
    return _stable_hash(value) % shards


def _query_atoms(query: JoinProjectQuery | UnionQuery) -> list[Atom]:
    if isinstance(query, UnionQuery):
        return [atom for branch in query.branches for atom in branch.atoms]
    return list(query.atoms)


def choose_partition_attribute(
    query: JoinProjectQuery | UnionQuery, db: Database | None = None
) -> str | None:
    """Pick the join variable that shards the most work.

    Scores every body variable by ``(number of atoms binding it, total
    tuples behind those atoms)`` and returns the maximum; atoms binding
    the winner are partitioned, the rest are replicated.  Every valid
    query binds at least one variable (atoms without variables are
    rejected at construction), so a variable is always returned; the
    ``None`` branch is a defensive fallback for variable-free inputs,
    and callers treat ``None`` as "use a single shard".

    The tuple-count term needs a database; without one the choice is
    structural only (atom counts, ties broken by first appearance).
    """
    atoms = _query_atoms(query)
    order: dict[str, int] = {}
    coverage: dict[str, int] = {}
    tuples: dict[str, int] = {}
    for atom in atoms:
        size = 0
        if db is not None:
            rel = db.get(atom.relation)
            size = len(rel) if rel is not None else 0
        for var in atom.variables:
            if var not in order:
                order[var] = len(order)
            coverage[var] = coverage.get(var, 0) + 1
            tuples[var] = tuples.get(var, 0) + size
    if not coverage:
        return None
    return max(
        coverage,
        key=lambda v: (coverage[v], tuples[v], -order[v]),
    )


class QueryPartition:
    """The result of hash-partitioning one query's data into shards.

    Attributes
    ----------
    query:
        The rewritten query: structurally identical to the original
        (same head, same variables, same join structure), but every
        atom reads its own alias-named relation so shards can filter
        per atom.  Plans built for this query are shard-independent.
    databases:
        One :class:`~repro.data.database.Database` per shard, holding
        exactly the alias-named relations the rewritten query reads.
    attribute:
        The partition variable, or ``None`` when partitioning was not
        possible (then there is exactly one full shard).
    shards:
        Number of shards (``len(databases)``).
    partitioned_aliases / replicated_aliases:
        Which atoms were hash-split vs fully replicated.
    """

    __slots__ = (
        "query",
        "databases",
        "attribute",
        "shards",
        "partitioned_aliases",
        "replicated_aliases",
        "shard_plan",
    )

    def __init__(
        self,
        query: JoinProjectQuery | UnionQuery,
        databases: list[Database],
        attribute: str | None,
        partitioned_aliases: Sequence[str],
        replicated_aliases: Sequence[str],
        shard_plan: Sequence[tuple] = (),
    ):
        self.query = query
        self.databases = databases
        self.attribute = attribute
        self.shards = len(databases)
        self.partitioned_aliases = tuple(partitioned_aliases)
        self.replicated_aliases = tuple(replicated_aliases)
        #: How each shard relation derives from the source database:
        #: ``(shard-local name, source relation, partition column or
        #: None)`` per atom.  Shard assignment is a pure function of
        #: this plan (stable hashing), which is what lets the process
        #: backend ship a shard *by reference* — a worker holding the
        #: same source data (e.g. a mapped snapshot) re-derives its
        #: shard instead of receiving it pickled.
        self.shard_plan = tuple(shard_plan)

    def shard_sizes(self) -> list[int]:
        """``|D_s|`` per shard (replicated tuples counted per shard)."""
        return [shard_db.size for shard_db in self.databases]

    def describe(self) -> str:
        """One-line summary used by ``--explain`` and the benchmarks."""
        if self.attribute is None:
            return "unpartitioned[1 shard]"
        return (
            f"hash[{self.attribute}] x {self.shards} shards "
            f"(split: {len(self.partitioned_aliases)}, "
            f"replicated: {len(self.replicated_aliases)})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryPartition({self.describe()})"


def _rewrite_atom(atom: Atom, rel_name: str) -> Atom:
    return Atom(rel_name, atom.terms, alias=atom.alias)


def rewrite_for_sharding(
    query: JoinProjectQuery | UnionQuery,
) -> JoinProjectQuery | UnionQuery:
    """The per-atom rewrite of ``query``, without touching any data.

    Every atom is pointed at its own deterministically named relation
    (``__shard_<alias>``, or ``__b<i>_<alias>`` inside union branches)
    so each shard database can filter per atom.  The rewrite is a pure
    function of the query — :func:`partition_query` produces shard
    databases for exactly these names, and because plans are
    data-independent, a plan built for the rewritten query (e.g. by the
    engine's parallel plan cache) instantiates against any shard of any
    partition of the same query.
    """
    if isinstance(query, UnionQuery):
        return UnionQuery(
            [
                JoinProjectQuery(
                    [
                        _rewrite_atom(atom, f"__b{b_idx}_{atom.alias}")
                        for atom in branch.atoms
                    ],
                    branch.head,
                    name=branch.name,
                )
                for b_idx, branch in enumerate(query.branches)
            ],
            name=query.name,
        )
    return JoinProjectQuery(
        [_rewrite_atom(atom, f"__shard_{atom.alias}") for atom in query.atoms],
        query.head,
        name=query.name,
    )


def _partition_rows(
    rel: Relation, column: int, shards: int
) -> list[list[tuple]]:
    """Split rows by the stable hash of one column.

    Reads the partition column directly off the columnar scan path (one
    list, no per-row tuple indexing); encoded-database callers get
    dense-int keys here, which `_stable_hash` maps to themselves.
    """
    buckets: list[list[tuple]] = [[] for _ in range(shards)]
    scan = rel.scan()
    keys = scan.column(column)
    rows = scan.rows()
    if kernels.enabled() and len(rows) >= kernels.min_rows():
        # Kernel path: hash the whole key column in one array op.  Only
        # taken when it is *exactly* the scalar assignment — integer
        # keys map to themselves under ``_stable_hash`` and NumPy's
        # ``%`` agrees with Python's for a positive modulus — and the
        # helper refuses (returning ``None``) any column where it could
        # not be (floats, strings, over-wide ints), falling back to the
        # per-row loop below.
        ids = kernels.shard_ids(keys, shards)
        if ids is not None:
            for shard, row in zip(ids, rows):
                buckets[shard].append(row)
            return buckets
    for key, row in zip(keys, rows):
        buckets[_stable_hash(key) % shards].append(row)
    return buckets


def _shard_atom(
    atom: Atom,
    rel_name: str,
    db: Database,
    attribute: str | None,
    shard_dbs: list[Database],
    partitioned: list[str],
    replicated: list[str],
    shard_plan: list[tuple],
) -> None:
    rel = db.get(atom.relation)
    if rel is None:
        raise SchemaError(
            f"cannot partition: database has no relation named {atom.relation!r}"
        )
    if attribute is not None and attribute in atom.var_set:
        column = atom.variable_positions[atom.variables.index(attribute)]
        buckets = _partition_rows(rel, column, len(shard_dbs))
        for shard_db, rows in zip(shard_dbs, buckets):
            shard_db.add(Relation(rel_name, rel.attrs, rows))
        partitioned.append(atom.alias)
        shard_plan.append((rel_name, atom.relation, column))
    else:
        for shard_db in shard_dbs:
            # Replicas share the parent's tuple list (copy-on-pickle for
            # the process backend, zero-copy for serial/threads).
            shard_db.add(rel.renamed(rel_name))
        replicated.append(atom.alias)
        shard_plan.append((rel_name, atom.relation, None))


def partition_query(
    query: JoinProjectQuery | UnionQuery,
    db: Database,
    shards: int,
    *,
    attribute: str | None = None,
) -> QueryPartition:
    """Hash-partition ``db`` into ``shards`` per-atom shard databases.

    Parameters
    ----------
    query:
        The query to shard; rewritten per atom (see module docstring).
    db:
        The full database.
    shards:
        Number of shards (>= 1).  ``shards == 1`` degenerates to one
        full copy-free shard, which keeps the parallel code path
        exercisable without splitting anything.
    attribute:
        Partition variable override; defaults to
        :func:`choose_partition_attribute`.  When no variable is
        usable the result has a single replicated shard and
        ``attribute is None``.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if attribute is None:
        attribute = choose_partition_attribute(query, db)
    elif attribute not in {
        v for atom in _query_atoms(query) for v in atom.variables
    }:
        raise SchemaError(
            f"partition attribute {attribute!r} does not appear in the query"
        )
    if attribute is None:
        shards = 1

    shard_dbs = [Database() for _ in range(shards)]
    partitioned: list[str] = []
    replicated: list[str] = []
    shard_plan: list[tuple] = []

    rewritten = rewrite_for_sharding(query)
    for atom, new_atom in zip(_query_atoms(query), _query_atoms(rewritten)):
        _shard_atom(
            atom,
            new_atom.relation,
            db,
            attribute,
            shard_dbs,
            partitioned,
            replicated,
            shard_plan,
        )

    return QueryPartition(
        rewritten, shard_dbs, attribute, partitioned, replicated, shard_plan
    )
