"""CSV import/export for relations and databases.

The benchmark harness materialises synthetic datasets in memory, but a
downstream user of the library will want to load real data; this module
gives a minimal, dependency-free CSV path:

* one relation per ``<name>.csv`` file, first line = header (attribute
  names), subsequent lines = tuples;
* typed parsing: values that look like integers/floats are converted,
  everything else stays a string (override with ``types=``).
"""

from __future__ import annotations

import csv
import os
from typing import Callable, Mapping, Sequence

from ..errors import SchemaError
from .database import Database
from .relation import Relation

__all__ = [
    "load_relation_csv",
    "save_relation_csv",
    "load_database_dir",
    "save_database_dir",
    "parse_value",
]


def parse_value(text: str):
    """Best-effort typed parse: int, then float, then raw string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def load_relation_csv(
    path: str,
    *,
    name: str | None = None,
    types: Sequence[Callable[[str], object]] | None = None,
) -> Relation:
    """Load one relation from a CSV file with a header row.

    Parameters
    ----------
    path:
        File path; the relation name defaults to the file stem.
    name:
        Override the relation name.
    types:
        Optional per-column converters; defaults to :func:`parse_value`
        for every column.
    """
    rel_name = name or os.path.splitext(os.path.basename(path))[0]
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"CSV file {path!r} is empty (missing header)") from None
        converters: Sequence[Callable[[str], object]]
        if types is None:
            converters = [parse_value] * len(header)
        else:
            if len(types) != len(header):
                raise SchemaError(
                    f"{len(types)} converters given for {len(header)} columns in {path!r}"
                )
            converters = list(types)
        rows = []
        for lineno, raw in enumerate(reader, start=2):
            if not raw:
                continue  # skip blank lines
            if len(raw) != len(header):
                raise SchemaError(f"{path!r}:{lineno}: expected {len(header)} fields, got {len(raw)}")
            rows.append(tuple(conv(cell) for conv, cell in zip(converters, raw)))
    return Relation(rel_name, header, rows)


def save_relation_csv(relation: Relation, path: str) -> None:
    """Write one relation to CSV (header row + tuples)."""
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(relation.attrs)
        writer.writerows(relation.scan().rows())


def load_database_dir(
    directory: str, *, types: Mapping[str, Sequence[Callable[[str], object]]] | None = None
) -> Database:
    """Load every ``*.csv`` file in a directory as one database.

    Relation names are the file stems; ``types`` optionally maps relation
    names to per-column converters.
    """
    db = Database()
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".csv"):
            continue
        stem = os.path.splitext(entry)[0]
        per_rel_types = None if types is None else types.get(stem)
        db.add(load_relation_csv(os.path.join(directory, entry), types=per_rel_types))
    return db


def save_database_dir(db: Database, directory: str) -> None:
    """Write every relation of ``db`` to ``<directory>/<name>.csv``."""
    os.makedirs(directory, exist_ok=True)
    for rel in db:
        save_relation_csv(rel, os.path.join(directory, f"{rel.name}.csv"))
