"""Relational storage substrate: relations, databases, indexes, CSV IO,
and hash partitioning for the parallel subsystem."""

from .database import Database
from .index import HashIndex, SortedColumn, group_by
from .loader import (
    load_database_dir,
    load_relation_csv,
    save_database_dir,
    save_relation_csv,
)
from .partition import (
    QueryPartition,
    choose_partition_attribute,
    partition_query,
    rewrite_for_sharding,
    stable_shard,
)
from .relation import Relation

__all__ = [
    "Database",
    "Relation",
    "QueryPartition",
    "choose_partition_attribute",
    "partition_query",
    "rewrite_for_sharding",
    "stable_shard",
    "HashIndex",
    "SortedColumn",
    "group_by",
    "load_relation_csv",
    "save_relation_csv",
    "load_database_dir",
    "save_database_dir",
]
