"""Relational storage substrate: relations, databases, indexes, CSV IO."""

from .database import Database
from .index import HashIndex, SortedColumn, group_by
from .loader import (
    load_database_dir,
    load_relation_csv,
    save_database_dir,
    save_relation_csv,
)
from .relation import Relation

__all__ = [
    "Database",
    "Relation",
    "HashIndex",
    "SortedColumn",
    "group_by",
    "load_relation_csv",
    "save_relation_csv",
    "load_database_dir",
    "save_database_dir",
]
