"""Stand-alone index structures.

Most hot-path indexing lives directly on :class:`repro.data.relation.Relation`
(``Relation.index``), which caches hash indexes per column set.  This module
provides the two additional access structures the paper's algorithms assume:

* :class:`HashIndex` — an explicit, reusable equi-lookup index over any
  list of rows (not necessarily a named relation), used by the semi-join
  machinery on intermediate results;
* :class:`SortedColumn` — a sorted distinct-value view of one column with
  binary-search successor queries, used by the lexicographic enumerator.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Sequence

__all__ = ["HashIndex", "SortedColumn", "group_by"]

Row = tuple


def group_by(rows: Iterable[Row], key_positions: Sequence[int]) -> dict[tuple, list[Row]]:
    """Group rows by the values at ``key_positions``.

    This is the primitive behind hash joins and semi-joins: one linear
    pass, one dict.  Returns ``{key tuple: [rows...]}``.
    """
    key = tuple(key_positions)
    out: dict[tuple, list[Row]] = {}
    for t in rows:
        k = tuple(t[i] for i in key)
        bucket = out.get(k)
        if bucket is None:
            out[k] = [t]
        else:
            bucket.append(t)
    return out


class HashIndex:
    """Hash index over an arbitrary row collection.

    Parameters
    ----------
    rows:
        The rows to index (any iterable of tuples).
    key_positions:
        Column indexes forming the lookup key.

    Examples
    --------
    >>> idx = HashIndex([(1, "x"), (1, "y"), (2, "z")], (0,))
    >>> idx.lookup((1,))
    [(1, 'x'), (1, 'y')]
    >>> idx.contains((2,)), idx.contains((3,))
    (True, False)
    """

    __slots__ = ("key_positions", "_buckets", "size")

    def __init__(self, rows: Iterable[Row], key_positions: Sequence[int]):
        self.key_positions = tuple(key_positions)
        self._buckets = group_by(rows, self.key_positions)
        self.size = sum(len(b) for b in self._buckets.values())

    def lookup(self, key: tuple) -> list[Row]:
        """All rows matching the key (empty list if none)."""
        return self._buckets.get(key, [])

    def contains(self, key: tuple) -> bool:
        """True if at least one row matches the key."""
        return key in self._buckets

    def keys(self) -> Iterable[tuple]:
        """All distinct keys."""
        return self._buckets.keys()

    def __len__(self) -> int:
        """Number of distinct keys."""
        return len(self._buckets)

    def key_of(self, row: Row) -> tuple:
        """Project a row onto this index's key columns."""
        return tuple(row[i] for i in self.key_positions)


class SortedColumn:
    """Sorted distinct values of one column with successor queries.

    Used by :mod:`repro.core.lexicographic` to walk ``dom(A_i)`` in order
    and by the star enumerator to locate degree thresholds.

    Examples
    --------
    >>> col = SortedColumn([3, 1, 2, 2])
    >>> col.values
    [1, 2, 3]
    >>> col.successor(1)
    2
    >>> col.successor(3) is None
    True
    """

    __slots__ = ("values",)

    def __init__(self, values: Iterable):
        self.values = sorted(set(values))

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def min(self):
        """Smallest value, or ``None`` when empty."""
        return self.values[0] if self.values else None

    def max(self):
        """Largest value, or ``None`` when empty."""
        return self.values[-1] if self.values else None

    def successor(self, value):
        """The smallest stored value strictly greater than ``value``."""
        i = bisect.bisect_right(self.values, value)
        return self.values[i] if i < len(self.values) else None

    def predecessor(self, value):
        """The largest stored value strictly smaller than ``value``."""
        i = bisect.bisect_left(self.values, value)
        return self.values[i - 1] if i > 0 else None

    def rank(self, value) -> int:
        """Number of stored values ``<= value``."""
        return bisect.bisect_right(self.values, value)
