"""In-memory relations.

A :class:`Relation` is the *logical* storage unit of the library: a
named, ordered multiset of fixed-arity tuples together with a schema (a
sequence of distinct attribute names).  The *physical* half lives in
:mod:`repro.storage`: tuples are held column-major in a
:class:`~repro.storage.columnstore.ColumnStore`, and every derived read
structure — scans, hash indexes, sorted views — is an
:class:`~repro.storage.paths.AccessPath` memoised per relation and
invalidated by the store's version counter.  This module and the
storage package are the only places allowed to touch physical storage
directly; everything else goes through the access-path methods below
(``tools/check_layering.py`` enforces it).

Attribute names on the relation itself are *storage* names; queries bind
columns positionally to query variables through :class:`repro.query.query.Atom`,
so the same relation can be used under many different variable names
(self-joins).
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Iterable, Iterator, Sequence

from ..errors import SchemaError
from ..storage.columnstore import ColumnStore
from ..storage.paths import (
    AccessPathCache,
    HashIndexPath,
    ScanPath,
    SortedViewPath,
)

__all__ = ["Relation"]

Value = Any
Row = tuple


def _check_schema(attrs: Sequence[str]) -> tuple[str, ...]:
    """Validate and normalise a schema: non-empty, string names, no dups."""
    names = tuple(attrs)
    if not names:
        raise SchemaError("a relation needs at least one attribute")
    for name in names:
        if not isinstance(name, str) or not name:
            raise SchemaError(f"attribute names must be non-empty strings, got {name!r}")
    if len(set(names)) != len(names):
        raise SchemaError(f"duplicate attribute names in schema {names}")
    return names


class Relation:
    """A named in-memory relation with a fixed schema.

    Parameters
    ----------
    name:
        The relation name used to look it up in a :class:`~repro.data.database.Database`.
    attrs:
        Ordered attribute (column) names; must be distinct.
    tuples:
        Iterable of rows.  Rows are normalised to plain tuples and checked
        against the schema arity.

    Examples
    --------
    >>> r = Relation("R", ("a", "b"), [(1, 10), (2, 20)])
    >>> len(r), r.arity
    (2, 2)
    >>> r.column("a")
    [1, 2]
    """

    __slots__ = (
        "name",
        "attrs",
        "generation",
        "_store",
        "_paths",
        "_owners",
        "__weakref__",  # the store holds listeners weakly
    )

    def __init__(self, name: str, attrs: Sequence[str], tuples: Iterable[Sequence[Value]] = ()):
        if not name:
            raise SchemaError("relation name must be non-empty")
        self.name = name
        self.attrs = _check_schema(attrs)
        arity = len(self.attrs)
        rows: list[Row] = []
        for row in tuples:
            t = tuple(row)
            if len(t) != arity:
                raise SchemaError(
                    f"tuple {t!r} has arity {len(t)}, relation {name!r} expects {arity}"
                )
            rows.append(t)
        #: Mutation counter: bumped on every ``add``/``extend``ed row.
        #: Consumers that cache derived structures (:mod:`repro.engine`)
        #: compare generations instead of hashing tuple lists.
        self.generation: int = 0
        self._adopt_store(ColumnStore.from_rows(arity, rows))
        #: Databases holding this relation (weak backrefs); mutations are
        #: pushed to them so ``Database.generation`` stays O(1) to read.
        self._owners: list = []

    @classmethod
    def _from_store(cls, name: str, attrs: Sequence[str], store: ColumnStore) -> "Relation":
        """Adopt a pre-built column store (encoding layer fast path)."""
        rel = cls(name, attrs)
        if store.arity != len(rel.attrs):
            raise SchemaError(
                f"store arity {store.arity} does not match schema {rel.attrs}"
            )
        rel._adopt_store(store)
        return rel

    def _adopt_store(self, store: ColumnStore) -> None:
        self._store = store
        self._paths = AccessPathCache(store)
        # Mutations through *any* relation sharing this store (renamed
        # views, shard replicas) must move this relation's generation
        # too, or engines querying through one view would keep serving
        # warm state invalidated through the other.
        store.register_listener(self)

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attrs)

    @property
    def tuples(self) -> list[Row]:
        """The row-major view of the physical store.

        A cached list rebuilt lazily after mutations; treat it as
        read-only — mutate through :meth:`add` / :meth:`extend` so the
        generation counters and access paths stay coherent.
        """
        return self._store.rows()

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._store.rows())

    def __contains__(self, row: Sequence[Value]) -> bool:
        return self._store.contains(tuple(row))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.name!r}, attrs={self.attrs}, n={len(self._store)})"

    def __eq__(self, other: object) -> bool:
        """Structural equality: same name, schema and multiset of tuples."""
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.name == other.name
            and self.attrs == other.attrs
            and sorted(self._store.rows()) == sorted(other._store.rows())
        )

    def __hash__(self) -> int:  # Relations are mutable: identity hash.
        return id(self)

    # ------------------------------------------------------------------ #
    # schema helpers
    # ------------------------------------------------------------------ #
    def position(self, attr: str) -> int:
        """Return the column index of ``attr``.

        Raises
        ------
        SchemaError
            If the attribute is not part of the schema.
        """
        try:
            return self.attrs.index(attr)
        except ValueError:
            raise SchemaError(f"relation {self.name!r} has no attribute {attr!r}") from None

    def positions(self, attrs: Sequence[str]) -> tuple[int, ...]:
        """Column indexes for a sequence of attributes, in the given order."""
        return tuple(self.position(a) for a in attrs)

    def has_attr(self, attr: str) -> bool:
        """True if ``attr`` is one of this relation's attributes."""
        return attr in self.attrs

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add(self, row: Sequence[Value]) -> None:
        """Append one tuple (validated against the schema arity)."""
        t = tuple(row)
        if len(t) != self.arity:
            raise SchemaError(
                f"tuple {t!r} has arity {len(t)}, relation {self.name!r} expects {self.arity}"
            )
        self._store.append(t)

    def extend(self, rows: Iterable[Sequence[Value]]) -> None:
        """Append many tuples (one generation step per row)."""
        for row in rows:
            self.add(row)

    def add_rows(self, rows: Iterable[Sequence[Value]]) -> None:
        """Append many tuples as *one* mutation (one delta, one step).

        A burst appended through here stays a single entry in the store's
        delta log, so delta-maintaining consumers replay it in one pass —
        the write shape the incremental benchmark and write-heavy
        services use.
        """
        materialised = []
        for row in rows:
            t = tuple(row)
            if len(t) != self.arity:
                raise SchemaError(
                    f"tuple {t!r} has arity {len(t)}, relation {self.name!r} "
                    f"expects {self.arity}"
                )
            materialised.append(t)
        self._store.append_rows(materialised)

    def remove(self, row: Sequence[Value]) -> int:
        """Delete every occurrence of ``row``; returns how many were removed.

        A no-op (returning 0) when the tuple is absent — callers check
        the count when absence matters.
        """
        t = tuple(row)
        if len(t) != self.arity:
            raise SchemaError(
                f"tuple {t!r} has arity {len(t)}, relation {self.name!r} "
                f"expects {self.arity}"
            )
        indices = [i for i, r in enumerate(self._store.rows()) if r == t]
        if indices:
            self._store.delete_rows(indices)
        return len(indices)

    def _store_mutated(self, delta) -> None:
        """Store mutation callback (every write lands here, once).

        Fired by the column store for mutations through *any* relation
        sharing it, so ``renamed`` replicas' generations move together.
        ``delta`` is the :class:`~repro.storage.deltas.StoreDelta` when
        the mutation is delta-expressible, else ``None``; owning
        databases use that bit to keep their ``delta_generation`` counter
        aligned with ``generation`` exactly when every step is
        delta-maintainable.  Each weakref is dereferenced exactly once: a
        second deref could race garbage collection.
        """
        self.generation += 1
        if self._owners:
            live = []
            for ref in self._owners:
                database = ref()
                if database is not None:
                    live.append(ref)
                    database._relation_mutated(delta_capable=delta is not None)
            self._owners = live

    def _attach(self, database) -> None:
        """Register an owning database for mutation notifications.

        Dead references are pruned here too — encoded views are re-added
        to a fresh database image on every refresh and never mutate, so
        this is their only pruning opportunity.
        """
        live = []
        registered = False
        for ref in self._owners:
            existing = ref()
            if existing is None:
                continue
            live.append(ref)
            if existing is database:
                registered = True
        if not registered:
            live.append(weakref.ref(database))
        self._owners = live

    # ------------------------------------------------------------------ #
    # access paths (the storage read interface)
    # ------------------------------------------------------------------ #
    def scan(self) -> ScanPath:
        """The sequential :class:`~repro.storage.paths.ScanPath`."""
        return self._paths.scan()

    def hash_path(self, key_positions: Sequence[int]) -> HashIndexPath:
        """The cached hash access path on the given column positions."""
        return self._paths.hash_index(key_positions)

    def sorted_path(self, attr: str) -> SortedViewPath:
        """The cached sorted access path on one attribute."""
        return self._paths.sorted_view(self.position(attr))

    def instance_rows(
        self,
        positions: Sequence[int],
        selections: Sequence[tuple[int, Value]] = (),
        *,
        distinct: bool = False,
    ) -> list[Row]:
        """Select/project view rows for a query atom (cached per signature).

        This is how :func:`repro.algorithms.yannakakis.atom_instances`
        binds atoms; the returned list is shared cache state — rebind or
        filter it into fresh lists, never mutate it in place.
        """
        return self._paths.scan().view(positions, selections, distinct)

    def instance_codes(
        self,
        positions: Sequence[int],
        selections: Sequence[tuple[int, Value]] = (),
        *,
        distinct: bool = False,
    ):
        """The ``int64`` code matrix aligned with :meth:`instance_rows`.

        Row ``i`` of the matrix encodes row ``i`` of the corresponding
        :meth:`instance_rows` list — the representation the vectorised
        kernels (:mod:`repro.storage.kernels`) operate on.  ``None``
        whenever the view is not exactly representable as integers
        (NumPy absent, non-integer values, unpackable distinct keys);
        callers then stay on the Python row lists.
        """
        return self._paths.scan().codes_view(positions, selections, distinct)

    # ------------------------------------------------------------------ #
    # algebra helpers (used by baselines, workloads and tests)
    # ------------------------------------------------------------------ #
    def column(self, attr: str) -> list[Value]:
        """All values of one attribute, in tuple order (with duplicates)."""
        return list(self._store.column(self.position(attr)))

    def domain(self, attr: str) -> set[Value]:
        """Distinct values of one attribute."""
        return set(self._store.column(self.position(attr)))

    def sorted_domain(self, attr: str, *, reverse: bool = False) -> list[Value]:
        """Distinct values of ``attr`` sorted ascending (cached).

        Served by the sorted access path; a descending view is produced
        by reversing the cached ascending list.
        """
        values = self.sorted_path(attr).values
        return list(reversed(values)) if reverse else list(values)

    def project(self, attrs: Sequence[str], *, distinct: bool = False) -> "Relation":
        """Relational projection onto ``attrs`` (optionally de-duplicated)."""
        pos = self.positions(attrs)
        rows = self._paths.scan().view(pos, (), distinct)
        return Relation(self.name, attrs, rows)

    def select(self, predicate: Callable[[Row], bool], *, name: str | None = None) -> "Relation":
        """Relational selection with an arbitrary row predicate."""
        return Relation(
            name or self.name,
            self.attrs,
            [t for t in self._store.rows() if predicate(t)],
        )

    def select_eq(self, attr: str, value: Value, *, name: str | None = None) -> "Relation":
        """Selection ``σ_{attr=value}`` using the hash access path."""
        i = self.position(attr)
        rows = self.hash_path((i,)).lookup((value,))
        return Relation(name or self.name, self.attrs, rows)

    def distinct(self) -> "Relation":
        """A copy with duplicate tuples removed (first occurrence kept)."""
        pos = tuple(range(self.arity))
        return Relation(self.name, self.attrs, self._paths.scan().view(pos, (), True))

    def renamed(self, name: str) -> "Relation":
        """A shallow copy under a different relation name (shares storage).

        Both views observe mutations made through either one — the shared
        store's version counter keeps their access paths coherent.
        """
        r = Relation(name, self.attrs)
        r._adopt_store(self._store)
        return r

    # ------------------------------------------------------------------ #
    # indexing (dict-level compatibility wrappers over the hash path)
    # ------------------------------------------------------------------ #
    def index(self, key_positions: Sequence[int]) -> dict[tuple, list[Row]]:
        """Hash index ``key tuple -> list of rows`` on the given columns.

        Indexes are cached per column-position tuple and invalidated on
        mutation.  An empty ``key_positions`` returns a single-entry index
        mapping ``()`` to all rows (useful for anchorless join-tree roots).
        """
        return self.hash_path(key_positions).buckets

    def index_on(self, attrs: Sequence[str]) -> dict[tuple, list[Row]]:
        """Hash index keyed by attribute *names* (convenience wrapper)."""
        return self.index(self.positions(attrs))

    # ------------------------------------------------------------------ #
    # pickling (worker shipping): caches and backrefs stay home
    # ------------------------------------------------------------------ #
    def __getstate__(self):
        return (self.name, self.attrs, self.generation, self._store)

    def __setstate__(self, state) -> None:
        self.name, self.attrs, self.generation, store = state
        self._adopt_store(store)
        self._owners = []
