"""In-memory relations.

A :class:`Relation` is the storage unit of the library: a named, ordered
multiset of fixed-arity tuples together with a schema (a sequence of
distinct attribute names).  Relations are deliberately simple — plain
Python tuples in a list — because the enumeration algorithms in
:mod:`repro.core` only need sequential scans and hash lookups, both of
which the :mod:`repro.data.index` module layers on top.

Attribute names on the relation itself are *storage* names; queries bind
columns positionally to query variables through :class:`repro.query.query.Atom`,
so the same relation can be used under many different variable names
(self-joins).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from ..errors import SchemaError

__all__ = ["Relation"]

Value = Any
Row = tuple


def _check_schema(attrs: Sequence[str]) -> tuple[str, ...]:
    """Validate and normalise a schema: non-empty, string names, no dups."""
    names = tuple(attrs)
    if not names:
        raise SchemaError("a relation needs at least one attribute")
    for name in names:
        if not isinstance(name, str) or not name:
            raise SchemaError(f"attribute names must be non-empty strings, got {name!r}")
    if len(set(names)) != len(names):
        raise SchemaError(f"duplicate attribute names in schema {names}")
    return names


class Relation:
    """A named in-memory relation with a fixed schema.

    Parameters
    ----------
    name:
        The relation name used to look it up in a :class:`~repro.data.database.Database`.
    attrs:
        Ordered attribute (column) names; must be distinct.
    tuples:
        Iterable of rows.  Rows are normalised to plain tuples and checked
        against the schema arity.

    Examples
    --------
    >>> r = Relation("R", ("a", "b"), [(1, 10), (2, 20)])
    >>> len(r), r.arity
    (2, 2)
    >>> r.column("a")
    [1, 2]
    """

    __slots__ = ("name", "attrs", "tuples", "generation", "_indexes", "_sorted_cols", "_tuple_set")

    def __init__(self, name: str, attrs: Sequence[str], tuples: Iterable[Sequence[Value]] = ()):
        if not name:
            raise SchemaError("relation name must be non-empty")
        self.name = name
        self.attrs = _check_schema(attrs)
        arity = len(self.attrs)
        rows: list[Row] = []
        for row in tuples:
            t = tuple(row)
            if len(t) != arity:
                raise SchemaError(
                    f"tuple {t!r} has arity {len(t)}, relation {name!r} expects {arity}"
                )
            rows.append(t)
        self.tuples: list[Row] = rows
        #: Mutation counter: bumped on every ``add``/``extend``.  Consumers
        #: that cache derived structures (``repro.engine``) compare
        #: generations instead of hashing tuple lists.
        self.generation: int = 0
        # Caches; invalidated on mutation.
        self._indexes: dict[tuple[int, ...], dict] = {}
        self._sorted_cols: dict[str, list] = {}
        self._tuple_set: set[Row] | None = None

    # ------------------------------------------------------------------ #
    # basic protocol
    # ------------------------------------------------------------------ #
    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attrs)

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.tuples)

    def __contains__(self, row: Sequence[Value]) -> bool:
        if len(self.tuples) <= 64:
            return tuple(row) in self.tuples
        if self._tuple_set is None:
            self._tuple_set = set(self.tuples)
        return tuple(row) in self._tuple_set

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.name!r}, attrs={self.attrs}, n={len(self.tuples)})"

    def __eq__(self, other: object) -> bool:
        """Structural equality: same name, schema and multiset of tuples."""
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.name == other.name
            and self.attrs == other.attrs
            and sorted(self.tuples) == sorted(other.tuples)
        )

    def __hash__(self) -> int:  # Relations are mutable: identity hash.
        return id(self)

    # ------------------------------------------------------------------ #
    # schema helpers
    # ------------------------------------------------------------------ #
    def position(self, attr: str) -> int:
        """Return the column index of ``attr``.

        Raises
        ------
        SchemaError
            If the attribute is not part of the schema.
        """
        try:
            return self.attrs.index(attr)
        except ValueError:
            raise SchemaError(f"relation {self.name!r} has no attribute {attr!r}") from None

    def positions(self, attrs: Sequence[str]) -> tuple[int, ...]:
        """Column indexes for a sequence of attributes, in the given order."""
        return tuple(self.position(a) for a in attrs)

    def has_attr(self, attr: str) -> bool:
        """True if ``attr`` is one of this relation's attributes."""
        return attr in self.attrs

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def add(self, row: Sequence[Value]) -> None:
        """Append one tuple (validated against the schema arity)."""
        t = tuple(row)
        if len(t) != self.arity:
            raise SchemaError(
                f"tuple {t!r} has arity {len(t)}, relation {self.name!r} expects {self.arity}"
            )
        self.tuples.append(t)
        self._invalidate()

    def extend(self, rows: Iterable[Sequence[Value]]) -> None:
        """Append many tuples."""
        for row in rows:
            self.add(row)

    def _invalidate(self) -> None:
        self.generation += 1
        self._indexes.clear()
        self._sorted_cols.clear()
        self._tuple_set = None

    # ------------------------------------------------------------------ #
    # algebra helpers (used by baselines, workloads and tests)
    # ------------------------------------------------------------------ #
    def column(self, attr: str) -> list[Value]:
        """All values of one attribute, in tuple order (with duplicates)."""
        i = self.position(attr)
        return [t[i] for t in self.tuples]

    def domain(self, attr: str) -> set[Value]:
        """Distinct values of one attribute."""
        i = self.position(attr)
        return {t[i] for t in self.tuples}

    def sorted_domain(self, attr: str, *, reverse: bool = False) -> list[Value]:
        """Distinct values of ``attr`` sorted ascending (cached).

        The cache is keyed on the attribute; a descending view is produced
        by reversing the cached ascending list.
        """
        if attr not in self._sorted_cols:
            self._sorted_cols[attr] = sorted(self.domain(attr))
        vals = self._sorted_cols[attr]
        return list(reversed(vals)) if reverse else list(vals)

    def project(self, attrs: Sequence[str], *, distinct: bool = False) -> "Relation":
        """Relational projection onto ``attrs`` (optionally de-duplicated)."""
        pos = self.positions(attrs)
        rows: Iterable[Row] = (tuple(t[i] for i in pos) for t in self.tuples)
        if distinct:
            rows = _stable_unique(rows)
        return Relation(self.name, attrs, rows)

    def select(self, predicate: Callable[[Row], bool], *, name: str | None = None) -> "Relation":
        """Relational selection with an arbitrary row predicate."""
        return Relation(name or self.name, self.attrs, [t for t in self.tuples if predicate(t)])

    def select_eq(self, attr: str, value: Value, *, name: str | None = None) -> "Relation":
        """Selection ``σ_{attr=value}`` using the hash index when available."""
        i = self.position(attr)
        idx = self.index((i,))
        return Relation(name or self.name, self.attrs, idx.get((value,), []))

    def distinct(self) -> "Relation":
        """A copy with duplicate tuples removed (first occurrence kept)."""
        return Relation(self.name, self.attrs, _stable_unique(self.tuples))

    def renamed(self, name: str) -> "Relation":
        """A shallow copy under a different relation name (shares tuples)."""
        r = Relation(name, self.attrs)
        r.tuples = self.tuples
        return r

    # ------------------------------------------------------------------ #
    # indexing
    # ------------------------------------------------------------------ #
    def index(self, key_positions: Sequence[int]) -> dict[tuple, list[Row]]:
        """Hash index ``key tuple -> list of rows`` on the given columns.

        Indexes are cached per column-position tuple and invalidated on
        mutation.  An empty ``key_positions`` returns a single-entry index
        mapping ``()`` to all rows (useful for anchorless join-tree roots).
        """
        key = tuple(key_positions)
        idx = self._indexes.get(key)
        if idx is None:
            idx = {}
            for t in self.tuples:
                k = tuple(t[i] for i in key)
                bucket = idx.get(k)
                if bucket is None:
                    idx[k] = [t]
                else:
                    bucket.append(t)
            self._indexes[key] = idx
        return idx

    def index_on(self, attrs: Sequence[str]) -> dict[tuple, list[Row]]:
        """Hash index keyed by attribute *names* (convenience wrapper)."""
        return self.index(self.positions(attrs))


def _stable_unique(rows: Iterable[Row]) -> list[Row]:
    """Deduplicate preserving the first occurrence order."""
    seen: set[Row] = set()
    out: list[Row] = []
    for t in rows:
        if t not in seen:
            seen.add(t)
            out.append(t)
    return out
