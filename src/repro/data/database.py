"""Database instances: named collections of relations.

A :class:`Database` is what every enumerator takes as input alongside a
query.  ``|D|`` — the paper's input-size parameter — is
:meth:`Database.size`, the total number of tuples across all relations.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from ..errors import SchemaError
from .relation import Relation, Value

__all__ = ["Database"]


class Database:
    """A set of named relations (the paper's instance ``D``).

    Examples
    --------
    >>> db = Database()
    >>> _ = db.add_relation("R", ("a", "b"), [(1, 2), (2, 3)])
    >>> db.size
    2
    >>> db["R"].attrs
    ('a', 'b')
    """

    __slots__ = ("_relations", "_generation", "_delta_generation", "__weakref__")

    def __init__(self, relations: Iterable[Relation] = ()):
        self._relations: dict[str, Relation] = {}
        self._generation: int = 0
        self._delta_generation: int = 0
        for rel in relations:
            self.add(rel)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add(self, relation: Relation) -> Relation:
        """Register an existing :class:`Relation`.

        Raises
        ------
        SchemaError
            If a different relation is already registered under the name.
        """
        existing = self._relations.get(relation.name)
        if existing is not None and existing is not relation:
            raise SchemaError(f"database already has a relation named {relation.name!r}")
        if existing is None:
            # One bump for the structural change plus the relation's own
            # mutation history, matching what a sum over relations would
            # report; from here on the relation pushes its mutations to
            # us, so reading ``generation`` stays O(1).
            self._generation += 1 + relation.generation
            relation._attach(self)
        self._relations[relation.name] = relation
        return relation

    def _relation_mutated(self, *, delta_capable: bool = False) -> None:
        """Backref hook: one of our relations mutated its store.

        ``delta_capable`` marks mutations the storage layer's delta log
        describes exactly (row appends/deletes); those advance
        :attr:`delta_generation` in lockstep with :attr:`generation`, so
        a consumer whose two gaps agree knows *every* intervening step is
        replayable from delta logs.
        """
        self._generation += 1
        if delta_capable:
            self._delta_generation += 1

    def add_relation(
        self, name: str, attrs: Sequence[str], tuples: Iterable[Sequence[Value]] = ()
    ) -> Relation:
        """Create and register a relation in one call."""
        return self.add(Relation(name, attrs, tuples))

    @classmethod
    def from_dict(cls, spec: Mapping[str, tuple[Sequence[str], Iterable[Sequence[Value]]]]) -> "Database":
        """Build a database from ``{name: (attrs, tuples)}`` (test helper)."""
        db = cls()
        for name, (attrs, tuples) in spec.items():
            db.add_relation(name, attrs, tuples)
        return db

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"database has no relation named {name!r}") from None

    def get(self, name: str) -> Relation | None:
        """Relation by name, or ``None``."""
        return self._relations.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> list[str]:
        """All relation names, in insertion order."""
        return list(self._relations)

    @property
    def size(self) -> int:
        """``|D|``: total number of tuples over all relations."""
        return sum(len(r) for r in self._relations.values())

    @property
    def generation(self) -> int:
        """Monotone mutation counter over the whole instance.

        Combines the structural generation (relations added) with every
        relation's own :attr:`~repro.data.relation.Relation.generation`,
        so any ``add``/``extend``/``add_relation`` changes the value.
        Cache layers (:mod:`repro.engine`) snapshot this to detect
        staleness without hashing tuple lists.  The counter is
        maintained incrementally — relations push mutations through a
        backref — so reading it is O(1), not O(#relations); warm-cache
        revalidation happens on every execution and used to pay the sum
        each time.
        """
        return self._generation

    @property
    def delta_generation(self) -> int:
        """How much of :attr:`generation` is delta-expressible mutation.

        Advances exactly when :attr:`generation` does *and* the mutation
        was a row append/delete carried by a store delta.  Warm-state
        consumers compare the two gaps since their last snapshot: equal
        gaps mean every intervening write can be replayed incrementally;
        unequal gaps mean something structural (a relation added, a
        non-delta store rewrite) happened and a full rebuild is due.
        """
        return self._delta_generation

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{r.name}({len(r)})" for r in self)
        return f"Database[{inner}]"

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #
    def save(self, path) -> str:
        """Write this instance as an on-disk snapshot directory.

        Delegates to :func:`repro.storage.persist.save_snapshot`; reopen
        with :func:`repro.open_database` for a memory-mapped, instantly
        warm instance.  Requires NumPy and exactly-representable values
        (bool/int/float/str or None, finite floats) — anything else
        raises :class:`~repro.storage.persist.SnapshotError` rather than
        saving an approximation.
        """
        from ..storage.persist import save_snapshot

        return save_snapshot(self, path)

    def copy(self) -> "Database":
        """Deep-ish copy: fresh relation objects, fresh storage."""
        db = Database()
        for rel in self:
            db.add_relation(rel.name, rel.attrs, list(rel))
        return db

    # ------------------------------------------------------------------ #
    # pickling (worker shipping): weak backrefs are rebuilt on arrival
    # ------------------------------------------------------------------ #
    def __getstate__(self):
        return (list(self._relations.values()), self._generation, self._delta_generation)

    def __setstate__(self, state) -> None:
        relations, generation, delta_generation = state
        self._relations = {rel.name: rel for rel in relations}
        self._generation = generation
        self._delta_generation = delta_generation
        for rel in relations:
            rel._attach(self)

    def stats(self) -> dict[str, int]:
        """Per-relation cardinalities plus the total size."""
        out = {r.name: len(r) for r in self}
        out["|D|"] = self.size
        return out
