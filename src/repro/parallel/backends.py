"""Shard execution backends: serial, threads, processes.

A *shard job* bundles everything one worker needs to enumerate its
shard: the (rewritten) query, the shard database, the ranking and the
planner knobs.  Backends turn a list of jobs into a list of ranked
per-shard streams that :func:`repro.parallel.merge.merge_ranked_streams`
recombines:

``serial``
    Enumerate in-process, lazily — no concurrency, no copies.  The
    reference backend: bit-identical to the others and the easiest to
    debug or profile.
``threads``
    One thread per shard feeding a bounded per-shard queue of answer
    chunks.  GIL-bound (no CPU speedup) but overlaps any blocking work
    and exercises the chunk protocol cheaply; meant for debugging the
    process backend without pickling.
``processes``
    A :class:`~concurrent.futures.ProcessPoolExecutor` with one worker
    per shard; each worker streams chunks of plain ``(values, score,
    key)`` triples through its own bounded manager queue and the parent
    rebuilds :class:`~repro.core.answers.RankedAnswer` objects as it
    merges.  This is the backend that uses more than one core.

Chunked streaming keeps the pipeline incremental in both directions:
the parent can emit the first merged answers while shards are still
enumerating, and the bounded per-shard queues apply backpressure — the
parent holds at most one in-flight chunk per stream, a worker at most
a fixed number of queued chunks, so no side ever buffers an unbounded
output.  ``limit`` caps each worker at the global ``k`` — a shard
never needs to produce more than ``k`` answers for a correct global
top-``k``, because a shard stream is a subsequence of the global
order.

Payloads for the process backend must be picklable (true for the whole
query/data model and every shipped ranking; a ``CallableWeight``
wrapping a lambda is the known exception — use ``serial``/``threads``
or a named function there).
"""

from __future__ import annotations

import os
import queue as queue_mod
import threading
from concurrent.futures import ProcessPoolExecutor
from itertools import islice
from typing import Any, Iterator, Sequence

from ..core.answers import RankedAnswer
from ..core.ranking import RankingFunction
from ..data.database import Database
from ..errors import ReproError
from ..query.query import JoinProjectQuery, UnionQuery
from ..storage import kernels
from ..testing.faultinject import fault_point

__all__ = ["BACKENDS", "ShardJob", "ShardStreams", "open_shard_streams", "run_many"]

BACKENDS = ("serial", "threads", "processes")

#: Answers per message on the chunk protocol.  Large enough to amortise
#: queue/pickle overhead, small enough to keep the pipeline incremental.
DEFAULT_CHUNK_SIZE = 512

_QUEUE_DEPTH_PER_SHARD = 8  # backpressure bound, in chunks


class ShardJob:
    """One worker's unit of work: enumerate one shard of one query.

    ``plan`` carries the data-independent :class:`~repro.core.planner.
    QueryPlan` of the (rewritten) query, built **once** by the caller —
    workers only instantiate it against their shard database, so a
    ``k``-shard execution plans once, not ``k`` times.  Without a plan
    the job falls back to per-worker planning (still correct; used by
    tests driving the backends directly).
    """

    __slots__ = (
        "query",
        "db",
        "ranking",
        "method",
        "epsilon",
        "delta",
        "kwargs",
        "limit",
        "plan",
        "snapshot_ref",
    )

    def __init__(
        self,
        query: JoinProjectQuery | UnionQuery,
        db: Database,
        ranking: RankingFunction | None = None,
        *,
        method: str = "auto",
        epsilon: float | None = None,
        delta: int | None = None,
        kwargs: dict[str, Any] | None = None,
        limit: int | None = None,
        plan=None,
        snapshot_ref=None,
    ):
        self.query = query
        self.db = db
        self.ranking = ranking
        self.method = method
        self.epsilon = epsilon
        self.delta = delta
        self.kwargs = dict(kwargs or {})
        self.limit = limit
        self.plan = plan
        self.snapshot_ref = snapshot_ref

    def __getstate__(self) -> dict:
        state = {name: getattr(self, name) for name in self.__slots__}
        if self.snapshot_ref is not None:
            # The shard database is derivable from the on-disk snapshot:
            # ship the tiny SnapshotShardRef instead and let the worker
            # memory-map the same files rather than unpickle every row.
            state["db"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            setattr(self, name, value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.db is None:
            return f"ShardJob({self.query.name!r}, snapshot shard, limit={self.limit})"
        return f"ShardJob({self.query.name!r}, |D_s|={self.db.size}, limit={self.limit})"


def _enumerate_shard(job: ShardJob) -> Iterator[RankedAnswer]:
    """Run one shard in the current process (all backends)."""
    fault_point("parallel.worker")
    if job.db is None and job.snapshot_ref is not None:
        # Snapshot-shipped job: rebuild the shard database by mapping
        # the snapshot files (zero-copy, shared pages across workers).
        job.db = job.snapshot_ref.build_database()
    if job.plan is not None:
        enum = job.plan.instantiate(job.db)
    else:
        from ..core.planner import create_enumerator

        enum = create_enumerator(
            job.query,
            job.db,
            job.ranking,
            method=job.method,
            epsilon=job.epsilon,
            delta=job.delta,
            **job.kwargs,
        )
    stream: Iterator[RankedAnswer] = iter(enum)
    if job.limit is not None:
        stream = islice(stream, job.limit)
    return stream


class ShardStreams:
    """Per-shard ranked streams plus the resources backing them.

    Use as a context manager (or call :meth:`close`) so worker pools
    and manager processes are torn down even when the consumer stops
    early.
    """

    def __init__(self, streams: list[Iterator[RankedAnswer]], close=None):
        self.streams = streams
        self._close = close

    def close(self) -> None:
        if self._close is not None:
            close, self._close = self._close, None
            close()

    def __enter__(self) -> "ShardStreams":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# --------------------------------------------------------------------- #
# threads backend
# --------------------------------------------------------------------- #
def _thread_producer(
    job: ShardJob, out: queue_mod.Queue, chunk_size: int, context=None
) -> None:
    chunk: list[RankedAnswer] = []
    try:
        # Re-enter the spawning thread's instrumentation context: the
        # engine's counter tallies and kernel-threshold override apply
        # to shard work done on this thread too, so per-engine stats
        # stay exact on the threads backend even with concurrent
        # engines.
        with kernels.attached_context(context or kernels.capture_context()):
            for answer in _enumerate_shard(job):
                chunk.append(answer)
                if len(chunk) >= chunk_size:
                    out.put(("chunk", chunk))
                    chunk = []
            if chunk:
                out.put(("chunk", chunk))
        out.put(("done", None))
    except BaseException as exc:  # propagated to the consumer
        out.put(("error", exc))


def _drain_thread_queue(out: queue_mod.Queue) -> Iterator[RankedAnswer]:
    while True:
        kind, payload = out.get()
        if kind == "chunk":
            yield from payload
        elif kind == "done":
            return
        else:
            raise payload


def _open_threads(jobs: Sequence[ShardJob], chunk_size: int) -> ShardStreams:
    queues = [
        queue_mod.Queue(maxsize=_QUEUE_DEPTH_PER_SHARD) for _ in jobs
    ]
    context = kernels.capture_context()
    threads = [
        threading.Thread(
            target=_thread_producer, args=(job, out, chunk_size, context), daemon=True
        )
        for job, out in zip(jobs, queues)
    ]
    for t in threads:
        t.start()

    def close() -> None:
        # Unblock producers stuck on a full queue; the daemon threads
        # then run to completion (or die with the interpreter if the
        # consumer abandoned a large enumeration mid-stream).
        for out in queues:
            try:
                while True:
                    out.get_nowait()
            except queue_mod.Empty:
                pass

    return ShardStreams(
        [_drain_thread_queue(out) for out in queues], close=close
    )


# --------------------------------------------------------------------- #
# processes backend
# --------------------------------------------------------------------- #
def _process_producer(job: ShardJob, out, chunk_size: int) -> None:
    """Worker body: stream ``(values, score, key)`` chunks to the parent."""
    chunk: list[tuple] = []
    try:
        for answer in _enumerate_shard(job):
            chunk.append((answer.values, answer.score, answer.key))
            if len(chunk) >= chunk_size:
                out.put(("chunk", chunk))
                chunk = []
        if chunk:
            out.put(("chunk", chunk))
        out.put(("done", None))
    except BaseException as exc:
        try:
            out.put(("error", exc))
        except Exception:  # the exception itself does not pickle
            out.put(("error", ReproError(f"shard worker failed: {exc!r}")))


def _drain_process_queue(out) -> Iterator[RankedAnswer]:
    while True:
        kind, payload = out.get()
        if kind == "chunk":
            for values, score, key in payload:
                yield RankedAnswer(values, score, key=key)
        elif kind == "done":
            return
        else:
            raise payload


def _open_processes(jobs: Sequence[ShardJob], chunk_size: int) -> ShardStreams:
    import multiprocessing as mp

    # One worker process and one bounded queue *per shard*.  The merge
    # needs the head of every stream before it can emit anything, so a
    # pool smaller than the shard count would deadlock (an unscheduled
    # shard's queue never fills while a scheduled one blocks on put);
    # per-shard queues are what makes the backpressure bound real — the
    # parent holds at most one in-flight chunk per stream and each
    # worker at most _QUEUE_DEPTH_PER_SHARD chunks.  Oversharding past
    # the core count is therefore safe, just not faster.
    manager = mp.Manager()
    queues = [manager.Queue(maxsize=_QUEUE_DEPTH_PER_SHARD) for _ in jobs]
    executor = ProcessPoolExecutor(max_workers=len(jobs))
    futures = [
        executor.submit(_process_producer, job, out, chunk_size)
        for job, out in zip(jobs, queues)
    ]

    def close() -> None:
        for future in futures:
            future.cancel()
        executor.shutdown(wait=False, cancel_futures=True)
        try:
            manager.shutdown()
        except Exception:  # pragma: no cover - teardown best effort
            pass

    return ShardStreams(
        [_drain_process_queue(out) for out in queues], close=close
    )


def open_shard_streams(
    jobs: Sequence[ShardJob],
    *,
    backend: str = "processes",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> ShardStreams:
    """Launch ``jobs`` on the chosen backend and return their streams.

    The returned :class:`ShardStreams` owns the worker resources; close
    it (or use ``with``) once the merged stream is consumed.
    """
    if backend not in BACKENDS:
        raise ReproError(f"unknown parallel backend {backend!r}; choose one of {BACKENDS}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if not jobs:
        return ShardStreams([])
    if backend == "serial" or len(jobs) == 1:
        return ShardStreams([_enumerate_shard(job) for job in jobs])
    if backend == "threads":
        return _open_threads(jobs, chunk_size)
    return _open_processes(jobs, chunk_size)


# --------------------------------------------------------------------- #
# batch execution (independent queries across the pool)
# --------------------------------------------------------------------- #
_BATCH_ENGINE = None


def _init_batch_worker(db: Database) -> None:
    """Pool initializer: one session engine per worker process.

    The database is pickled once per worker (not once per query) and
    the worker-local :class:`~repro.engine.QueryEngine` gives repeated
    queries within a batch the same prepared-plan cache hits they would
    get in a serial session.
    """
    global _BATCH_ENGINE
    from ..engine import QueryEngine

    _BATCH_ENGINE = QueryEngine(db)


def _run_batch_query(item: tuple) -> list[tuple]:
    query, ranking, k, method, epsilon, delta = item
    answers = _BATCH_ENGINE.execute(
        query, ranking, k=k, method=method, epsilon=epsilon, delta=delta
    )
    return [(a.values, a.score, a.key) for a in answers]


def run_many(
    db: Database,
    items: Sequence[tuple],
    *,
    max_workers: int | None = None,
) -> list[list[RankedAnswer]]:
    """Execute independent ``(query, ranking, k, method, epsilon, delta)``
    requests across a process pool; results come back in input order.
    """
    if not items:
        return []
    workers = max_workers or min(len(items), os.cpu_count() or 1)
    with ProcessPoolExecutor(
        max_workers=max(1, workers),
        initializer=_init_batch_worker,
        initargs=(db,),
    ) as executor:
        raw = list(executor.map(_run_batch_query, items))
    return [
        [RankedAnswer(values, score, key=key) for values, score, key in rows]
        for rows in raw
    ]
