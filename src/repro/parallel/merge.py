"""Order-preserving k-way merge of ranked answer streams.

Every enumerator in :mod:`repro.core` emits its answers sorted by the
pair ``(rank key, output tuple)`` — the same comparator its internal
priority queues use — and rank keys are pure functions of the output
values (weights are per-attribute value weights).  Two consequences
carry the whole parallel design:

1. a heap merge of per-shard streams keyed on ``(key, values)``
   reproduces the *global* serial order exactly, ties included;
2. duplicate outputs (one answer derivable in several shards when the
   partition variable is projected away) have *equal* keys, so they
   surface adjacently in the merged stream and a one-answer memory
   de-duplicates them — the same argument
   :class:`~repro.core.ucq.UnionRankedEnumerator` uses across union
   branches.

The merge runs on the existing :class:`~repro.core.heap.RankHeap`, so
priority-queue operation counts stay observable through
:class:`~repro.core.heap.HeapStats` like everywhere else.

Examples
--------
>>> from repro.core.answers import RankedAnswer
>>> evens = [RankedAnswer((v,), v, key=v) for v in (0, 2, 4)]
>>> odds = [RankedAnswer((v,), v, key=v) for v in (1, 3)]
>>> [a.values for a in merge_ranked_streams([iter(evens), iter(odds)])]
[(0,), (1,), (2,), (3,), (4,)]
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..core.answers import RankedAnswer
from ..core.heap import HeapStats, RankHeap
from ..errors import ReproError

__all__ = ["merge_ranked_streams"]

_NOTHING = object()


def _merge_key(answer: RankedAnswer) -> tuple:
    if answer.key is None:
        raise ReproError(
            "cannot merge a ranked stream whose answers carry no rank key; "
            "every repro enumerator sets RankedAnswer.key"
        )
    return (answer.key, answer.values)


def merge_ranked_streams(
    streams: Iterable[Iterator[RankedAnswer]],
    *,
    dedup: bool = True,
    heap_stats: HeapStats | None = None,
) -> Iterator[RankedAnswer]:
    """Merge ranked streams into one globally ranked stream.

    Parameters
    ----------
    streams:
        Iterators of :class:`RankedAnswer`, each individually sorted by
        ``(key, values)`` ascending — which every
        :class:`~repro.core.base.RankedEnumeratorBase` subclass
        guarantees.  Keys must be mutually comparable, i.e. produced by
        the same bound ranking (true for shards of one query).
    dedup:
        Suppress adjacent equal outputs (cross-shard duplicates).  Keep
        the default unless streams are known disjoint.
    heap_stats:
        Optional shared :class:`HeapStats` to count merge heap
        operations alongside the enumerators' own.

    The merge is lazy: answers are pulled from shard streams only as
    the consumer advances, so ``top_k``-style consumption reads at most
    ``k + shards`` answers per shard.
    """
    heap: RankHeap[tuple[RankedAnswer, Iterator[RankedAnswer]]] = RankHeap(heap_stats)
    for stream in streams:
        stream = iter(stream)
        first = next(stream, None)
        if first is not None:
            heap.push(_merge_key(first), (first, stream))

    last_values = _NOTHING
    while heap:
        answer, stream = heap.pop()
        nxt = next(stream, None)
        if nxt is not None:
            heap.push(_merge_key(nxt), (nxt, stream))
        if dedup and answer.values == last_values:
            continue
        last_values = answer.values
        yield answer
