"""Sharded ranked enumeration: partition, fan out, merge.

This is the orchestration layer the session engine and the CLI call
into.  One parallel execution is::

    partition_query()  ->  one ShardJob per shard  ->  backend fan-out
                       ->  merge_ranked_streams()  ->  ranked answers

The result is *semantically identical* to serial
:func:`repro.enumerate_ranked` — same answers, same scores, same order,
ties included — because shard streams are slices of the global ranked
order and the merge is order-preserving and de-duplicating (see
:mod:`repro.parallel.merge` for the argument).

Examples
--------
>>> from repro.data import Database
>>> from repro.query import parse_query
>>> from repro.core.planner import enumerate_ranked
>>> db = Database()
>>> _ = db.add_relation("R", ("a", "p"), [(1, 10), (2, 10), (3, 99), (4, 99)])
>>> q = parse_query("Q(a1, a2) :- R(a1, p), R(a2, p)")
>>> serial = [(a.values, a.score) for a in enumerate_ranked(q, db)]
>>> parallel = [
...     (a.values, a.score)
...     for a in execute_sharded(q, db, shards=3, backend="serial")
... ]
>>> parallel == serial
True
"""

from __future__ import annotations

from itertools import islice
from typing import Any, Iterator

from ..core.answers import RankedAnswer
from ..core.planner import plan_query
from ..core.ranking import RankingFunction
from ..data.database import Database
from ..data.partition import QueryPartition, partition_query
from ..query.query import JoinProjectQuery, UnionQuery
from .backends import DEFAULT_CHUNK_SIZE, ShardJob, open_shard_streams
from .merge import merge_ranked_streams

__all__ = ["stream_sharded", "execute_sharded"]


def _shard_jobs(
    partition: QueryPartition,
    ranking: RankingFunction | None,
    *,
    method: str,
    epsilon: float | None,
    delta: int | None,
    limit: int | None,
    kwargs: dict[str, Any],
    plan=None,
) -> list[ShardJob]:
    # The rewritten query is shard-independent, so its plan is too:
    # classify / build the join tree or GHD exactly once and let every
    # worker just instantiate it against its shard database.  The
    # engine's parallel plan cache passes a ready plan in; one-shot
    # callers plan here, once per execution.
    if plan is None:
        plan = plan_query(
            partition.query,
            ranking,
            method=method,
            epsilon=epsilon,
            delta=delta,
            **kwargs,
        )
    return [
        ShardJob(
            partition.query,
            shard_db,
            ranking,
            method=method,
            epsilon=epsilon,
            delta=delta,
            kwargs=kwargs,
            limit=limit,
            plan=plan,
        )
        for shard_db in partition.databases
    ]


def stream_sharded(
    query: JoinProjectQuery | UnionQuery,
    db: Database,
    ranking: RankingFunction | None = None,
    *,
    shards: int,
    backend: str = "processes",
    k: int | None = None,
    attribute: str | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    method: str = "auto",
    epsilon: float | None = None,
    delta: int | None = None,
    partition: QueryPartition | None = None,
    plan=None,
    **kwargs: Any,
) -> Iterator[RankedAnswer]:
    """Lazily enumerate ``query`` over ``shards`` hash shards.

    Same contract as iterating a serial enumerator: answers arrive in
    global rank order, without duplicates, capped at ``k`` when given.
    ``partition`` short-circuits re-partitioning when the caller (the
    engine's partition cache, the benchmarks) already holds one for
    this query/database/shard-count combination; ``plan`` likewise
    short-circuits planning with a prepared plan of the *rewritten*
    query (:func:`repro.data.partition.rewrite_for_sharding`).

    Worker resources are released when the generator is exhausted or
    closed, so ``islice``-style partial consumption is safe.
    """
    if partition is None:
        partition = partition_query(query, db, shards, attribute=attribute)
    jobs = _shard_jobs(
        partition,
        ranking,
        method=method,
        epsilon=epsilon,
        delta=delta,
        limit=k,
        kwargs=kwargs,
        plan=plan,
    )
    from ..storage.persist import snapshot_shard_refs

    refs = snapshot_shard_refs(db, partition)
    if refs is not None:
        # Every shard database derives from one on-disk snapshot: tag
        # each job with a by-reference shard spec so the process backend
        # ships (snapshot_path, shard_spec) and workers memory-map the
        # same files instead of unpickling shard rows.  Serial/threads
        # backends ignore the tag (``db`` stays attached in-process).
        for job, ref in zip(jobs, refs):
            job.snapshot_ref = ref
    streams = open_shard_streams(jobs, backend=backend, chunk_size=chunk_size)

    def generate() -> Iterator[RankedAnswer]:
        with streams:
            merged = merge_ranked_streams(streams.streams)
            if k is not None:
                merged = islice(merged, k)
            yield from merged

    return generate()


def execute_sharded(
    query: JoinProjectQuery | UnionQuery,
    db: Database,
    ranking: RankingFunction | None = None,
    *,
    shards: int,
    backend: str = "processes",
    k: int | None = None,
    **options: Any,
) -> list[RankedAnswer]:
    """Sharded ``SELECT DISTINCT .. ORDER BY .. LIMIT k`` (eager).

    The list form of :func:`stream_sharded`; see there for options.
    """
    return list(
        stream_sharded(
            query, db, ranking, shards=shards, backend=backend, k=k, **options
        )
    )
