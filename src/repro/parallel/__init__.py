"""Parallel execution subsystem: sharded ranked enumeration.

Splits a query's data into hash shards (:mod:`repro.data.partition`),
enumerates every shard independently on a pluggable backend
(:mod:`repro.parallel.backends` — ``serial`` / ``threads`` /
``processes``), and recombines the ranked shard streams with an
order-preserving k-way merge (:mod:`repro.parallel.merge`) so results
are identical to serial :func:`repro.enumerate_ranked`.

Most callers should go through the session layer —
:meth:`repro.engine.QueryEngine.execute_parallel` and
:meth:`repro.engine.QueryEngine.execute_many` — which add plan caching
and observability on top of the raw fan-out here.
"""

from .backends import (
    BACKENDS,
    DEFAULT_CHUNK_SIZE,
    ShardJob,
    ShardStreams,
    open_shard_streams,
    run_many,
)
from .executor import execute_sharded, stream_sharded
from .merge import merge_ranked_streams

__all__ = [
    "BACKENDS",
    "DEFAULT_CHUNK_SIZE",
    "ShardJob",
    "ShardStreams",
    "open_shard_streams",
    "run_many",
    "execute_sharded",
    "stream_sharded",
    "merge_ranked_streams",
]
