"""Column-major tuple storage.

A :class:`ColumnStore` keeps one Python list per column plus a mutation
*version* counter.  Consumers that want row tuples get them from a
lazily built, cached row view (``zip(*columns)`` is a single C-level
pass); consumers that want a column — projections, dictionary encoding,
partition hashing — read it directly without touching the other
columns.  The version counter is what every derived structure
(:class:`repro.storage.paths.AccessPathCache`, the engine's encoded
image of the database) validates against, so views that *share* a store
(``Relation.renamed``) invalidate together.
"""

from __future__ import annotations

import weakref
from typing import Any, Iterable, Iterator, Sequence

from . import kernels
from .deltas import DeltaLog, StoreDelta

__all__ = ["ColumnStore"]

Row = tuple
Value = Any

#: Sentinel: the codes matrix has not been derived for this version yet
#: (``None`` is a valid, cached "not representable" answer).
_UNBUILT = object()


class ColumnStore:
    """Tuples of a fixed arity, stored column-major.

    Examples
    --------
    >>> store = ColumnStore.from_rows(2, [(1, "x"), (2, "y")])
    >>> len(store), store.column(1)
    (2, ['x', 'y'])
    >>> store.rows()
    [(1, 'x'), (2, 'y')]
    >>> store.append((3, "z"))
    >>> store.version, store.row(2)
    (1, (3, 'z'))
    """

    __slots__ = (
        "arity",
        "columns",
        "version",
        "delta_log",
        "_listeners",
        "_rows",
        "_row_set",
        "_codes_arr",
    )

    def __init__(self, arity: int):
        if arity < 1:
            raise ValueError(f"a column store needs arity >= 1, got {arity}")
        self.arity = arity
        #: One value list per column; same length each.
        self.columns: list[list[Value]] = [[] for _ in range(arity)]
        #: Bumped on every mutation; derived structures validate on it.
        self.version = 0
        #: Bounded delta history (:mod:`repro.storage.deltas`): consumers
        #: that remember a version replay the gap instead of rebuilding.
        self.delta_log = DeltaLog()
        #: Weakrefs to relations sharing this store: every mutation —
        #: through whichever view — notifies all of them, so generation
        #: counters stay coherent across ``Relation.renamed`` replicas.
        self._listeners: list = []
        self._rows: list[Row] | None = None
        self._row_set: set[Row] | None = None
        self._codes_arr: Any = _UNBUILT

    @classmethod
    def from_rows(cls, arity: int, rows: Iterable[Sequence[Value]]) -> "ColumnStore":
        """Build a store from row-major input (one transposing pass)."""
        store = cls(arity)
        materialised = [tuple(r) for r in rows]
        if materialised:
            store.columns = [list(col) for col in zip(*materialised)]
            store._rows = materialised
        return store

    @classmethod
    def from_columns(cls, columns: Sequence[Sequence[Value]]) -> "ColumnStore":
        """Adopt pre-built column lists (no copy validation beyond length)."""
        store = cls(len(columns))
        cols = [list(c) for c in columns]
        n = len(cols[0])
        if any(len(c) != n for c in cols):
            raise ValueError("columns must all have the same length")
        store.columns = cols
        return store

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.columns[0])

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows())

    def rows(self) -> list[Row]:
        """The row-major view, materialised lazily and cached per version."""
        if self._rows is None:
            self._rows = list(zip(*self.columns)) if self.columns[0] else []
        return self._rows

    def row(self, i: int) -> Row:
        """One row by position."""
        return self.rows()[i]

    def column(self, position: int) -> list[Value]:
        """Direct (mutable — treat as read-only) access to one column."""
        return self.columns[position]

    def project(self, positions: Sequence[int]) -> list[Row]:
        """Row tuples over a subset of columns, in store order.

        A zero-column projection yields one empty tuple per row (the
        all-constants atom case).
        """
        if not positions:
            return [()] * len(self)
        if len(positions) == 1:
            return [(v,) for v in self.columns[positions[0]]]
        return list(zip(*(self.columns[i] for i in positions)))

    def codes_array(self):
        """The store as one ``(n, arity)`` ``int64`` matrix, or ``None``.

        Built once per version when every column is exactly
        integer-valued (dense dictionary codes, or plain-int data) and
        cached like the row view; ``None`` — also cached — whenever any
        column holds floats, bools, strings or over-wide integers.
        This is the raw-column surface of the kernel layer
        (:mod:`repro.storage.kernels`); consumers outside the storage
        package reach it only through access-path/relation wrappers
        (``tools/check_layering.py`` enforces that).
        """
        if not kernels.HAS_NUMPY:
            return None
        cached = self._codes_arr
        if cached is _UNBUILT:
            cols = []
            for column in self.columns:
                arr = kernels.column_array(column)
                if arr is None:
                    cols = None
                    break
                cols.append(arr)
            cached = (
                None if cols is None else kernels.np.stack(cols, axis=1)
            )
            self._codes_arr = cached
        return cached

    def contains(self, row: Row) -> bool:
        """Multiset membership (hash set built lazily, cached per version)."""
        if len(self) <= 64:
            return row in self.rows()
        if self._row_set is None:
            self._row_set = set(self.rows())
        return row in self._row_set

    # ------------------------------------------------------------------ #
    # mutation (every write is delta-logged)
    # ------------------------------------------------------------------ #
    def append(self, row: Sequence[Value]) -> None:
        """Append one row (arity validated by the caller)."""
        self.append_rows((row,))

    def extend(self, rows: Iterable[Sequence[Value]]) -> None:
        """Append many rows (one delta, one version bump)."""
        self.append_rows(rows)

    def append_rows(self, rows: Iterable[Sequence[Value]]) -> StoreDelta | None:
        """Append rows, emitting one append :class:`StoreDelta`.

        Returns the delta (``None`` for an empty input).  Existing row
        indices are untouched; the cached row view and codes matrix are
        *extended* rather than dropped — appends leave every derived
        structure one cheap delta-apply away from fresh, which is the
        contract :class:`~repro.storage.paths.AccessPathCache`, the
        encoded image and the engine's warm reduced instances build on.
        """
        materialised = [tuple(r) for r in rows]
        if not materialised:
            return None
        base_rows = len(self)
        for i, col in enumerate(self.columns):
            col.extend(r[i] for r in materialised)
        self.version += 1
        # Extend (never mutate in place) the caches consumers may hold:
        # an old reference keeps seeing the pre-append snapshot.
        if self._rows is not None:
            self._rows = self._rows + materialised
        self._row_set = None
        cached = self._codes_arr
        if cached is not _UNBUILT and cached is not None:
            tail = self._codes_for(materialised)
            self._codes_arr = (
                kernels.np.concatenate([cached, tail]) if tail is not None else None
            )
        delta = StoreDelta(
            self.version,
            base_rows,
            append_count=len(materialised),
            appended=materialised,
        )
        self.delta_log.record(delta)
        self._notify(delta)
        return delta

    def delete_rows(self, indices: Sequence[int]) -> StoreDelta | None:
        """Delete the rows at the given positions, emitting a delete delta.

        Columns are physically compacted — the post-delete store is
        bit-identical to a cold build from the surviving rows, in their
        original relative order — and the delta carries both the removed
        positions and the removed row tuples so index-keeping consumers
        can remap instead of rebuilding.
        """
        removed = sorted(set(indices))
        if not removed:
            return None
        n = len(self)
        if removed[0] < 0 or removed[-1] >= n:
            raise IndexError(f"delete positions {removed!r} out of range for {n} rows")
        removed_rows = tuple(self.rows()[i] for i in removed)
        drop = set(removed)
        base_rows = n
        self.columns = [
            [v for i, v in enumerate(col) if i not in drop] for col in self.columns
        ]
        self.version += 1
        self._rows = None
        self._row_set = None
        self._codes_arr = _UNBUILT
        delta = StoreDelta(
            self.version, base_rows, removed=removed, removed_rows=removed_rows
        )
        self.delta_log.record(delta)
        self._notify(delta)
        return delta

    def deltas_since(self, version: int) -> list[StoreDelta] | None:
        """The deltas between ``version`` and now, or ``None`` (rebuild)."""
        return self.delta_log.since(version)

    def _codes_for(self, rows: list[Row]):
        """The ``(len(rows), arity)`` int64 matrix of a row batch, or ``None``."""
        if not kernels.HAS_NUMPY:
            return None
        cols = []
        for i in range(self.arity):
            arr = kernels.column_array([r[i] for r in rows])
            if arr is None:
                return None
            cols.append(arr)
        return kernels.np.stack(cols, axis=1)

    def register_listener(self, relation) -> None:
        """Register a relation for mutation callbacks (weakly held)."""
        live = []
        for ref in self._listeners:
            existing = ref()
            if existing is None or existing is relation:
                continue
            live.append(ref)
        live.append(weakref.ref(relation))
        self._listeners = live

    def _notify(self, delta: StoreDelta | None) -> None:
        if not self._listeners:
            return
        live = []
        for ref in self._listeners:
            relation = ref()
            if relation is not None:
                live.append(ref)
                relation._store_mutated(delta)
        self._listeners = live

    def _touch(self) -> None:
        """Version bump for a mutation no delta describes (cut history)."""
        self.version += 1
        self._rows = None
        self._row_set = None
        self._codes_arr = _UNBUILT
        self.delta_log.barrier(self.version)
        self._notify(None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ColumnStore(arity={self.arity}, n={len(self)}, v={self.version})"

    # ------------------------------------------------------------------ #
    # pickling (caches are rebuilt lazily on the other side)
    # ------------------------------------------------------------------ #
    def __getstate__(self):
        return (self.arity, self.columns, self.version)

    def __setstate__(self, state) -> None:
        self.arity, self.columns, self.version = state
        self.delta_log = DeltaLog(self.version)
        self._listeners = []
        self._rows = None
        self._row_set = None
        self._codes_arr = _UNBUILT
