"""Access paths: the read interface over a :class:`ColumnStore`.

An *access path* is one physical way to read a relation's tuples:

* :class:`ScanPath` — sequential row access, with cached
  select/project views (what :func:`repro.algorithms.yannakakis.atom_instances`
  binds query atoms through);
* :class:`HashIndexPath` — equi-lookup buckets on a column set (what
  used to live in the relation's private per-position index cache);
* :class:`SortedViewPath` — sorted distinct values of one column with
  binary-search successor queries (what used to live in the relation's
  private sorted-column cache).

Paths are built and memoised by an :class:`AccessPathCache`, which
validates every lookup against the store's version counter: any
mutation — including one made through *another* relation sharing the
same store (``Relation.renamed``) — transparently drops the derived
structures.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, Iterator, Sequence

from . import kernels, scores
from .columnstore import ColumnStore

__all__ = [
    "AccessPath",
    "ScanPath",
    "HashIndexPath",
    "SortedViewPath",
    "AccessPathCache",
]

Row = tuple
Value = Any

#: Cache key of one select/project view: (variable positions,
#: selection pairs, distinct flag).
ScanKey = tuple[tuple[int, ...], tuple[tuple[int, Value], ...], bool]


def _evict_oldest(cache: dict) -> None:
    """Drop the oldest cache entry, tolerating concurrent evictions.

    Engines sharing one database may race here (two threads both pick
    the same victim, or the dict resizes mid-iteration); losing the
    race must cost nothing — the caches only memoise.
    """
    try:
        cache.pop(next(iter(cache)), None)
    except (StopIteration, RuntimeError):
        pass


class AccessPath:
    """Base class: one physical way of reading a store's tuples."""

    __slots__ = ("store",)

    kind = "abstract"

    def __init__(self, store: ColumnStore):
        self.store = store

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={len(self.store)})"


class ScanPath(AccessPath):
    """Sequential scan with cached select/project views.

    Examples
    --------
    >>> from repro.storage import ColumnStore
    >>> scan = ScanPath(ColumnStore.from_rows(2, [(1, 5), (2, 5), (1, 5)]))
    >>> scan.rows()
    [(1, 5), (2, 5), (1, 5)]
    >>> scan.view((0,), (), True)        # project col 0, distinct
    [(1,), (2,)]
    >>> scan.view((0,), ((1, 5),), False)  # select col1=5, project col 0
    [(1,), (2,), (1,)]
    """

    __slots__ = ("_views", "_code_views", "_score_cols", "_int_cols")

    kind = "scan"

    #: Bound on memoised select/project views.  Projection-only views are
    #: keyed by query structure (a handful per relation), but selection
    #: views are keyed by *constants* — a parameterised query stream
    #: would otherwise retain one materialised row list per distinct
    #: constant forever.  Oldest-first eviction keeps the hot structural
    #: views resident in practice (they are created first).
    MAX_VIEWS = 128

    def __init__(self, store: ColumnStore):
        super().__init__(store)
        self._views: dict[ScanKey, list[Row]] = {}
        self._code_views: dict[ScanKey, Any] = {}
        # Score views, keyed (view signature, view column, attribute,
        # id(weight fn)); each entry retains the weight object so a
        # recycled id can never serve a stale column.
        self._score_cols: dict[tuple, tuple[Any, Any]] = {}
        # Per store column: is every value exactly ``int`` (no bool /
        # IntEnum)?  The weight function must receive the same value
        # the scalar path passes it, so anything exotic refuses.
        self._int_cols: dict[int, bool] = {}

    def rows(self) -> list[Row]:
        """All rows in store order (shared cached list — do not mutate)."""
        return self.store.rows()

    def column(self, position: int) -> list[Value]:
        """One column in store order (shared list — do not mutate)."""
        return self.store.column(position)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.store.rows())

    def __len__(self) -> int:
        return len(self.store)

    def view(
        self,
        positions: Sequence[int],
        selections: Sequence[tuple[int, Value]] = (),
        distinct: bool = False,
    ) -> list[Row]:
        """A select/project view, cached per signature.

        ``positions`` are the output columns (in order); ``selections``
        are ``(column, required value)`` equality filters.  The returned
        list is the cache entry itself — callers must not mutate it
        (rebind, filter into fresh lists, but never ``append``).
        """
        key: ScanKey = (tuple(positions), tuple(selections), bool(distinct))
        view = self._views.get(key)
        if view is None:
            if len(self._views) >= self.MAX_VIEWS:
                _evict_oldest(self._views)
            view = self._build_view(*key)
            self._views[key] = view
        return view

    def _build_view(
        self,
        positions: tuple[int, ...],
        selections: tuple[tuple[int, Value], ...],
        distinct: bool,
    ) -> list[Row]:
        store = self.store
        if not selections and len(positions) == store.arity and positions == tuple(
            range(store.arity)
        ):
            rows = store.rows()
        elif not selections:
            rows = store.project(positions)
        else:
            keep = [True] * len(store)
            for col_pos, required in selections:
                col = store.column(col_pos)
                keep = [k and v == required for k, v in zip(keep, col)]
            base = store.rows()
            rows = [
                tuple(r[i] for i in positions) for r, k in zip(base, keep) if k
            ]
        if distinct:
            seen: set[Row] = set()
            out: list[Row] = []
            for r in rows:
                if r not in seen:
                    seen.add(r)
                    out.append(r)
            rows = out
        return rows

    def codes_view(
        self,
        positions: Sequence[int],
        selections: Sequence[tuple[int, Value]] = (),
        distinct: bool = False,
    ):
        """The ``int64`` code matrix aligned row-for-row with :meth:`view`.

        Cached per signature like the row views; ``None`` whenever the
        kernel layer cannot represent the view exactly (NumPy absent,
        non-integer values, a selection constant that is not a real
        number, or a distinct key too wide to pack).  Consumers treat
        ``None`` as "iterate the Python rows".
        """
        if not kernels.enabled():
            return None
        key: ScanKey = (tuple(positions), tuple(selections), bool(distinct))
        if key in self._code_views:
            return self._code_views[key]
        if len(self._code_views) >= self.MAX_VIEWS:
            _evict_oldest(self._code_views)
        mat = self._build_codes_view(*key)
        self._code_views[key] = mat
        return mat

    def _build_codes_view(
        self,
        positions: tuple[int, ...],
        selections: tuple[tuple[int, Value], ...],
        distinct: bool,
    ):
        np = kernels.np
        base = self.store.codes_array()
        if base is None:
            return None
        if selections:
            for _col_pos, required in selections:
                # bool is int; anything non-numeric compares elementwise
                # differently (or not at all) under NumPy — refuse.
                if not isinstance(required, (int, float)):
                    return None
            mask = np.ones(len(base), dtype=bool)
            try:
                for col_pos, required in selections:
                    mask &= base[:, col_pos] == required
            except (TypeError, OverflowError):  # e.g. beyond-int64 constants
                return None
            base = base[mask]
        if positions:
            mat = base[:, list(positions)]
        else:
            mat = np.empty((len(base), 0), dtype=np.int64)
        if distinct:
            first = kernels.distinct_indices(mat)
            if first is None:
                return None
            mat = mat[first]
        return mat

    def scores_view(
        self,
        positions: Sequence[int],
        selections: Sequence[tuple[int, Value]] = (),
        distinct: bool = False,
        *,
        index: int,
        attr: str,
        weight,
    ):
        """Weights of one view column as a :class:`~repro.storage.scores.ScoreView`.

        Aligned row-for-row with :meth:`view` / :meth:`codes_view`:
        entry ``i`` is ``weight(attr, view_row[i][index])``, evaluated
        once per distinct value and gathered back (see
        :mod:`repro.storage.scores`).  Cached per (view signature,
        column, attribute, weight function) like the other views —
        weights are materialised once per store version and reused by
        every execution until the next mutation.  ``None`` whenever the
        batched path cannot reproduce the scalar one exactly (NumPy
        absent, non-``int`` values, non-real weights).
        """
        if not scores.enabled():
            return None
        key = (
            (tuple(positions), tuple(selections), bool(distinct)),
            index,
            attr,
            id(weight),
        )
        cached = self._score_cols.get(key)
        if cached is not None and cached[0] is weight:
            return cached[1]
        if len(self._score_cols) >= self.MAX_VIEWS:
            _evict_oldest(self._score_cols)
        view = self._build_scores_view(key[0], index, attr, weight)
        self._score_cols[key] = (weight, view)
        return view

    def _build_scores_view(self, view_key: ScanKey, index: int, attr: str, weight):
        codes = self.codes_view(*view_key)
        if codes is None:
            return None
        if not self._column_exactly_int(view_key[0][index]):
            scores.counters.record_fallback()
            return None
        return scores.build_score_view(codes[:, index], attr, weight)

    def _column_exactly_int(self, store_position: int) -> bool:
        known = self._int_cols.get(store_position)
        if known is None:
            column = self.store.column(store_position)
            known = all(type(v) is int for v in column)
            self._int_cols[store_position] = known
        return known

    # ------------------------------------------------------------------ #
    # delta maintenance
    # ------------------------------------------------------------------ #
    def apply_delta(self, delta) -> bool:
        """Bring the cached views up to date with one store delta.

        Pure projection views (no selections, not distinct) are
        *re-sliced*: appended store rows extend the row list, code
        matrix and score arrays; deleted rows are dropped at their
        mapped positions.  Views with selections or dedup state are
        evicted and rebuilt lazily — their delta mapping needs
        occurrence bookkeeping the cache does not keep.  Every rebind is
        copy-on-write: consumers holding a previously returned list or
        array keep their snapshot.

        Returns ``False`` when the path cannot represent the delta (the
        cache then drops the whole scan path, the pre-delta behaviour).
        """
        store = self.store
        if delta.is_append:
            new_rows = store.rows()[delta.base_rows :]
            for key in list(self._views):
                positions, selections, distinct = key
                if selections or distinct:
                    self._views.pop(key, None)
                    continue
                self._views[key] = self._views[key] + [
                    tuple(r[i] for i in positions) for r in new_rows
                ]
            self._extend_code_views(delta)
            for pos, known in list(self._int_cols.items()):
                if known:
                    self._int_cols[pos] = all(type(r[pos]) is int for r in new_rows)
            self._extend_score_views(delta, new_rows)
            return True
        # Delete: positions of a pure projection map 1:1 onto store rows.
        removed = set(delta.removed)
        for key in list(self._views):
            positions, selections, distinct = key
            if selections or distinct:
                self._views.pop(key, None)
                continue
            view = self._views[key]
            self._views[key] = [r for i, r in enumerate(view) if i not in removed]
        np = kernels.np if kernels.HAS_NUMPY else None
        removed_arr = np.asarray(delta.removed, dtype=np.int64) if np else None
        for key in list(self._code_views):
            positions, selections, distinct = key
            mat = self._code_views[key]
            if selections or distinct or mat is None or np is None:
                self._code_views.pop(key, None)
                continue
            self._code_views[key] = np.delete(mat, removed_arr, axis=0)
        for skey in list(self._score_cols):
            view_key = skey[0]
            positions, selections, distinct = view_key
            weight, view = self._score_cols[skey]
            if selections or distinct or view is None or np is None:
                self._score_cols.pop(skey, None)
                continue
            scores_arr = np.delete(view.scores, removed_arr)
            missing = (
                None
                if view.missing is None
                else np.delete(view.missing, removed_arr)
            )
            self._score_cols[skey] = (weight, scores.ScoreView(scores_arr, missing))
        # A deletion can only remove values: exactly-int stays exactly-int
        # (False entries stay conservatively False).
        return True

    def _extend_code_views(self, delta) -> None:
        matrix = self.store.codes_array()
        np = kernels.np if kernels.HAS_NUMPY else None
        for key in list(self._code_views):
            positions, selections, distinct = key
            cached = self._code_views[key]
            if selections or distinct:
                self._code_views.pop(key, None)
                continue
            if cached is None:
                continue  # "not representable" stays a valid cached answer
            if matrix is None or np is None:
                self._code_views.pop(key, None)
                continue
            tail = matrix[delta.base_rows :]
            if positions:
                tail = tail[:, list(positions)]
            else:
                tail = np.empty((len(tail), 0), dtype=np.int64)
            self._code_views[key] = np.concatenate([cached, tail])

    def _extend_score_views(self, delta, new_rows) -> None:
        np = kernels.np if kernels.HAS_NUMPY else None
        for skey in list(self._score_cols):
            view_key, index, attr, _weight_id = skey
            positions, selections, distinct = view_key
            weight, view = self._score_cols[skey]
            if selections or distinct:
                self._score_cols.pop(skey, None)
                continue
            if view is None:
                # "refused" stays refused only if the reason still holds;
                # re-deriving is lazy either way.
                self._score_cols.pop(skey, None)
                continue
            if np is None or not self._column_exactly_int(positions[index]):
                self._score_cols.pop(skey, None)
                continue
            codes = self.codes_view(*view_key)
            if codes is None:
                self._score_cols.pop(skey, None)
                continue
            tail = scores.build_score_view(codes[len(view) :, index], attr, weight)
            if tail is None:
                self._score_cols.pop(skey, None)
                continue
            merged_scores = np.concatenate([view.scores, tail.scores])
            if view.missing is None and tail.missing is None:
                merged_missing = None
            else:
                left = (
                    view.missing
                    if view.missing is not None
                    else np.zeros(len(view.scores), dtype=bool)
                )
                right = (
                    tail.missing
                    if tail.missing is not None
                    else np.zeros(len(tail.scores), dtype=bool)
                )
                merged_missing = np.concatenate([left, right])
            self._score_cols[skey] = (
                weight,
                scores.ScoreView(merged_scores, merged_missing),
            )


class HashIndexPath(AccessPath):
    """Hash buckets ``key tuple -> [rows...]`` on a column set.

    An empty position tuple produces a single bucket keyed ``()``
    holding every row (anchorless join-tree roots).
    """

    __slots__ = ("key_positions", "buckets")

    kind = "hash"

    def __init__(self, store: ColumnStore, key_positions: Sequence[int]):
        super().__init__(store)
        self.key_positions = tuple(key_positions)
        rows = store.rows()
        # Large integer-coded stores group through the kernel layer: one
        # stable argsort instead of a per-row dict probe, with bucket
        # contents and insertion order identical to the dict build.
        if (
            self.key_positions
            and len(rows) >= kernels.min_rows()
            and kernels.enabled()
        ):
            matrix = store.codes_array()
            if matrix is not None:
                grouped = kernels.hash_group(matrix, self.key_positions, rows)
                if grouped is not None:
                    self.buckets = grouped
                    return
        buckets: dict[tuple, list[Row]] = {}
        if not self.key_positions:
            buckets[()] = list(rows)
        elif len(self.key_positions) == 1:
            col = store.column(self.key_positions[0])
            for value, row in zip(col, rows):
                bucket = buckets.get((value,))
                if bucket is None:
                    buckets[(value,)] = [row]
                else:
                    bucket.append(row)
        else:
            keys = zip(*(store.column(i) for i in self.key_positions))
            for key, row in zip(keys, rows):
                bucket = buckets.get(key)
                if bucket is None:
                    buckets[key] = [row]
                else:
                    bucket.append(row)
        self.buckets = buckets

    def lookup(self, key: tuple) -> list[Row]:
        """Rows matching the key (empty list if none)."""
        return self.buckets.get(key, [])

    def apply_delta(self, delta) -> bool:
        """Per-bucket maintenance: appends extend, deletes filter.

        The ``buckets`` dict and every touched bucket list are rebuilt
        copy-on-write — a consumer holding the pre-delta dict (e.g. from
        ``Relation.index``) keeps its snapshot, exactly as it would have
        kept the whole pre-mutation path object before.  Bucket contents
        and ordering stay identical to a cold rebuild: appended rows
        land at bucket tails (they are the store's newest rows), deleted
        rows leave their buckets, and a bucket emptied by deletion loses
        its key (``contains`` must agree with the cold build).
        """
        key_of = self._key_of
        buckets = dict(self.buckets)
        if delta.is_append:
            rows = self.store.rows()
            fresh: dict[tuple, list[Row]] = {}
            for row in rows[delta.base_rows :]:
                fresh.setdefault(key_of(row), []).append(row)
            for key, tail in fresh.items():
                existing = buckets.get(key)
                buckets[key] = tail if existing is None else existing + tail
            self.buckets = buckets
            return True
        doomed: dict[tuple, list[Row]] = {}
        for row in delta.removed_rows:
            doomed.setdefault(key_of(row), []).append(row)
        for key, gone in doomed.items():
            bucket = buckets.get(key)
            if bucket is None:
                return False  # drifted: rebuild from scratch
            remaining = list(bucket)
            for row in gone:
                try:
                    remaining.remove(row)
                except ValueError:
                    return False
            if remaining:
                buckets[key] = remaining
            else:
                del buckets[key]
        self.buckets = buckets
        return True

    def _key_of(self, row: Row) -> tuple:
        positions = self.key_positions
        if not positions:
            return ()
        if len(positions) == 1:
            return (row[positions[0]],)
        return tuple(row[i] for i in positions)

    def contains(self, key: tuple) -> bool:
        """True when at least one row matches."""
        return key in self.buckets

    def keys(self) -> Iterable[tuple]:
        """All distinct key tuples."""
        return self.buckets.keys()

    def __len__(self) -> int:
        """Number of distinct keys."""
        return len(self.buckets)


class SortedViewPath(AccessPath):
    """Sorted distinct values of one column with successor queries."""

    __slots__ = ("position", "values")

    kind = "sorted"

    def __init__(self, store: ColumnStore, position: int):
        super().__init__(store)
        self.position = position
        self.values: list[Value] = sorted(set(store.column(position)))

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Value]:
        return iter(self.values)

    def min(self):
        """Smallest value, or ``None`` when empty."""
        return self.values[0] if self.values else None

    def max(self):
        """Largest value, or ``None`` when empty."""
        return self.values[-1] if self.values else None

    def successor(self, value):
        """The smallest stored value strictly greater than ``value``."""
        i = bisect.bisect_right(self.values, value)
        return self.values[i] if i < len(self.values) else None

    def predecessor(self, value):
        """The largest stored value strictly smaller than ``value``."""
        i = bisect.bisect_left(self.values, value)
        return self.values[i - 1] if i > 0 else None

    def rank(self, value) -> int:
        """Number of stored values ``<= value``."""
        return bisect.bisect_right(self.values, value)


class AccessPathCache:
    """Per-relation memo of access paths, validated by store version.

    One cache serves one :class:`~repro.data.relation.Relation`; paths
    are keyed by kind + parameters.  When the underlying store's version
    moves (mutations through *any* relation sharing the store), the
    cache first asks the store's delta log for the exact gap and lets
    each path consume the deltas in place — appends extend, deletes
    filter; only when the history is not covered (or a path refuses a
    delta) does it fall back to dropping the derived structures
    wholesale, the pre-delta behaviour.
    """

    __slots__ = ("store", "_version", "_scan", "_hash", "_sorted")

    def __init__(self, store: ColumnStore):
        self.store = store
        self._version = store.version
        self._scan: ScanPath | None = None
        self._hash: dict[tuple[int, ...], HashIndexPath] = {}
        self._sorted: dict[int, SortedViewPath] = {}

    def _validate(self) -> None:
        if self._version == self.store.version:
            return
        deltas = self.store.deltas_since(self._version)
        self._version = self.store.version
        if deltas is None:
            # History not covered (compaction, barrier, version drift):
            # the pre-delta wholesale invalidation, always correct.
            self._scan = None
            self._hash.clear()
            self._sorted.clear()
            return
        for delta in deltas:
            if self._scan is not None and not self._scan.apply_delta(delta):
                self._scan = None
            for key in list(self._hash):
                if not self._hash[key].apply_delta(delta):
                    del self._hash[key]
        # Sorted views stay cheap to rebuild lazily; incremental
        # maintenance would need per-value occurrence counts.
        if deltas:
            self._sorted.clear()

    def rebind(self, store: ColumnStore) -> None:
        """Point the cache at a different store (pickle restore)."""
        self.store = store
        self._version = store.version
        self._scan = None
        self._hash.clear()
        self._sorted.clear()

    def scan(self) -> ScanPath:
        """The (single) scan path."""
        self._validate()
        if self._scan is None:
            self._scan = ScanPath(self.store)
        return self._scan

    def hash_index(self, key_positions: Sequence[int]) -> HashIndexPath:
        """The hash path on a column-position tuple."""
        self._validate()
        key = tuple(key_positions)
        path = self._hash.get(key)
        if path is None:
            path = self._hash[key] = HashIndexPath(self.store, key)
        return path

    def sorted_view(self, position: int) -> SortedViewPath:
        """The sorted path on one column position."""
        self._validate()
        path = self._sorted.get(position)
        if path is None:
            path = self._sorted[position] = SortedViewPath(self.store, position)
        return path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AccessPathCache(v={self._version}, hash={len(self._hash)}, "
            f"sorted={len(self._sorted)})"
        )
