"""Physical storage layer: columnar stores, access paths, encoding.

This package is the only place in the library that owns *physical*
tuple storage.  The logical surface (:class:`repro.data.relation.Relation`)
delegates here, and everything above the data layer — the enumerators
in :mod:`repro.core`, the algorithm family in :mod:`repro.algorithms`,
the engine and the parallel subsystem — reaches tuples exclusively
through the :class:`AccessPath` interface (enforced by
``tools/check_layering.py`` in CI).

Three ideas live here:

* :class:`ColumnStore` — tuples held column-major with a mutation
  version counter; row views are materialised lazily and cached.
* :class:`AccessPath` and its implementations (:class:`ScanPath`,
  :class:`HashIndexPath`, :class:`SortedViewPath`), cached per store by
  :class:`AccessPathCache` and invalidated by the store version.  These
  subsume the ad-hoc per-relation hash-index / sorted-column caches the
  data layer used to keep.
* dictionary encoding (:class:`Dictionary`, :class:`EncodedDatabase`) —
  an order-preserving mapping of every database value to a dense
  integer code.  The engine executes queries over the encoded image of
  the database (joins, semi-joins, partitioning and heap tie-breaks all
  compare small ints) and decodes only at ``RankedAnswer`` emission, so
  scores, ties and order are identical to plain execution.
"""

from . import kernels, scores
from .columnstore import ColumnStore
from .dictionary import Dictionary
from .paths import (
    AccessPath,
    AccessPathCache,
    HashIndexPath,
    ScanPath,
    SortedViewPath,
)
from .persist import (
    SnapshotError,
    open_database,
    open_snapshot,
    save_snapshot,
    snapshot_handle,
)

# The encoding layer depends on repro.core (rankings, answers), which in
# turn imports the data layer that this package underpins; load it
# lazily (PEP 562) so ``repro.data.relation`` can import the storage
# primitives without a cycle.  The journal rides the same hook simply to
# keep the durability machinery off the cold-import path.
_ENCODED_EXPORTS = ("DecodingEnumerator", "EncodedDatabase", "wrap_ranking")
_JOURNAL_EXPORTS = ("DurableDatabase", "JournalError", "journal_path", "open_durable")


def __getattr__(name: str):
    if name in _ENCODED_EXPORTS:
        from . import encoded

        return getattr(encoded, name)
    if name in _JOURNAL_EXPORTS:
        from . import journal

        return getattr(journal, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AccessPath",
    "AccessPathCache",
    "ColumnStore",
    "DecodingEnumerator",
    "Dictionary",
    "DurableDatabase",
    "EncodedDatabase",
    "HashIndexPath",
    "JournalError",
    "ScanPath",
    "SnapshotError",
    "SortedViewPath",
    "journal_path",
    "kernels",
    "open_database",
    "open_durable",
    "open_snapshot",
    "save_snapshot",
    "scores",
    "snapshot_handle",
    "wrap_ranking",
]
