"""Order-preserving dictionary encoding of database values.

One :class:`Dictionary` spans a whole database: every distinct value in
any column of any relation receives one dense integer code.  A single
global code space is what makes *encoded equality = value equality
across relations* — the property every hash join, semi-join, shard
assignment and duplicate check relies on — without per-query
translation tables.

Codes are assigned **order-preserving within type groups**: all numeric
values (``int``/``float``/``bool`` — Python compares and hashes these as
one equivalence family) come first in ascending order, then strings,
then bytes, then any remaining types grouped by type name.  Whenever a
comparison between two plain values is well defined, the same comparison
between their codes agrees — which is exactly the contract the ranked
enumerators need for heap tie-breaking, ``LEX`` keys and sorted-domain
walks to be identical under encoding.  (Comparisons across groups, e.g.
``3 < "a"``, raise ``TypeError`` on plain values; codes give them *some*
stable order instead, so encoded execution only differs where plain
execution would crash.)

The code for a value **missing** from the dictionary is the sentinel
:data:`MISSING` (−1), which equals no real code: a query constant that
appears nowhere in the database selects nothing, exactly like the plain
path.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = ["Dictionary", "MISSING"]

#: Sentinel code for values absent from the dictionary (matches nothing).
MISSING = -1


def _group_key(value: Any):
    """Sort key grouping values into mutually comparable families."""
    if isinstance(value, (bool, int, float)):
        return (0, "")
    if isinstance(value, str):
        return (1, "")
    if isinstance(value, bytes):
        return (2, "")
    return (3, type(value).__name__)


class Dictionary:
    """A dense, order-preserving value ⇄ code mapping.

    Examples
    --------
    >>> d = Dictionary.build([["b", 10, "a"], [7, 10]])
    >>> [d.decode(c) for c in range(len(d))]
    [7, 10, 'a', 'b']
    >>> d.encode("a"), d.encode(10), d.encode("zzz")
    (2, 1, -1)
    >>> d.encode_row(("b", 7))
    (3, 0)
    """

    __slots__ = ("values", "_codes")

    def __init__(self, values: list[Any]):
        #: ``code -> value`` (list index is the code).
        self.values = values
        self._codes: dict[Any, int] | None = None

    @classmethod
    def build(cls, value_lists: Iterable[Iterable[Any]]) -> "Dictionary":
        """Build from any iterable of value iterables (e.g. columns).

        Values equal across numeric types (``1 == 1.0 == True``) collapse
        to one code; the first-seen representative is what ``decode``
        returns.
        """
        distinct: dict[Any, None] = {}
        for values in value_lists:
            for v in values:
                if v not in distinct:
                    distinct[v] = None
        groups: dict[tuple, list] = {}
        for v in distinct:
            groups.setdefault(_group_key(v), []).append(v)
        ordered: list[Any] = []
        for gk in sorted(groups):
            members = groups[gk]
            try:
                members.sort()
            except TypeError:
                # Exotic same-named types that do not compare: fall back
                # to a stable repr order (plain execution could not have
                # compared them either).
                members.sort(key=repr)
            ordered.extend(members)
        return cls(ordered)

    # ------------------------------------------------------------------ #
    # mappings
    # ------------------------------------------------------------------ #
    @property
    def codes(self) -> dict[Any, int]:
        """``value -> code``, built lazily (decode-only users skip it)."""
        if self._codes is None:
            self._codes = {v: i for i, v in enumerate(self.values)}
        return self._codes

    def __len__(self) -> int:
        return len(self.values)

    def encode(self, value: Any) -> int:
        """Code of one value (:data:`MISSING` when absent)."""
        return self.codes.get(value, MISSING)

    def decode(self, code: int):
        """Value of one code."""
        return self.values[code]

    def encode_row(self, row: tuple) -> tuple:
        """Encode every component of a row tuple."""
        codes = self.codes
        return tuple(codes.get(v, MISSING) for v in row)

    def decode_row(self, row: tuple) -> tuple:
        """Decode every component of a row tuple."""
        values = self.values
        return tuple(values[c] for c in row)

    def encode_column(self, column: list[Any]) -> list[int]:
        """Encode one column list (all values must be present)."""
        codes = self.codes
        return [codes[v] for v in column]

    def covers(self, value_lists: Iterable[Iterable[Any]]) -> bool:
        """True when every value in the input already has a code."""
        codes = self.codes
        for values in value_lists:
            for v in values:
                if v not in codes:
                    return False
        return True

    # ------------------------------------------------------------------ #
    # incremental code assignment
    # ------------------------------------------------------------------ #
    def extend_with(self, values: Iterable[Any]) -> int:
        """Assign fresh codes to never-seen values, appending at the end.

        No existing code moves — every structure keyed on this
        dictionary's codes (encoded stores, score columns, warm reduced
        instances) stays valid.  What appending *cannot* preserve is the
        global code-order ≅ value-order isomorphism the encoded LEX keys
        and tie-breaking rely on; callers that need it use
        :meth:`extend_if_ordered` instead and rebuild on refusal.

        Returns the number of codes added.
        """
        codes = self.codes
        added = 0
        for v in values:
            if v not in codes:
                codes[v] = len(self.values)
                self.values.append(v)
                added += 1
        return added

    def extend_if_ordered(self, values: Iterable[Any]) -> bool:
        """Append codes for new values *only* when order is preserved.

        The append keeps code order ≅ value order exactly when every new
        value sorts strictly after every existing value (and after the
        other new values already appended): the new codes land at the
        end of the code space, where the order isomorphism says they
        belong.  Typical append workloads — monotonically increasing
        keys, log-style identifiers — qualify; anything else returns
        ``False`` with the dictionary *unmodified*, and the caller
        rebuilds (the pre-incremental behaviour).
        """
        codes = self.codes
        fresh: list[Any] = []
        seen: dict[Any, None] = {}
        last = self.values[-1] if self.values else None
        for v in values:
            if v in codes or v in seen:
                continue
            if last is not None:
                gk_last, gk_new = _group_key(last), _group_key(v)
                if gk_new < gk_last:
                    return False
                if gk_new == gk_last:
                    try:
                        if not (last < v):
                            return False
                    except TypeError:
                        return False
            seen[v] = None
            fresh.append(v)
            last = v
        for v in fresh:
            codes[v] = len(self.values)
            self.values.append(v)
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dictionary(n={len(self.values)})"

    # ------------------------------------------------------------------ #
    # pickling: ship the value list only; codes rebuild on demand
    # ------------------------------------------------------------------ #
    def __getstate__(self):
        return self.values

    def __setstate__(self, state) -> None:
        self.values = state
        self._codes = None
