"""Versioned on-disk snapshots: memory-mapped warm starts.

A snapshot is a directory holding the *physical* state PRs 3–5 build in
RAM on every cold start — dictionary-encoded code matrices, the
order-preserving :class:`~repro.storage.dictionary.Dictionary`, and a
per-code score column — as raw little-endian arrays plus one JSON
manifest:

``manifest.json``
    Format tag + version, byte order, dtypes, the database ``generation``
    / ``delta_generation`` watermark at save time, and one entry per
    relation (name, attrs, row count, store version, array file).
``dictionary.json``
    The dictionary's value list, in code order.
``rel_<i>.codes.mmap``
    One ``(rows, arity)`` C-order ``<i8`` code matrix per relation.
``identity.scores.mmap``
    One ``<f8`` per dictionary code: ``float(value)`` for numeric values,
    NaN otherwise — the persisted identity score column.

Reopening maps the arrays with ``numpy.memmap`` (read-only, lazily
paged, zero-copy): a :class:`MappedColumnStore` serves the existing
:class:`~repro.storage.columnstore.ColumnStore` surface — and therefore
every ``AccessPath`` built on it — directly off the mapped pages.  The
files themselves are **immutable**: the first mutation through any view
copy-on-write *detaches* the store (columns materialise into ordinary
RAM lists, the mapping is dropped) and proceeds exactly like a plain
store, with the :class:`~repro.storage.deltas.DeltaLog` carrying the
post-open writes for incremental consumers.

Everything is exact-or-refuse, matching the kernel layer's discipline:
an unknown manifest version, foreign byte order, truncated array file or
unrepresentable value refuses with a clear :class:`SnapshotError` rather
than guessing; a NumPy-free interpreter reopens snapshots as eager
plain-list stores (bit-identical answers, no mapping) and refuses only
``save``.

The on-disk format is a storage-layer contract: consumers use the
public functions here (``tools/check_layering.py`` rule 5 keeps the
file-format spellings inside ``repro/storage/``).
"""

from __future__ import annotations

import json
import math
import os
import sys
import threading
import weakref
from typing import Any, Sequence

from ..errors import ReproError
from ..testing.faultinject import fault_point
from . import kernels
from .columnstore import _UNBUILT, ColumnStore
from .deltas import DeltaLog
from .dictionary import Dictionary

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "MappedColumnStore",
    "MappedDictionary",
    "Snapshot",
    "SnapshotError",
    "SnapshotShardRef",
    "open_database",
    "open_snapshot",
    "save_snapshot",
    "snapshot_handle",
    "snapshot_shard_refs",
]

#: Manifest ``format`` tag — anything else is not ours.
SNAPSHOT_FORMAT = "repro-snapshot"
#: Manifest ``version`` this build reads and writes.  Unknown versions
#: refuse on open (exact-or-refuse: no forward-compat guessing).
SNAPSHOT_VERSION = 1

MANIFEST_FILE = "manifest.json"
DICTIONARY_FILE = "dictionary.json"
SCORES_FILE = "identity.scores.mmap"

_CODE_DTYPE = "<i8"
_SCORE_DTYPE = "<f8"
_ITEM_BYTES = 8

#: Exact types a snapshot can round-trip through the JSON dictionary.
#: Subclasses (IntEnum, numpy scalars, ...) are refused: ``json`` would
#: silently flatten them to their base type and reopen would not be
#: bit-identical.
_JSON_SAFE = (bool, int, float, str)


class SnapshotError(ReproError):
    """A snapshot could not be written or reopened exactly."""


# ---------------------------------------------------------------------- #
# mapped stores
# ---------------------------------------------------------------------- #
class _LazyColumns(list):
    """Per-column lazy materialisation over a mapped matrix.

    Behaves as the ``store.columns`` list of plain Python lists the rest
    of the storage layer expects, but each column is pulled out of the
    mapped matrix (and decoded, for value-level stores) only on first
    access — a scan of one column pages in one column.
    """

    def __init__(self, store: "MappedColumnStore"):
        super().__init__([None] * store.arity)
        self._store = store

    def __getitem__(self, index):
        cached = list.__getitem__(self, index)
        if cached is None:
            cached = self._store._materialise_column(index)
            list.__setitem__(self, index, cached)
        return cached

    def __iter__(self):
        for i in range(len(self)):
            yield self[i]


class MappedColumnStore(ColumnStore):
    """A read-only :class:`ColumnStore` view over a mapped code matrix.

    Two kinds exist, both over the same file:

    * ``kind="codes"`` serves the integer codes themselves (the encoded
      image of the database) — the matrix doubles as the store's
      ``codes_array`` with zero copies;
    * ``kind="base"`` decodes through the snapshot dictionary on access,
      serving original values.

    Reads never copy the matrix (columns and row views materialise into
    Python objects only when a consumer actually iterates them); the
    first *mutation* copy-on-write detaches the store from the mapping —
    the snapshot files are immutable — after which it behaves exactly
    like a plain store, including delta logging of the new writes.  The
    detach changes only the representation, never ``version``: derived
    structures keyed on the version stay warm across it.
    """

    __slots__ = ("_matrix", "_decode_values", "_mapped", "_source", "_on_detach")

    def __init__(
        self,
        arity: int,
        matrix,
        *,
        decode_values: Sequence[Any] | None = None,
        source: tuple | None = None,
        on_detach=None,
        version: int = 0,
    ):
        super().__init__(arity)
        self._matrix = matrix
        self._decode_values = decode_values
        self._mapped = True
        #: ``(directory, relation name, kind)`` — lets pickling ship a
        #: path reference so a worker remaps the same file.
        self._source = source
        self._on_detach = on_detach
        self.version = version
        self.delta_log = DeltaLog(version)
        self.columns = _LazyColumns(self)
        if decode_values is None:
            # Code-level store: the mapped matrix *is* the codes matrix.
            self._codes_arr = matrix

    # -- reading off the map ------------------------------------------- #
    def __len__(self) -> int:
        if self._mapped:
            return int(self._matrix.shape[0])
        return super().__len__()

    def rows(self):
        if not self._mapped:
            return super().rows()
        if self._rows is None:
            data = self._matrix.tolist()
            values = self._decode_values
            if values is None:
                self._rows = [tuple(r) for r in data]
            else:
                self._rows = [tuple(values[c] for c in r) for r in data]
        return self._rows

    def _materialise_column(self, index: int) -> list:
        codes = self._matrix[:, index].tolist()
        values = self._decode_values
        if values is None:
            return codes
        return [values[c] for c in codes]

    # -- mutation: copy-on-write detach -------------------------------- #
    def _detach(self) -> None:
        """Materialise into RAM and drop the mapping (first write only).

        The snapshot files are never written through to; ``version`` is
        *not* bumped — the logical contents are unchanged, only the
        representation moved, so warm derived state stays valid and the
        delta log keeps describing exactly the post-open writes.
        """
        if not self._mapped:
            return
        matrix = self._matrix
        plain = [list(self.columns[i]) for i in range(self.arity)]
        self._mapped = False
        self._matrix = None
        self.columns = plain
        if self._codes_arr is matrix:
            self._codes_arr = kernels.np.array(matrix, dtype=kernels.np.int64)
        callback = self._on_detach
        if callback is not None:
            callback()

    def append_rows(self, rows):
        self._detach()
        return super().append_rows(rows)

    def delete_rows(self, indices):
        self._detach()
        return super().delete_rows(indices)

    def _touch(self) -> None:
        self._detach()
        super()._touch()

    # -- pickling: ship the path, not the pages ------------------------ #
    def __reduce__(self):
        if self._mapped and self._source is not None:
            directory, name, kind = self._source
            return (_reopen_store, (directory, name, kind))
        columns = [list(self.columns[i]) for i in range(self.arity)]
        return (_rebuild_plain_store, (self.arity, columns, self.version))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "mapped" if self._mapped else "detached"
        return (
            f"MappedColumnStore(arity={self.arity}, n={len(self)}, "
            f"v={self.version}, {state})"
        )


class MappedDictionary(Dictionary):
    """A snapshot-backed dictionary that pickles as a path reference.

    Process-backend workers receive ``(directory,)`` and reload the
    value list from the snapshot's ``dictionary.json`` (shared per
    process) instead of shipping tens of thousands of values through the
    pickle stream.  An extended dictionary (incremental appends after
    open) no longer matches the file and ships its values instead.
    """

    __slots__ = ("_directory", "_entries")

    def __init__(self, values: list, directory: str):
        super().__init__(values)
        self._directory = directory
        self._entries = len(values)

    def __reduce__(self):
        if len(self.values) == self._entries:
            return (_load_dictionary, (self._directory,))
        return (Dictionary, (list(self.values),))


def _reopen_store(directory: str, name: str, kind: str) -> ColumnStore:
    """Unpickle hook: remap a store from its snapshot (cached per process)."""
    return _open_cached(directory).store(name, kind)


def _rebuild_plain_store(arity: int, columns: list, version: int) -> ColumnStore:
    """Unpickle hook: a detached mapped store arrives as a plain store."""
    store = ColumnStore(arity)
    store.__setstate__((arity, columns, version))
    return store


def _load_dictionary(directory: str) -> Dictionary:
    """Unpickle hook: reload a snapshot dictionary (cached per process)."""
    return _open_cached(directory).dictionary()


# ---------------------------------------------------------------------- #
# saving
# ---------------------------------------------------------------------- #
def save_snapshot(db, path: str | os.PathLike, *, checkpoint_token=None) -> str:
    """Persist a database as a snapshot directory; returns the path.

    Refuses (:class:`SnapshotError`) without NumPy — the array files are
    written through it — and for any value the JSON dictionary cannot
    round-trip exactly: only plain ``bool``/``int``/``float``/``str``
    and ``None``, finite floats only, exact types (no subclasses).

    The manifest is written last, atomically and *durably*: every data
    file is fsync'd before the manifest names it, the manifest replace
    is fsync'd, and the directory entry itself is fsync'd — a crash (or
    power loss) at any point leaves either the previous snapshot or the
    new one, never a half-written hybrid.

    ``checkpoint_token`` stamps the manifest with the journal-binding
    token (see :mod:`~repro.storage.journal`); a fresh token is minted
    when none is given, which deliberately invalidates any journal left
    beside an overwritten snapshot — its deltas were relative to the
    old incarnation.  Re-saving over an existing snapshot writes the
    data files under token-tagged names, so the old incarnation's files
    (possibly still mapped by live readers) are never truncated in
    place; they are superseded atomically by the manifest replace.
    """
    if not kernels.HAS_NUMPY:
        raise SnapshotError(
            "snapshot save requires NumPy to write the array files; "
            "this interpreter has none (reopening existing snapshots "
            "still works, via the eager fallback)"
        )
    np = kernels.np
    for rel in db:
        for position, column in enumerate(rel._store.columns):
            for value in column:
                if value is not None and type(value) not in _JSON_SAFE:
                    raise SnapshotError(
                        f"cannot snapshot {rel.name}.{rel.attrs[position]}: "
                        f"value {value!r} of type {type(value).__name__} "
                        "does not round-trip exactly through the JSON "
                        "dictionary (exact-or-refuse)"
                    )
                if isinstance(value, float) and not math.isfinite(value):
                    raise SnapshotError(
                        f"cannot snapshot {rel.name}.{rel.attrs[position]}: "
                        f"non-finite float {value!r} has no exact JSON form"
                    )
    dictionary = Dictionary.build(
        column for rel in db for column in rel._store.columns
    )
    path = os.fspath(path)
    os.makedirs(path, exist_ok=True)
    if checkpoint_token is None:
        import secrets

        checkpoint_token = secrets.token_hex(8)
    # Fresh directories get the plain historical names; a re-save over an
    # existing snapshot tags the files with the new token so the previous
    # incarnation's arrays (still mapped by live handles, still the valid
    # snapshot if this save crashes) are never overwritten in place.
    tag = (
        f".{checkpoint_token[:8]}"
        if os.path.isfile(os.path.join(path, MANIFEST_FILE))
        else ""
    )
    relations = []
    for index, rel in enumerate(db):
        store = rel._store
        n, arity = len(store), store.arity
        matrix = np.empty((n, arity), dtype=_CODE_DTYPE)
        for j, column in enumerate(store.columns):
            matrix[:, j] = dictionary.encode_column(list(column))
        file_name = f"rel_{index:03d}{tag}.codes.mmap"
        _write_bytes(os.path.join(path, file_name), matrix.tobytes())
        relations.append(
            {
                "name": rel.name,
                "attrs": list(rel.attrs),
                "rows": n,
                "arity": arity,
                "codes_file": file_name,
                "bytes": n * arity * _ITEM_BYTES,
                "store_version": store.version,
            }
        )
    values = dictionary.values
    scores = np.empty(len(values), dtype=_SCORE_DTYPE)
    for code, value in enumerate(values):
        if isinstance(value, (bool, int, float)):
            try:
                scores[code] = float(value)
            except OverflowError:
                scores[code] = float("nan")
        else:
            scores[code] = float("nan")
    scores_file = f"identity{tag}.scores.mmap" if tag else SCORES_FILE
    dictionary_file = f"dictionary{tag}.json" if tag else DICTIONARY_FILE
    _write_bytes(os.path.join(path, scores_file), scores.tobytes())
    _write_json(
        os.path.join(path, dictionary_file), {"values": values}, allow_nan=False
    )
    manifest = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "endianness": "little",
        "dtype": _CODE_DTYPE,
        "score_dtype": _SCORE_DTYPE,
        "generation": db.generation,
        "delta_generation": db.delta_generation,
        "checkpoint": checkpoint_token,
        "dictionary": {"file": dictionary_file, "entries": len(values)},
        "scores": {
            "file": scores_file,
            "entries": len(values),
            "bytes": len(values) * _ITEM_BYTES,
        },
        "relations": relations,
    }
    _write_json(os.path.join(path, MANIFEST_FILE), manifest, indent=2)
    _fsync_dir(path)
    return path


def _write_bytes(target: str, data: bytes) -> None:
    """Write one data file and fsync it before anything names it."""
    with open(target, "wb") as fh:
        fh.write(data)
        fh.flush()
        fault_point("persist.fsync")
        os.fsync(fh.fileno())


def _write_json(target: str, payload, **dump_kwargs) -> None:
    tmp = target + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, **dump_kwargs)
        fh.flush()
        fault_point("persist.fsync")
        os.fsync(fh.fileno())
    os.replace(tmp, target)


def _fsync_dir(path: str) -> None:
    """Durably commit a directory's entries (rename targets included).

    Platforms without directory fds (Windows) silently skip — the
    rename itself is still atomic there, just not power-loss durable.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


# ---------------------------------------------------------------------- #
# opening
# ---------------------------------------------------------------------- #
def open_snapshot(path: str | os.PathLike) -> "Snapshot":
    """Validate and open a snapshot directory (no arrays touched yet).

    Every structural problem — missing/corrupt manifest, unknown format
    or version, foreign byte order, truncated array files — refuses here
    with a clear :class:`SnapshotError`; a handle that opens serves
    exactly the saved database.
    """
    path = os.fspath(path)
    manifest_path = os.path.join(path, MANIFEST_FILE)
    if not os.path.isfile(manifest_path):
        raise SnapshotError(
            f"{path!r} is not a snapshot directory: no {MANIFEST_FILE} "
            "(an interrupted save never writes one)"
        )
    try:
        with open(manifest_path, encoding="utf-8") as fh:
            manifest = json.load(fh)
    except (OSError, ValueError) as exc:
        raise SnapshotError(
            f"corrupted snapshot manifest {manifest_path!r}: {exc}"
        ) from None
    if not isinstance(manifest, dict) or manifest.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"{manifest_path!r} is not a {SNAPSHOT_FORMAT} manifest"
        )
    version = manifest.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"unknown snapshot version {version!r} (this build reads "
            f"version {SNAPSHOT_VERSION}); refusing rather than guessing "
            "at the layout"
        )
    if manifest.get("endianness") != "little" or manifest.get("dtype") != _CODE_DTYPE:
        raise SnapshotError(
            "snapshot byte order/dtype "
            f"({manifest.get('endianness')!r}, {manifest.get('dtype')!r}) "
            f"is not the little-endian {_CODE_DTYPE} this build reads; "
            "refusing rather than byte-guessing"
        )
    try:
        dict_entry = manifest["dictionary"]
        relations = manifest["relations"]
        names = set()
        for entry in relations:
            name, arity, rows = entry["name"], entry["arity"], entry["rows"]
            if arity < 1 or rows < 0 or len(entry["attrs"]) != arity:
                raise SnapshotError(
                    f"corrupted snapshot manifest: relation {name!r} has "
                    f"inconsistent shape ({rows} rows, arity {arity}, "
                    f"{len(entry['attrs'])} attrs)"
                )
            if name in names:
                raise SnapshotError(
                    f"corrupted snapshot manifest: duplicate relation {name!r}"
                )
            names.add(name)
            _check_file(path, entry["codes_file"], rows * arity * _ITEM_BYTES)
        _check_file(
            path,
            manifest["scores"]["file"],
            manifest["scores"]["entries"] * _ITEM_BYTES,
        )
        if not os.path.isfile(os.path.join(path, dict_entry["file"])):
            raise SnapshotError(
                f"truncated snapshot: dictionary file {dict_entry['file']!r} "
                "is missing"
            )
    except (KeyError, TypeError) as exc:
        raise SnapshotError(
            f"corrupted snapshot manifest {manifest_path!r}: "
            f"missing or malformed field ({exc!r})"
        ) from None
    return Snapshot(path, manifest)


def _check_file(directory: str, file_name: str, expected_bytes: int) -> None:
    target = os.path.join(directory, file_name)
    if not os.path.isfile(target):
        raise SnapshotError(
            f"truncated snapshot: array file {file_name!r} is missing"
        )
    actual = os.path.getsize(target)
    if actual != expected_bytes:
        raise SnapshotError(
            f"truncated snapshot: {file_name!r} holds {actual} bytes, "
            f"manifest expects {expected_bytes}"
        )


class Snapshot:
    """An open snapshot directory: mapped stores, dictionary, watermark.

    One handle per :func:`open_snapshot` call; stores are cached per
    ``(relation, kind)`` so every view of a relation shares one mapping.
    ``cow_detaches`` counts copy-on-write detaches across all stores —
    surfaced as ``EngineStats.snapshot_cow_detaches``.
    """

    def __init__(self, directory: str, manifest: dict):
        self.directory = directory
        self.manifest = manifest
        self.cow_detaches = 0
        #: Data records :func:`open_database` replayed from the journal
        #: (:mod:`~repro.storage.journal`) — surfaced as
        #: ``EngineStats.journal_records_replayed``.
        self.journal_replayed = 0
        self._entries = {e["name"]: e for e in manifest["relations"]}
        self._stores: dict[tuple[str, str], ColumnStore] = {}
        self._dictionary: Dictionary | None = None
        self._scores = None

    # -- manifest accessors -------------------------------------------- #
    @property
    def generation(self) -> int:
        """Database generation at save time (the snapshot watermark)."""
        return self.manifest["generation"]

    @property
    def delta_generation(self) -> int:
        """Delta-expressible share of :attr:`generation` at save time."""
        return self.manifest["delta_generation"]

    def names(self) -> list[str]:
        return [e["name"] for e in self.manifest["relations"]]

    def _relation_entry(self, name: str) -> dict:
        try:
            return self._entries[name]
        except KeyError:
            raise SnapshotError(
                f"snapshot {self.directory!r} has no relation {name!r}"
            ) from None

    def _count_detach(self) -> None:
        self.cow_detaches += 1

    # -- the persisted pieces ------------------------------------------ #
    def dictionary(self) -> Dictionary:
        """The snapshot's dictionary (loaded once, shared)."""
        if self._dictionary is None:
            entry = self.manifest["dictionary"]
            target = os.path.join(self.directory, entry["file"])
            try:
                with open(target, encoding="utf-8") as fh:
                    values = json.load(fh)["values"]
            except (OSError, ValueError, KeyError, TypeError) as exc:
                raise SnapshotError(
                    f"corrupted snapshot dictionary {target!r}: {exc!r}"
                ) from None
            if not isinstance(values, list) or len(values) != entry["entries"]:
                raise SnapshotError(
                    f"truncated snapshot dictionary {target!r}: "
                    f"manifest expects {entry['entries']} entries"
                )
            self._dictionary = MappedDictionary(values, self.directory)
        return self._dictionary

    def identity_scores(self):
        """The per-code ``float64`` score column (mapped; eager fallback).

        ``scores[code]`` is ``float(value)`` for numeric dictionary
        values and NaN otherwise — the persisted identity weight
        materialisation.
        """
        if self._scores is None:
            entry = self.manifest["scores"]
            target = os.path.join(self.directory, entry["file"])
            n = entry["entries"]
            if kernels.HAS_NUMPY:
                np = kernels.np
                self._scores = (
                    np.memmap(target, dtype=_SCORE_DTYPE, mode="r", shape=(n,))
                    if n
                    else np.empty(0, dtype=_SCORE_DTYPE)
                )
            else:
                import array

                buf = array.array("d")
                with open(target, "rb") as fh:
                    buf.frombytes(fh.read())
                if sys.byteorder != "little":
                    buf.byteswap()
                self._scores = list(buf)
        return self._scores

    def _load_matrix(self, entry: dict):
        """The mapped ``(rows, arity)`` code matrix of one relation."""
        np = kernels.np
        rows, arity = entry["rows"], entry["arity"]
        if rows == 0:
            return np.empty((0, arity), dtype=_CODE_DTYPE)
        target = os.path.join(self.directory, entry["codes_file"])
        return np.memmap(target, dtype=_CODE_DTYPE, mode="r", shape=(rows, arity))

    def _eager_columns(self, entry: dict) -> list[list[int]]:
        """No-NumPy fallback: the code columns as plain lists."""
        import array

        if array.array("q").itemsize != _ITEM_BYTES:
            raise SnapshotError(
                "cannot reopen snapshot without NumPy on a platform whose "
                "'q' arrays are not 8 bytes (exact-or-refuse)"
            )
        arity = entry["arity"]
        buf = array.array("q")
        target = os.path.join(self.directory, entry["codes_file"])
        with open(target, "rb") as fh:
            buf.frombytes(fh.read())
        if sys.byteorder != "little":
            buf.byteswap()
        return [list(buf[j::arity]) for j in range(arity)]

    def store(self, name: str, kind: str = "base") -> ColumnStore:
        """The (cached) store of one relation.

        ``kind="base"`` serves original values (decoded through the
        dictionary); ``kind="codes"`` serves the integer codes — the
        encoded image's store.  With NumPy both are zero-copy mapped
        views; without it, eager plain stores (bit-identical, unmapped).
        """
        key = (name, kind)
        cached = self._stores.get(key)
        if cached is not None:
            return cached
        entry = self._relation_entry(name)
        decode_values = None if kind == "codes" else self.dictionary().values
        if kernels.HAS_NUMPY:
            store: ColumnStore = MappedColumnStore(
                entry["arity"],
                self._load_matrix(entry),
                decode_values=decode_values,
                source=(self.directory, name, kind),
                on_detach=self._count_detach,
                version=entry["store_version"],
            )
        else:
            columns = self._eager_columns(entry)
            if decode_values is not None:
                columns = [[decode_values[c] for c in col] for col in columns]
            store = ColumnStore.from_columns(columns)
            store.version = entry["store_version"]
            store.delta_log = DeltaLog(entry["store_version"])
        self._stores[key] = store
        return store

    # -- assembled objects --------------------------------------------- #
    def relation(self, name: str, kind: str = "base"):
        """A fresh :class:`Relation` over the (shared) mapped store."""
        from ..data.relation import Relation

        entry = self._relation_entry(name)
        return Relation._from_store(name, tuple(entry["attrs"]), self.store(name, kind))

    def database(self):
        """The saved database, every relation backed by this snapshot."""
        from ..data.database import Database

        db = Database()
        for entry in self.manifest["relations"]:
            db.add(self.relation(entry["name"], "base"))
        return db

    def encoded_database(self, base_db):
        """A pre-seeded encoded image of ``base_db`` (opened from here).

        The dictionary and every encoded relation come straight off the
        snapshot files — no :meth:`Dictionary.build`, no re-encode pass —
        which is the warm-start win the engine cashes in.  ``base_db``
        must be this snapshot's :meth:`database`; writes made since the
        open are reconciled on the image's first ``refresh()`` exactly
        like on a cold-built one (delta replay of appends/deletes, full
        rebuild when the gap is not replayable), because the image's
        generation watermark is deliberately left unset.
        """
        from ..data.database import Database
        from ..storage.encoded import EncodedDatabase

        encoded = EncodedDatabase(base_db)
        encoded.dictionary = self.dictionary()
        encoded.epoch += 1
        encoded_db = Database()
        for entry in self.manifest["relations"]:
            name = entry["name"]
            rel = base_db[name]
            encoded_rel = self.relation(name, "codes")
            encoded_db.add(encoded_rel)
            # The recorded watermark is the *encoded* store's version:
            # code and base stores open at the manifest's store_version
            # and advance in lockstep thereafter (every base delta is
            # replayed as exactly one encoded mutation), so this is the
            # base version the encoded relation currently reflects —
            # refresh() replays precisely the missing suffix, whether
            # the image is built right after the open or much later.
            encoded._relations[name] = (
                rel,
                rel.generation,
                encoded_rel,
                rel._store,
                encoded_rel._store.version,
            )
        encoded.database = encoded_db
        return encoded


# ---------------------------------------------------------------------- #
# database-level entry points
# ---------------------------------------------------------------------- #
#: ``database -> snapshot`` for databases built by :func:`open_database`;
#: weakly keyed, so closing the last reference drops the mapping.
_SNAPSHOTS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

#: Per-process reopen cache backing the pickle hooks: every shard job a
#: worker receives remaps the *same* pages instead of reopening.
_OPEN_CACHE: dict[str, Snapshot] = {}
_OPEN_LOCK = threading.Lock()


def _open_cached(directory: str) -> Snapshot:
    key = os.path.abspath(directory)
    with _OPEN_LOCK:
        snapshot = _OPEN_CACHE.get(key)
        if snapshot is None:
            snapshot = _OPEN_CACHE[key] = open_snapshot(directory)
        return snapshot


def open_database(path: str | os.PathLike):
    """Reopen a snapshot as a :class:`~repro.data.database.Database`.

    The inverse of :meth:`Database.save`: relations serve the saved
    rows straight off the mapped files (eager lists without NumPy),
    answers are bit-identical to the database that was saved, and the
    handle is remembered so :class:`~repro.engine.QueryEngine` can skip
    the encode pass entirely.

    When a write-ahead journal (:mod:`~repro.storage.journal`) sits
    beside the snapshot, its acknowledged records are replayed over the
    mapped database — a kill -9 after an acknowledged write loses
    nothing.  Replay here is read-only (nothing on disk changes);
    :func:`~repro.storage.journal.open_durable` is the writable handle.
    """
    snapshot = open_snapshot(path)
    db = snapshot.database()
    _SNAPSHOTS[db] = snapshot
    if os.path.exists(os.path.join(snapshot.directory, "journal.wal")):
        from .journal import replay_journal

        snapshot.journal_replayed = replay_journal(snapshot, db)
    return db


def snapshot_handle(db) -> Snapshot | None:
    """The :class:`Snapshot` behind ``db``, if :func:`open_database` built it."""
    try:
        return _SNAPSHOTS.get(db)
    except TypeError:  # unhashable/foreign objects: not ours
        return None


# ---------------------------------------------------------------------- #
# zero-copy process shards
# ---------------------------------------------------------------------- #
class SnapshotShardRef:
    """``(snapshot path, shard spec)``: a shard database by reference.

    What the process backend ships *instead of* a pickled shard
    database: the worker remaps the snapshot files (shared per process)
    and rebuilds its shard — replicated relations as views over the
    mapped store, partitioned relations by re-running the deterministic
    shard assignment and keeping its own bucket.
    """

    __slots__ = ("directory", "index", "shards", "plan")

    def __init__(self, directory: str, index: int, shards: int, plan: tuple):
        self.directory = directory
        self.index = index
        self.shards = shards
        #: ``(shard-local name, source relation, kind, partition column
        #: or None)`` per atom of the rewritten query.
        self.plan = plan

    def build_database(self):
        from ..data.database import Database
        from ..data.partition import _partition_rows
        from ..data.relation import Relation

        snapshot = _open_cached(self.directory)
        db = Database()
        buckets: dict[tuple, list] = {}  # self-joins share one bucket
        for new_name, source, kind, column in self.plan:
            entry = snapshot._relation_entry(source)
            attrs = tuple(entry["attrs"])
            store = snapshot.store(source, kind)
            if column is None:
                db.add(Relation._from_store(new_name, attrs, store))
                continue
            key = (source, kind, column)
            columns = buckets.get(key)
            if columns is None:
                columns = buckets[key] = self._bucket_columns(store, attrs, column)
            if columns is not None:
                shard_store = ColumnStore.from_columns(columns)
                db.add(Relation._from_store(new_name, attrs, shard_store))
            else:
                rel = Relation._from_store(source, attrs, store)
                rows = _partition_rows(rel, column, self.shards)[self.index]
                db.add(Relation(new_name, attrs, rows))
        return db

    def _bucket_columns(self, store, attrs: tuple, column):
        """This shard's bucket of a codes-kind mapped store, as column
        lists, vectorised.

        Integer shard keys bucket as ``value % shards`` (the scalar
        ``_stable_hash`` maps ints to themselves and
        :func:`repro.storage.kernels.shard_ids` matches it), so one
        boolean mask selects exactly this shard's rows — no decoding,
        no materialising the other buckets.  Only exact for codes-kind
        stores, whose scan values *are* the matrix ints; base-kind
        relations hash decoded values and take the generic path
        (returns ``None``).
        """
        if not (kernels.HAS_NUMPY and isinstance(store, MappedColumnStore)):
            return None
        if not store._mapped or store._decode_values is not None:
            return None
        matrix = store._matrix
        col = column if isinstance(column, int) else attrs.index(column)
        bucket = matrix[(matrix[:, col] % self.shards) == self.index]
        return [bucket[:, j].tolist() for j in range(bucket.shape[1])]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SnapshotShardRef({self.directory!r}, shard {self.index}/"
            f"{self.shards}, {len(self.plan)} atoms)"
        )


def snapshot_shard_refs(database, partition) -> list[SnapshotShardRef] | None:
    """Per-shard path references for a partition, or ``None``.

    Succeeds only when every source relation of the partition plan is
    still a mapped (never-mutated) snapshot store from one directory —
    anything else means the files may not reflect the data, and the
    backend falls back to shipping pickled shard databases.
    """
    plan = getattr(partition, "shard_plan", None)
    if not plan:
        return None
    directories = set()
    entries = []
    for new_name, source, column in plan:
        rel = database.get(source)
        store = getattr(rel, "_store", None)
        if (
            not isinstance(store, MappedColumnStore)
            or not store._mapped
            or store._source is None
        ):
            return None
        directory, stored_name, kind = store._source
        if stored_name != source:
            return None
        directories.add(directory)
        entries.append((new_name, source, kind, column))
    if len(directories) != 1:
        return None
    directory = directories.pop()
    plan_tuple = tuple(entries)
    return [
        SnapshotShardRef(directory, index, partition.shards, plan_tuple)
        for index in range(partition.shards)
    ]
