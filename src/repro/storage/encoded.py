"""Encoded execution: run queries over the dictionary-encoded database.

:class:`EncodedDatabase` maintains the encoded image of one base
database — a parallel :class:`~repro.data.database.Database` whose
relations hold dense integer codes instead of raw values — together
with everything needed to execute queries over it transparently:

* **query translation** (:meth:`EncodedDatabase.encode_query`): constant
  selections are mapped into code space (a constant absent from the
  data becomes the never-matching sentinel);
* **ranking translation** (:func:`wrap_ranking`): weight functions are
  wrapped to decode before weighing, so SUM/MIN/MAX/AVG/PRODUCT keys
  are bit-identical to plain execution, and LEX keys compare codes —
  order-isomorphic to the raw values by the dictionary's
  order-preservation guarantee;
* **decode at emission** (:class:`DecodingEnumerator`): answers leave
  the enumerator as codes and are translated back to values (and LEX
  scores to value tuples) at the last possible moment.

Cache policy (the engine's contract): the encoded image is revalidated
against :attr:`Database.generation` before every use.  On a mutation,
relations whose own generation is unchanged are **not** re-encoded; the
dictionary itself is rebuilt only when the mutation introduced values
it has never seen (rebuilding re-sorts the code space, which bumps the
``epoch`` and drops every per-epoch derived cache).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from ..core.answers import RankedAnswer
from ..core.base import RankedEnumeratorBase
from ..core.ranking import (
    AvgRanking,
    CompositeRanking,
    LexRanking,
    MaxRanking,
    MinRanking,
    ProductRanking,
    RankingFunction,
    SumRanking,
    WeightFunction,
)
from .columnstore import ColumnStore
from .dictionary import MISSING, Dictionary, _group_key

__all__ = [
    "DecodingEnumerator",
    "DecodingWeight",
    "EncodedDatabase",
    "make_score_decoder",
    "wrap_ranking",
]

#: Ranking classes whose encoded execution is known-identical.  Exact
#: types only: a user subclass may override key algebra in ways the
#: wrapper cannot see, and then the engine falls back to plain rows.
_WRAPPABLE = (
    SumRanking,
    AvgRanking,
    MinRanking,
    MaxRanking,
    ProductRanking,
    LexRanking,
    CompositeRanking,
)


#: Placeholder distinguishing "never computed" from any real weight.
_UNSET = object()


class DecodingWeight(WeightFunction):
    """``w'(attr, code) = w(attr, decode(code))`` — weights in value space.

    Weights are memoised per ``(attribute, code)`` in dense arrays: one
    of dictionary encoding's structural wins is that a value's weight is
    resolved **once per distinct value**, then reused by plain list
    indexing for every tuple occurrence — instead of re-hashing a fat
    key into a weight table per tuple.  Sound because weight functions
    are pure (the plan cache already relies on that).

    On the batched ranking path this per-row memo hop disappears
    entirely: the score columns of :mod:`repro.storage.scores` evaluate
    this wrapper once per distinct code at build time (codes are dense,
    so the column indexes directly — a decode-free weight table in code
    space) and every per-tuple access is an array gather.  The memo
    only serves the scalar fallback and LEX's weighted comparisons.
    """

    def __init__(self, base: WeightFunction, dictionary: Dictionary):
        self.base = base
        self.dictionary = dictionary
        self._memo: dict[str, list] = {}

    def __call__(self, attr: str, code: int) -> float:
        memo = self._memo.get(attr)
        if memo is None:
            memo = self._memo[attr] = [_UNSET] * len(self.dictionary.values)
        elif code >= len(memo):
            # The dictionary grew in place (incremental code assignment
            # for appended values): grow the memo to match.
            memo.extend([_UNSET] * (len(self.dictionary.values) - len(memo)))
        weight = memo[code]
        if weight is _UNSET:
            weight = memo[code] = self.base(attr, self.dictionary.values[code])
        return weight

    def describe(self) -> str:
        return self.base.describe()

    def __getstate__(self):
        # Workers rebuild the memo on their own shard's access pattern;
        # _UNSET is process-local so the arrays must not travel.
        return (self.base, self.dictionary)

    def __setstate__(self, state) -> None:
        self.base, self.dictionary = state
        self._memo = {}


def wrap_ranking(
    ranking: RankingFunction | None, dictionary: Dictionary
) -> RankingFunction | None:
    """The code-space twin of ``ranking``, or ``None`` when unsupported.

    ``ranking=None`` (the planner's default ascending SUM over identity
    weights) *is* supported: identity weights need the decode wrapper
    like any other weight function.
    """
    if ranking is None:
        return SumRanking(DecodingWeight(_identity(), dictionary))
    if type(ranking) not in _WRAPPABLE:
        return None
    if isinstance(ranking, CompositeRanking):
        primary = wrap_ranking(ranking.primary, dictionary)
        secondary = wrap_ranking(ranking.secondary, dictionary)
        if primary is None or secondary is None:
            return None
        return CompositeRanking(primary, secondary)
    if isinstance(ranking, LexRanking):
        weight = (
            None
            if ranking.weight is None
            else DecodingWeight(ranking.weight, dictionary)
        )
        return LexRanking(
            order=ranking.order, descending=ranking.descending, weight=weight
        )
    # The aggregate family shares one constructor signature.
    return type(ranking)(
        DecodingWeight(ranking.weight, dictionary), descending=ranking.descending
    )


def _identity() -> WeightFunction:
    from ..core.ranking import IdentityWeight

    return IdentityWeight()


def make_score_decoder(
    kind: str, ranking: RankingFunction | None, dictionary: Dictionary
) -> Callable[[Any], Any]:
    """How to translate an encoded answer's *score* back to value space.

    Aggregate rankings already produce value-space scores (their weights
    decode), so the decoder is the identity.  Lexicographic scores are
    tuples of head values — i.e. codes under encoding — and decode
    elementwise; composites recurse pairwise.  ``kind == "lex"`` covers
    the backtracking enumerator, whose score is the comparison tuple
    regardless of the plan's ranking object.
    """
    values = dictionary.values

    def lex(score: Any) -> Any:
        return tuple(values[c] for c in score)

    if kind == "lex" or isinstance(ranking, LexRanking):
        return lex
    if isinstance(ranking, CompositeRanking):
        first = make_score_decoder(kind, ranking.primary, dictionary)
        second = make_score_decoder(kind, ranking.secondary, dictionary)
        return lambda score: (first(score[0]), second(score[1]))
    return lambda score: score


class DecodingEnumerator(RankedEnumeratorBase):
    """Wraps an enumerator running in code space; decodes at emission.

    Values are decoded elementwise; the score goes through the
    plan-specific decoder; :attr:`RankedAnswer.key` is passed through
    unchanged (keys are only compared, never displayed, and all streams
    of one execution share the dictionary, so comparisons stay
    consistent).
    """

    def __init__(
        self,
        inner: RankedEnumeratorBase,
        dictionary: Dictionary,
        score_decoder: Callable[[Any], Any],
    ):
        self.inner = inner
        self.dictionary = dictionary
        self.score_decoder = score_decoder

    def preprocess(self) -> "DecodingEnumerator":
        self.inner.preprocess()
        return self

    def __iter__(self) -> Iterator[RankedAnswer]:
        values = self.dictionary.values
        decode_score = self.score_decoder
        for answer in self.inner:
            yield RankedAnswer(
                tuple(values[c] for c in answer.values),
                decode_score(answer.score),
                key=answer.key,
            )

    def top_k(self, k: int) -> list[RankedAnswer]:
        """Delegate to the inner enumerator's ``top_k`` and decode.

        Delegation (rather than the mixin's iterate-and-break) lets the
        inner enumerator serve the request through its bulk top-k
        kernel when eligible; answers decode identically either way.
        """
        values = self.dictionary.values
        decode_score = self.score_decoder
        return [
            RankedAnswer(
                tuple(values[c] for c in answer.values),
                decode_score(answer.score),
                key=answer.key,
            )
            for answer in self.inner.top_k(k)
        ]

    @property
    def stats(self):
        """The inner enumerator's instrumentation."""
        return self.inner.stats

    def fresh(self) -> "DecodingEnumerator":
        return DecodingEnumerator(
            self.inner.fresh(), self.dictionary, self.score_decoder
        )


def profits_from_encoding(db, *, sample: int = 64) -> bool:
    """Heuristic: does this database carry fat (non-numeric) join keys?

    Dictionary codes are dense ints; when every column already holds
    ints/floats there is nothing to compress or speed up and the code
    indirection only costs.  Samples the head of each column — a miss
    (rare fat values deep in a numeric column) merely forgoes the
    optimisation, never correctness.
    """
    for rel in db:
        store = rel._store
        for column in store.columns:
            for value in column[:sample]:
                if not isinstance(value, (int, float)):
                    return True
    return False


class EncodedDatabase:
    """The dictionary-encoded image of one base database.

    Construct once per session (the engine does) and call
    :meth:`refresh` before each use; everything else is cached per
    dictionary *epoch* and per relation generation.
    """

    __slots__ = (
        "base",
        "database",
        "dictionary",
        "epoch",
        "_generation",
        "_relations",
        "_queries",
        "_rankings",
        "_weights",
        "_missing_consts",
    )

    def __init__(self, base):
        self.base = base
        self.database = None
        self.dictionary: Dictionary | None = None
        #: Bumped whenever the dictionary is rebuilt (code space changed);
        #: every per-epoch cache keys on it.
        self.epoch = 0
        self._generation: int | None = None
        # name -> (source relation, source generation, encoded relation,
        #          source store, source store version)
        self._relations: dict[str, tuple] = {}
        self._queries: dict[tuple, Any] = {}
        self._rankings: dict[tuple, tuple] = {}
        self._weights: dict[tuple, tuple] = {}
        #: Raw query constants that encoded to the never-matching
        #: sentinel this epoch.  If a write later *introduces* such a
        #: value, the cached encoded queries (and any prepared plans
        #: built from them) would silently keep selecting nothing, so
        #: incremental dictionary extension refuses and the full rebuild
        #: bumps the epoch instead.
        self._missing_consts: set = set()

    # ------------------------------------------------------------------ #
    # the encoded image
    # ------------------------------------------------------------------ #
    def refresh(self) -> "EncodedDatabase":
        """Revalidate against the base generation; re-encode the delta."""
        from ..data.database import Database
        from ..data.relation import Relation

        generation = self.base.generation
        if self.database is not None and generation == self._generation:
            return self

        if self._try_incremental():
            self._generation = generation
            return self

        stores = {rel.name: rel._store for rel in self.base}
        if self.dictionary is None or not self.dictionary.covers(
            store.columns[i] for store in stores.values() for i in range(store.arity)
        ):
            self.dictionary = Dictionary.build(
                store.columns[i]
                for store in stores.values()
                for i in range(store.arity)
            )
            self.epoch += 1
            self._relations.clear()
            self._queries.clear()
            self._rankings.clear()
            self._weights.clear()
            self._missing_consts = set()

        encode_column = self.dictionary.encode_column
        database = Database()
        for rel in self.base:
            cached = self._relations.get(rel.name)
            if (
                cached is not None
                and cached[0] is rel
                and cached[1] == rel.generation
            ):
                encoded = cached[2]
            else:
                store = ColumnStore.from_columns(
                    [encode_column(col) for col in rel._store.columns]
                )
                encoded = Relation._from_store(rel.name, rel.attrs, store)
            self._relations[rel.name] = (
                rel,
                rel.generation,
                encoded,
                rel._store,
                rel._store.version,
            )
            database.add(encoded)
        self.database = database
        self._generation = generation
        return self

    def _try_incremental(self) -> bool:
        """Replay base-store deltas into the encoded image, in place.

        Success keeps the SAME :class:`Database` object (and the same
        encoded relation/store objects) — the identity the engine's
        warm-state caches key on — and writes through the encoded
        stores' mutation interface, so the encoded image emits its own
        deltas and every downstream delta consumer (access paths, warm
        reduced instances) can maintain rather than rebuild.  Never-seen
        appended values get codes incrementally when they sort after the
        whole existing code space (:meth:`Dictionary.extend_if_ordered`
        — the append-only/monotone-key workload); anything that would
        change existing codes, match a constant that previously encoded
        to the missing sentinel, or fall outside the delta logs returns
        ``False`` and the full (epoch-bumping when needed) rebuild runs.
        """
        if self.database is None or self.dictionary is None:
            return False
        base_rels = {rel.name: rel for rel in self.base}
        if set(base_rels) != set(self._relations):
            return False
        codes = self.dictionary.codes
        pending = []
        new_values: set = set()
        for name, entry in self._relations.items():
            rel, cached_generation, encoded, store, version = entry
            if base_rels[name] is not rel or rel._store is not store:
                return False
            if store.version == version:
                continue
            deltas = store.deltas_since(version)
            if not deltas:
                return False  # None: gap not replayable; []: impossible here
            for delta in deltas:
                for row in delta.appended:
                    for value in row:
                        if value not in codes:
                            new_values.add(value)
            pending.append((name, rel, encoded, store, deltas))
        if new_values:
            if not new_values.isdisjoint(self._missing_consts):
                return False
            try:
                ordered = sorted(new_values, key=lambda v: (_group_key(v), v))
            except TypeError:
                return False
            if not self.dictionary.extend_if_ordered(ordered):
                return False
        encode_row = self.dictionary.encode_row
        for name, rel, encoded, store, deltas in pending:
            encoded_store = encoded._store
            for delta in deltas:
                if delta.is_append:
                    encoded_store.append_rows(
                        [encode_row(row) for row in delta.appended]
                    )
                else:
                    # Base and encoded stores stay aligned row-for-row,
                    # so delete positions transfer verbatim.
                    encoded_store.delete_rows(delta.removed)
            self._relations[name] = (rel, rel.generation, encoded, store, store.version)
        return True

    # ------------------------------------------------------------------ #
    # translation caches
    # ------------------------------------------------------------------ #
    def encode_query(self, query):
        """``query`` with every constant selection mapped into code space."""
        from ..query.query import Atom, Const, JoinProjectQuery, UnionQuery

        key = (query, self.epoch)
        cached = self._queries.get(key)
        if cached is not None:
            return cached
        assert self.dictionary is not None
        encode = self.dictionary.encode
        missing = self._missing_consts

        def encode_const(term: Const) -> Const:
            code = encode(term.value)
            if code == MISSING:
                # Remember the raw value: should a write introduce it
                # later, this cached translation would be silently
                # wrong, so incremental refresh must force a rebuild.
                missing.add(term.value)
            return Const(code)

        def encode_atom(atom: Atom) -> Atom:
            if not atom.selections:
                return atom
            terms = tuple(
                encode_const(t) if isinstance(t, Const) else t for t in atom.terms
            )
            return Atom(atom.relation, terms, alias=atom.alias)

        if isinstance(query, UnionQuery):
            encoded = UnionQuery(
                [
                    JoinProjectQuery(
                        [encode_atom(a) for a in branch.atoms],
                        branch.head,
                        name=branch.name,
                    )
                    for branch in query.branches
                ],
                name=query.name,
            )
        else:
            encoded = JoinProjectQuery(
                [encode_atom(a) for a in query.atoms], query.head, name=query.name
            )
        self._queries[key] = encoded
        return encoded

    def wrap_ranking(self, ranking: RankingFunction | None):
        """Cached :func:`wrap_ranking` — stable object identity per epoch,
        so the engine's plan fingerprints keep hitting."""
        assert self.dictionary is not None
        key = (id(ranking), self.epoch)
        cached = self._rankings.get(key)
        if cached is not None and cached[0] is ranking:
            return cached[1]
        wrapped = wrap_ranking(ranking, self.dictionary)
        self._rankings[key] = (ranking, wrapped)
        return wrapped

    def wrap_weight(self, weight: WeightFunction):
        """Cached decode wrapper for a bare weight function kwarg."""
        assert self.dictionary is not None
        key = (id(weight), self.epoch)
        cached = self._weights.get(key)
        if cached is not None and cached[0] is weight:
            return cached[1]
        wrapped = DecodingWeight(weight, self.dictionary)
        self._weights[key] = (weight, wrapped)
        return wrapped

    def decoder(self, kind: str, ranking: RankingFunction | None):
        """Answer-score decoder for one plan (see :func:`make_score_decoder`)."""
        assert self.dictionary is not None
        return make_score_decoder(kind, ranking, self.dictionary)

    def decode_answers(
        self, answers, kind: str, ranking: RankingFunction | None
    ) -> list[RankedAnswer]:
        """Decode a materialised encoded answer list (parallel path)."""
        assert self.dictionary is not None
        values = self.dictionary.values
        decode_score = self.decoder(kind, ranking)
        return [
            RankedAnswer(
                tuple(values[c] for c in a.values),
                decode_score(a.score),
                key=a.key,
            )
            for a in answers
        ]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n = len(self.dictionary) if self.dictionary is not None else 0
        return f"EncodedDatabase(epoch={self.epoch}, dict={n})"
