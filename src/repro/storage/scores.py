"""Score columns: per-value ranking weights as storage-layer arrays.

The ranked enumerators spend their non-join preprocessing time turning
tuples into rank keys — per partial answer, one
:class:`~repro.core.ranking.WeightFunction` call per owned head
variable, each a Python dict lookup (and, under dictionary encoding, a
second memo hop through ``DecodingWeight``).  This module batches that
scalar-per-row work into array operations at the storage boundary, the
same move :mod:`repro.storage.kernels` made for the join primitives:

* a :class:`ScoreColumn` materialises a weight function **once per
  distinct value** of one integer column — under encoded execution the
  values are dictionary codes, so the column is a decode-free weight
  table in code space;
* a :class:`ScoreView` is the row-aligned projection of a score column
  onto one cached scan view (built by ``ScanPath.scores_view`` and
  cached there per store version, exactly like the ``codes_view``
  matrices);
* :meth:`ScoreView.take` gathers the weights of any row subset (the
  full reducer's survivor indices) in one indexed load.

The contract is the kernel layer's **exact or refuse**: a score array
either reproduces the scalar weight path bit-for-bit — weights are
evaluated through the same :class:`WeightFunction` call, on values
pre-checked to be exactly ``int`` — or the build returns ``None`` and
the consumer stays on per-row Python keys.  A weight function that
*raises* for some value marks that value missing instead of failing the
build: the batch path then refuses only when a missing value is
actually used, which is precisely when the scalar path would raise.

The module-level :data:`counters` mirror the kernel counters
(:class:`~repro.storage.kernels.KernelCounters` — thread-safe, scoped);
:class:`~repro.engine.stats.EngineStats` surfaces them per engine as
``score_builds`` / ``score_fallbacks``.
"""

from __future__ import annotations

from typing import Any

from . import kernels

__all__ = [
    "ScoreColumn",
    "ScoreView",
    "build_score_view",
    "counters",
    "enabled",
    "set_enabled",
]

counters = kernels.KernelCounters()

_enabled = True


def enabled() -> bool:
    """True when NumPy is importable and score columns are switched on."""
    return kernels.enabled() and _enabled


def set_enabled(flag: bool) -> None:
    """Force-disable (or re-enable) the batched scoring path.

    The per-row scalar key computation is always available; benchmarks
    and tests use this switch to compare the two paths on identical
    inputs without disabling the join kernels.
    """
    global _enabled
    _enabled = bool(flag)


class ScoreColumn:
    """Weights of one integer column's distinct values, as arrays.

    ``domain`` holds the sorted distinct values; ``weights[i]`` is the
    weight of ``domain[i]`` as ``float64`` (exactly the value the
    scalar path's ``sign * weight(attr, value)`` starts from — the
    ``int``→``float64`` conversion is the same correctly-rounded one
    CPython performs); ``missing`` marks values the weight function
    raised for (or returned NaN, which the batched reductions cannot
    order identically).  When the domain is contiguous — dictionary
    codes usually are — lookups index directly instead of binary
    searching.
    """

    __slots__ = ("domain", "weights", "missing", "_dense_base")

    def __init__(self, domain, weights, missing):
        self.domain = domain
        self.weights = weights
        self.missing = missing  # bool array or None (nothing missing)
        n = len(domain)
        if n and int(domain[-1]) - int(domain[0]) == n - 1:
            self._dense_base = int(domain[0])
        else:
            self._dense_base = None
        if missing is not None and not missing.any():
            self.missing = None

    def __len__(self) -> int:
        return len(self.domain)

    def indices(self, values):
        """Domain positions of ``values`` (which must be ⊆ the domain).

        Contiguous domains — dictionary codes usually are — index
        directly; sparse ones binary-search.
        """
        if self._dense_base is not None:
            return values - self._dense_base
        return kernels.np.searchsorted(self.domain, values)

    def lookup(self, values):
        """``float64`` weights aligned with ``values``, or ``None``.

        ``values`` must be a subset of the domain (they are: score
        columns are built over the same view the rows come from).
        ``None`` when any looked-up value is missing — the caller falls
        back to the scalar path, which raises the weight function's own
        error on exactly that value.
        """
        idx = self.indices(values)
        if self.missing is not None and self.missing[idx].any():
            return None
        return self.weights[idx]


def build_score_column(values, attr: str, weight) -> ScoreColumn | None:
    """Materialise ``weight`` over the distinct values of one column.

    ``values`` is a 1-D ``int64`` array whose underlying Python values
    the caller has pre-checked to be exactly ``int`` (no bool/IntEnum —
    the weight function must see the same value the scalar path passes
    it).  Returns ``None`` when any weight is not a real number; a
    weight call that raises marks the value missing instead (see
    :meth:`ScoreColumn.lookup`).
    """
    np = kernels.np
    from ..core.ranking import IdentityWeight

    if type(weight) is IdentityWeight:
        # w(v) = v over ints: the column is its own weight table.  The
        # scalar path would raise for non-numeric values; int columns
        # never contain any.
        domain = np.unique(values)
        return ScoreColumn(domain, domain.astype(np.float64), None)
    domain = np.unique(values)
    weights = np.empty(len(domain), dtype=np.float64)
    missing = np.zeros(len(domain), dtype=bool)
    for i, code in enumerate(domain.tolist()):
        try:
            w = weight(attr, code)
        except Exception:
            # The scalar path raises here too — but only if this value
            # is ever used.  Deferred to lookup time.
            missing[i] = True
            weights[i] = 0.0
            continue
        if isinstance(w, bool) or not isinstance(w, (int, float)):
            return None  # non-real weights: key algebra differs, refuse
        w = float(w)
        if w != w:  # NaN: array min/max/sum order NaNs differently
            missing[i] = True
        weights[i] = w
    return ScoreColumn(domain, weights, missing)


class ScoreView:
    """A score column projected row-for-row onto one scan view.

    ``scores[i]`` is the raw (unsigned) weight of view row ``i``'s
    value for one attribute; ``missing`` flags rows whose weight the
    function could not produce.  Built and cached by
    ``ScanPath.scores_view`` per (view signature, column, attribute,
    weight function), invalidated with the scan path on every store
    version bump.
    """

    __slots__ = ("scores", "missing")

    def __init__(self, scores, missing):
        self.scores = scores
        self.missing = missing  # bool array or None

    def __len__(self) -> int:
        return len(self.scores)

    def take(self, indices):
        """Weights of the given view rows (``None`` indices = all rows).

        Returns ``None`` when the subset touches a missing weight —
        the scalar fallback then raises the weight function's own
        error, on the same value, where the batch path cannot.
        """
        if indices is None:
            if self.missing is not None and self.missing.any():
                return None
            return self.scores
        if self.missing is not None and self.missing[indices].any():
            return None
        return self.scores[indices]


def build_score_view(codes, attr: str, weight) -> ScoreView | None:
    """Row-aligned score view of one view column, or ``None``.

    ``codes`` is the column's ``int64`` array (one slice of a
    ``codes_view`` matrix, or an ad-hoc :func:`kernels.column_array`
    conversion); the caller guarantees the underlying values are
    exactly ``int``.  Weights are evaluated once per distinct value and
    broadcast back by index — the per-row work the scalar path repeats
    per tuple collapses into one gather.
    """
    if not enabled():
        return None
    column = build_score_column(codes, attr, weight)
    if column is None:
        counters.record_fallback("non-real-weight")
        return None
    counters.record_call()
    idx = column.indices(codes)
    scores = column.weights[idx]
    missing = column.missing[idx] if column.missing is not None else None
    return ScoreView(scores, missing)


def adhoc_score_array(rows, position: int, attr: str, weight) -> Any | None:
    """Raw weight array for one column of a plain row list, or ``None``.

    The uncached counterpart of ``ScanPath.scores_view`` for row lists
    that no longer know their access path (star sub-instances,
    caller-supplied instances, Python-reduced state): pre-checks the
    values are exactly ``int``, converts the column once and builds a
    one-off score view over it.
    """
    if not enabled():
        return None
    if not kernels.rows_exactly_int(rows, (position,)):
        counters.record_fallback("conversion")
        return None
    column = kernels.column_array([row[position] for row in rows])
    if column is None:
        counters.record_fallback("conversion")
        return None
    view = build_score_view(column, attr, weight)
    if view is None:
        return None
    taken = view.take(None)
    if taken is None:
        counters.record_fallback("missing-weight")
    return taken
