"""Store deltas: describing mutations precisely enough to update, not rebuild.

Every mutation of a :class:`~repro.storage.columnstore.ColumnStore` used
to be observable only through the version counter — a one-bit "something
changed" signal that forces every derived structure (access paths, score
columns, the engine's warm reduced instances, the encoded image) to
rebuild from scratch.  A :class:`StoreDelta` records *what* changed:

* an **append delta** names the contiguous row range added at the end of
  the store (existing row indices are untouched);
* a **delete delta** names the removed physical row indices *and carries
  the removed row tuples* — the store compacts its columns on delete, so
  the post-delete store is bit-identical to a cold build from the
  surviving rows, and consumers that kept per-row state remap through
  the delta instead of re-deriving it.

The :class:`DeltaLog` is the bounded history a store keeps alongside its
version counter.  Consumers remember the last version they incorporated
and ask :meth:`DeltaLog.since` for the gap; the answer is either the
exact delta sequence (possibly empty) or ``None`` — history compacted
away, or a mutation that was not expressed as a delta — in which case
the consumer falls back to the full rebuild it would have done anyway.
Fallback is always correct; deltas are purely an optimisation contract.
"""

from __future__ import annotations

from typing import Iterator, Sequence

__all__ = ["StoreDelta", "DeltaLog"]

Row = tuple


class StoreDelta:
    """One mutation of a column store, in replayable form.

    Exactly one of the two shapes:

    * ``append_count > 0, removed == ()`` — rows were appended at
      positions ``[base_rows, base_rows + append_count)``; ``appended``
      holds their tuples (so a consumer maintaining a *derived* store —
      the encoded image — can replay the gap without reconstructing
      intermediate states);
    * ``append_count == 0, removed != ()`` — the rows at the (sorted,
      pre-delete) positions ``removed`` were deleted; ``removed_rows``
      holds their tuples, aligned with ``removed``.

    ``version`` is the store version *after* this delta applied;
    ``base_rows`` the row count before it.
    """

    __slots__ = (
        "version",
        "base_rows",
        "append_count",
        "appended",
        "removed",
        "removed_rows",
    )

    def __init__(
        self,
        version: int,
        base_rows: int,
        append_count: int = 0,
        appended: Sequence[Row] = (),
        removed: Sequence[int] = (),
        removed_rows: Sequence[Row] = (),
    ):
        self.version = version
        self.base_rows = base_rows
        self.append_count = append_count
        self.appended = tuple(appended)
        self.removed = tuple(removed)
        self.removed_rows = tuple(removed_rows)

    @property
    def is_append(self) -> bool:
        return self.append_count > 0

    @property
    def is_delete(self) -> bool:
        return bool(self.removed)

    @property
    def rows_after(self) -> int:
        return self.base_rows + self.append_count - len(self.removed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_append:
            return f"StoreDelta(v={self.version}, +{self.append_count})"
        return f"StoreDelta(v={self.version}, -{len(self.removed)})"


class DeltaLog:
    """A bounded, contiguous history of one store's deltas.

    The log covers the version interval ``(base_version, head_version]``
    with one entry per version step.  Recording past the bound drops the
    oldest entries (advancing ``base_version``) — consumers that fell
    that far behind rebuild, which is the pre-delta behaviour.
    """

    #: History bound: a consumer more than this many mutations behind
    #: would pay delta replay comparable to a rebuild anyway.
    MAX_ENTRIES = 64

    __slots__ = ("base_version", "entries")

    def __init__(self, base_version: int = 0):
        self.base_version = base_version
        self.entries: list[StoreDelta] = []

    @property
    def head_version(self) -> int:
        return self.entries[-1].version if self.entries else self.base_version

    def record(self, delta: StoreDelta) -> None:
        """Append one delta (must continue the version sequence)."""
        self.entries.append(delta)
        overflow = len(self.entries) - self.MAX_ENTRIES
        if overflow > 0:
            self.base_version = self.entries[overflow - 1].version
            del self.entries[:overflow]

    def barrier(self, version: int) -> None:
        """Cut history: a mutation happened that no delta describes."""
        self.base_version = version
        self.entries.clear()

    def since(self, version: int) -> list[StoreDelta] | None:
        """Deltas to replay from ``version`` to the head, oldest first.

        ``None`` when the gap is not covered (history compacted, a
        barrier intervened, or ``version`` is from the future — a
        consumer bound to a different store object).
        """
        if version == self.head_version:
            return []
        if version < self.base_version or version > self.head_version:
            return None
        return [d for d in self.entries if d.version > version]

    def __iter__(self) -> Iterator[StoreDelta]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeltaLog(base=v{self.base_version}, entries={len(self.entries)})"
