"""Write-ahead delta journal: acknowledged writes survive kill -9.

A snapshot (:mod:`~repro.storage.persist`) is immutable, so every write
accepted after it — the delta bursts PR 7 maintains incrementally — used
to die with the process.  This module adds the durability half: a
``journal.wal`` file beside the snapshot that records each mutation
*before* it is applied, fsync'd before the call returns.  Reopening the
directory replays the journal over the mapped snapshot, so the
acknowledged state is exactly what comes back after any single process
crash.

**Record framing.**  Each record is ``[length:u32 LE][crc32:u32 LE]``
followed by a compact JSON payload.  Record types:

``base``
    First record of every journal: format tag, version, and the
    ``checkpoint`` token binding it to one snapshot incarnation (the
    snapshot manifest carries the same token).
``append`` / ``delete``
    One data mutation: relation name plus rows (appends are one record
    per acknowledged burst, matching the store's one-delta-per-burst
    write shape).  Data records carry a contiguous ``seq`` starting
    at 1 after the snapshot.
``cursor`` / ``cursor-position`` / ``cursor-close``
    Service-cursor replay state — an opaque JSON spec composed by the
    server (the journal never interprets it beyond the ``cursor`` id,
    ``position`` and ``seq`` bookkeeping fields), so a restarted
    server resumes every open cursor deterministically.
``checkpoint-begin``
    The checkpoint protocol's intent marker (see below).

**Recovery is exact-or-refuse.**  A torn tail — partial header, record
running past EOF, or a CRC mismatch on the final bytes — is the
signature of a crash mid-write: the tail is dropped (it was never
acknowledged).  A CRC mismatch with valid records *after* it cannot be
a torn write and refuses with :class:`JournalError`, as do gaps in the
data ``seq`` and token mismatches: no guessing about what was lost.

**Checkpointing** folds the journal back into a fresh snapshot without
a window in which a crash loses writes:

1. append ``checkpoint-begin {next: T}`` to the old journal (fsync'd);
2. save a fresh snapshot whose manifest carries token ``T`` (data
   files under new token-tagged names; the manifest replace is the
   commit point, and the old snapshot's files are untouched until
   after the swap);
3. atomically replace the journal with a fresh one whose base record
   carries ``T`` (fresh cursors carried over, data records dropped —
   they are in the snapshot now).

A crash between 2 and 3 leaves a new-token manifest with an old-token
journal whose final record is ``checkpoint-begin {next: T}``: recovery
recognises exactly that shape, discards the data records (already in
the snapshot) and resets the journal.  Any *other* token mismatch
refuses.

Like the snapshot layout, the journal file format is a storage-layer
contract (``tools/check_layering.py`` rule 6): consumers go through
:func:`open_durable` / :func:`journal_path` and the replay hook inside
:func:`~repro.storage.persist.open_database`.
"""

from __future__ import annotations

import json
import math
import os
import secrets
import struct
import threading
import zlib
from typing import Any, Iterable, Sequence

from ..errors import ReproError
from ..testing.faultinject import fault_point, fault_value
from .persist import (
    MANIFEST_FILE,
    _fsync_dir,
    _JSON_SAFE,
    _SNAPSHOTS,
    _write_json,
    open_snapshot,
    save_snapshot,
)

__all__ = [
    "JOURNAL_FILE",
    "JOURNAL_FORMAT",
    "JOURNAL_VERSION",
    "DurableDatabase",
    "JournalError",
    "journal_path",
    "open_durable",
    "replay_journal",
]

#: Journal file name inside a snapshot directory.
JOURNAL_FILE = "journal.wal"
#: Base-record ``format`` tag — anything else is not ours.
JOURNAL_FORMAT = "repro-journal"
#: Base-record ``version`` this build reads and writes.
JOURNAL_VERSION = 1

#: Sanity cap on one record's payload: a declared length beyond this is
#: header corruption, not a record this module ever wrote.
MAX_RECORD_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct("<II")  # payload length, payload crc32


class JournalError(ReproError):
    """The journal could not be written, read, or recovered exactly."""


def journal_path(directory: str | os.PathLike) -> str:
    """The journal file of a snapshot directory (the public spelling)."""
    return os.path.join(os.fspath(directory), JOURNAL_FILE)


def _new_token() -> str:
    """A fresh checkpoint token binding one journal to one snapshot."""
    return secrets.token_hex(8)


# ---------------------------------------------------------------------- #
# framing
# ---------------------------------------------------------------------- #
def _frame(record: dict) -> bytes:
    payload = json.dumps(
        record, sort_keys=True, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    if len(payload) > MAX_RECORD_BYTES:
        raise JournalError(
            f"journal record of {len(payload)} bytes exceeds the "
            f"{MAX_RECORD_BYTES}-byte cap"
        )
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _read_frames(data: bytes) -> tuple[list[dict], list[int], bool]:
    """Decode ``data`` into records; drop a torn tail, refuse corruption.

    Returns ``(records, ends, torn)`` where ``ends[i]`` is the byte
    offset just past record ``i`` — the acknowledged-prefix boundaries
    the crash fuzzer kills at.
    """
    records: list[dict] = []
    ends: list[int] = []
    pos, size = 0, len(data)
    torn = False
    while pos < size:
        if size - pos < _HEADER.size:
            torn = True  # partial header: crash mid-write
            break
        length, crc = _HEADER.unpack_from(data, pos)
        end = pos + _HEADER.size + length
        if end > size:
            torn = True  # record runs past EOF: the torn last record
            break
        if length > MAX_RECORD_BYTES:
            raise JournalError(
                f"corrupt journal: record at byte {pos} declares "
                f"{length} bytes (cap {MAX_RECORD_BYTES}) with data after "
                "it — interior corruption, not a torn tail"
            )
        payload = data[pos + _HEADER.size : end]
        if zlib.crc32(payload) != crc:
            if end == size:
                torn = True  # final record, short of its checksum
                break
            raise JournalError(
                f"corrupt journal: CRC mismatch at byte {pos} with "
                f"{size - end} valid bytes after it — interior corruption, "
                "not a torn tail; refusing rather than guessing what was "
                "lost"
            )
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise JournalError(
                f"corrupt journal: CRC-valid record at byte {pos} is not "
                "JSON"
            ) from None
        if not isinstance(record, dict) or "t" not in record:
            raise JournalError(
                f"corrupt journal: record at byte {pos} has no type tag"
            )
        records.append(record)
        ends.append(end)
        pos = end
    return records, ends, torn


def _create_journal(
    target: str, token: str, extra_records: Iterable[dict] = ()
) -> None:
    """Write a fresh journal (base record + ``extra_records``) atomically."""
    tmp = target + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(
            _frame(
                {
                    "t": "base",
                    "format": JOURNAL_FORMAT,
                    "version": JOURNAL_VERSION,
                    "checkpoint": token,
                }
            )
        )
        for record in extra_records:
            fh.write(_frame(record))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, target)
    _fsync_dir(os.path.dirname(target) or ".")


# ---------------------------------------------------------------------- #
# reading back: classification + replay
# ---------------------------------------------------------------------- #
class _Recovered:
    """What one journal read yields: data to replay, cursors, boundaries."""

    __slots__ = ("reset", "data", "last_seq", "cursors", "keep_bytes", "torn")

    def __init__(self, *, reset, data, last_seq, cursors, keep_bytes, torn):
        #: True for the crashed-checkpoint shape: the data records are
        #: already in the snapshot; the journal must be reset.
        self.reset = reset
        self.data = data
        self.last_seq = last_seq
        #: ``cursor id -> {"spec", "position", "seq", "stale"}``.
        self.cursors = cursors
        #: Bytes worth keeping: everything before the torn tail and any
        #: trailing (uncommitted) ``checkpoint-begin`` marker.
        self.keep_bytes = keep_bytes
        self.torn = torn


def _fold_cursors(records: Sequence[dict]) -> dict[str, dict]:
    cursors: dict[str, dict] = {}
    for record in records:
        kind = record["t"]
        if kind == "cursor":
            spec = {k: v for k, v in record.items() if k != "t"}
            cursor_id = spec.get("cursor")
            if not isinstance(cursor_id, str) or not cursor_id:
                raise JournalError(
                    f"corrupt journal: cursor record without an id: {spec!r}"
                )
            cursors[cursor_id] = {
                "spec": spec,
                "position": int(spec.get("position", 0)),
                "seq": int(spec.get("seq", 0)),
            }
        elif kind == "cursor-position":
            state = cursors.get(record.get("cursor"))
            if state is not None:
                state["position"] = int(record.get("position", state["position"]))
        elif kind == "cursor-close":
            cursors.pop(record.get("cursor"), None)
    return cursors


def _load_journal(target: str, manifest_token: str | None) -> _Recovered | None:
    """Read and classify a journal against its snapshot's token.

    ``None`` means "no usable journal" (missing, empty, or torn before
    the base record ever landed) — the caller recreates it.  Raises
    :class:`JournalError` for anything that cannot be explained by a
    single crash.
    """
    try:
        with open(target, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return None
    records, ends, torn = _read_frames(data)
    if not records:
        return None  # nothing was ever acknowledged through this file
    base = records[0]
    if base.get("t") != "base" or base.get("format") != JOURNAL_FORMAT:
        raise JournalError(f"{target!r} is not a {JOURNAL_FORMAT} journal")
    if base.get("version") != JOURNAL_VERSION:
        raise JournalError(
            f"unknown journal version {base.get('version')!r} (this build "
            f"reads version {JOURNAL_VERSION}); refusing rather than "
            "guessing at the record semantics"
        )
    token = base.get("checkpoint")
    body = records[1:]
    if token != manifest_token:
        last = body[-1] if body else None
        if (
            isinstance(last, dict)
            and last.get("t") == "checkpoint-begin"
            and last.get("next") == manifest_token
        ):
            # Crash between snapshot commit and journal swap: every data
            # record is in the snapshot; carry only cursors that reflect
            # the full data state (their seq is 0 against the new base).
            folded = _fold_cursors(body[:-1])
            last_seq = max(
                (r["seq"] for r in body[:-1] if r["t"] in ("append", "delete")),
                default=0,
            )
            cursors = {}
            for cursor_id, state in folded.items():
                if state["seq"] != last_seq:
                    continue
                spec = dict(state["spec"])
                spec["seq"] = 0
                spec["position"] = state["position"]
                cursors[cursor_id] = {
                    "spec": spec,
                    "position": state["position"],
                    "seq": 0,
                    "stale": False,
                }
            return _Recovered(
                reset=True,
                data=[],
                last_seq=0,
                cursors=cursors,
                keep_bytes=0,
                torn=torn,
            )
        raise JournalError(
            f"journal token {token!r} does not match snapshot token "
            f"{manifest_token!r}: the journal belongs to a different "
            "snapshot incarnation (a re-save over a journaled directory?); "
            "refusing rather than replaying foreign deltas — delete "
            f"{JOURNAL_FILE!r} if the snapshot alone is the intended state"
        )
    # Token matches.  A *trailing* checkpoint-begin is a checkpoint that
    # never committed its snapshot — drop the marker, keep everything
    # before it; an interior one (possible after such a recovery kept
    # appending) is inert and skipped.
    keep = len(body)
    if body and body[-1].get("t") == "checkpoint-begin":
        keep -= 1
    kept = body[:keep]
    data = [r for r in kept if r.get("t") in ("append", "delete")]
    seq = 0
    for record in data:
        seq += 1
        if record.get("seq") != seq:
            raise JournalError(
                f"corrupt journal: data record {seq} carries seq "
                f"{record.get('seq')!r} — the acknowledged sequence has a "
                "gap; refusing rather than replaying around it"
            )
    folded = _fold_cursors(kept)
    cursors = {
        cursor_id: {**state, "stale": state["seq"] != seq}
        for cursor_id, state in folded.items()
    }
    keep_bytes = ends[keep]  # ends[0] is the base record's end
    return _Recovered(
        reset=False,
        data=data,
        last_seq=seq,
        cursors=cursors,
        keep_bytes=keep_bytes,
        torn=torn or keep < len(body),
    )


def _apply_record(db, record: dict) -> None:
    """Replay one data record against a database, exactly."""
    name = record.get("rel")
    rel = db.get(name)
    if rel is None:
        raise JournalError(
            f"journal references relation {name!r} which the snapshot "
            "does not hold"
        )
    if record["t"] == "append":
        rows = [tuple(row) for row in record.get("rows", ())]
        for row in rows:
            if len(row) != len(rel.attrs):
                raise JournalError(
                    f"journal append to {name!r} carries arity-{len(row)} "
                    f"row {row!r}; relation expects {len(rel.attrs)}"
                )
        rel.add_rows(rows)
    else:
        row = tuple(record.get("row", ()))
        if len(row) != len(rel.attrs):
            raise JournalError(
                f"journal delete from {name!r} carries arity-{len(row)} "
                f"row {row!r}; relation expects {len(rel.attrs)}"
            )
        rel.remove(row)


def replay_journal(snapshot, db) -> int:
    """Replay a snapshot directory's journal over ``db`` (read-only).

    The hook :func:`~repro.storage.persist.open_database` calls after
    assembling the mapped database: acknowledged post-snapshot writes
    come back, nothing on disk is modified.  Returns the number of data
    records replayed (0 when there is no journal, or after a crashed
    checkpoint whose data already lives in the snapshot).
    """
    recovered = _load_journal(
        journal_path(snapshot.directory), snapshot.manifest.get("checkpoint")
    )
    if recovered is None or recovered.reset:
        return 0
    for record in recovered.data:
        _apply_record(db, record)
    return len(recovered.data)


# ---------------------------------------------------------------------- #
# the write side
# ---------------------------------------------------------------------- #
class _JournalWriter:
    """Append-side handle: frame, write, fsync — in that order, always."""

    def __init__(self, target: str):
        self.target = target
        self._fh = open(target, "r+b")
        self._fh.seek(0, os.SEEK_END)
        self.end = self._fh.tell()
        self.broken = False

    def append(self, record: dict) -> None:
        if self.broken:
            raise JournalError(
                "journal is broken after a failed write/fsync; reopen the "
                "database to recover the acknowledged prefix"
            )
        payload = _frame(record)
        cut = fault_value("journal.write")
        if cut is not None:
            # Injected torn write: the crash happens mid-record.  The
            # prefix reaches the file (flushed) and the process "dies" —
            # here, the handle goes broken and the caller sees an OSError.
            self._fh.write(payload[: max(0, min(cut, len(payload)))])
            self._fh.flush()
            self.broken = True
            raise JournalError(
                f"[faultinject] journal write torn at byte {cut}"
            )
        try:
            self._fh.write(payload)
            self._fh.flush()
            fault_point("journal.fsync")
            os.fsync(self._fh.fileno())
        except OSError as exc:
            # The record may or may not have reached the platter: it was
            # never acknowledged, and recovery treats whatever survives
            # as recovered-but-optional (torn tails are dropped).
            self.broken = True
            raise JournalError(
                f"journal write could not be made durable ({exc}); the "
                "record was never acknowledged — reopen the database to "
                "recover the acknowledged prefix"
            ) from exc
        self.end += len(payload)

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:
            pass


class DurableDatabase:
    """A snapshot-backed database whose writes go journal-first.

    The handle :func:`open_durable` returns.  ``db`` is an ordinary
    :class:`~repro.data.database.Database` (snapshot-mapped, journal
    replayed) to hand to a :class:`~repro.engine.QueryEngine`; mutations
    made through :meth:`append` / :meth:`delete` are fsync'd into the
    journal *before* they touch ``db``, so an acknowledged write
    survives any single process crash.  Mutating ``db`` directly works
    but is not durable — keep writes on this surface.

    Also the durability surface the service layer drives (duck-typed —
    the server never imports storage): :meth:`record_cursor` /
    :meth:`record_cursor_position` / :meth:`record_cursor_close` journal
    cursor replay state, and :meth:`recovered_cursors` yields what a
    restarted server should restore.
    """

    def __init__(self, directory, snapshot, db, writer, *, token, write_seq, cursors, replayed):
        self.directory = directory
        self.db = db
        self.write_seq = write_seq
        self.checkpoints = 0
        self.replayed = replayed
        self._snapshot = snapshot
        self._writer = writer
        self._token = token
        self._cursors = cursors
        self._recovered = dict(cursors)
        self._lock = threading.RLock()
        self._closed = False

    # -- guards --------------------------------------------------------- #
    def _ensure_open(self) -> None:
        if self._closed:
            raise JournalError("durable database is closed")
        if self._writer.broken:
            raise JournalError(
                "journal is broken after a failed write/fsync; reopen the "
                "database to recover the acknowledged prefix"
            )

    def _relation(self, relation):
        name = getattr(relation, "name", relation)
        rel = self.db.get(name)
        if rel is None:
            raise JournalError(f"no relation {name!r} in the durable database")
        return rel

    @staticmethod
    def _check_row(rel, row: tuple) -> None:
        if len(row) != len(rel.attrs):
            raise JournalError(
                f"row {row!r} has arity {len(row)}, relation {rel.name!r} "
                f"expects {len(rel.attrs)}"
            )
        for value in row:
            if value is not None and type(value) not in _JSON_SAFE:
                raise JournalError(
                    f"cannot journal value {value!r} of type "
                    f"{type(value).__name__}: it does not round-trip "
                    "exactly through JSON (exact-or-refuse)"
                )
            if isinstance(value, float) and not math.isfinite(value):
                raise JournalError(
                    f"cannot journal non-finite float {value!r}: it has "
                    "no exact JSON form"
                )

    # -- durable mutations ---------------------------------------------- #
    def append(self, relation, rows: Iterable[Sequence[Any]]) -> int:
        """Durably append a burst of rows; returns the new write seq.

        The burst is one journal record and one store delta: journal
        fsync first, then the in-memory apply — by the time this
        returns, a kill -9 cannot lose the rows.
        """
        materialised = [tuple(row) for row in rows]
        if not materialised:
            return self.write_seq
        with self._lock:
            self._ensure_open()
            rel = self._relation(relation)
            for row in materialised:
                self._check_row(rel, row)
            self._writer.append(
                {
                    "t": "append",
                    "seq": self.write_seq + 1,
                    "rel": rel.name,
                    "rows": [list(row) for row in materialised],
                }
            )
            self.write_seq += 1
            rel.add_rows(materialised)
            return self.write_seq

    def delete(self, relation, row: Sequence[Any]) -> int:
        """Durably delete every occurrence of ``row``; returns the seq."""
        with self._lock:
            self._ensure_open()
            rel = self._relation(relation)
            materialised = tuple(row)
            self._check_row(rel, materialised)
            self._writer.append(
                {
                    "t": "delete",
                    "seq": self.write_seq + 1,
                    "rel": rel.name,
                    "row": list(materialised),
                }
            )
            self.write_seq += 1
            rel.remove(materialised)
            return self.write_seq

    # -- cursor replay state -------------------------------------------- #
    def record_cursor(self, spec: dict) -> None:
        """Journal a newly opened cursor's replay spec (JSON-safe dict).

        The journal stamps the current write seq into the spec: on
        recovery a cursor is resumable exactly when it was opened
        against the final acknowledged data state.
        """
        with self._lock:
            self._ensure_open()
            spec = dict(spec)
            cursor_id = spec.get("cursor")
            if not isinstance(cursor_id, str) or not cursor_id:
                raise JournalError(f"cursor spec without an id: {spec!r}")
            spec["seq"] = self.write_seq
            spec.setdefault("position", 0)
            self._writer.append({"t": "cursor", **spec})
            self._cursors[cursor_id] = {
                "spec": spec,
                "position": int(spec["position"]),
                "seq": self.write_seq,
                "stale": False,
            }

    def record_cursor_position(self, cursor_id: str, position: int) -> None:
        """Journal a cursor's new resume offset after a served page."""
        with self._lock:
            self._ensure_open()
            self._writer.append(
                {"t": "cursor-position", "cursor": cursor_id, "position": int(position)}
            )
            state = self._cursors.get(cursor_id)
            if state is not None:
                state["position"] = int(position)

    def record_cursor_close(self, cursor_id: str) -> None:
        """Journal that a cursor is gone (it will not be restored)."""
        with self._lock:
            self._ensure_open()
            self._writer.append({"t": "cursor-close", "cursor": cursor_id})
            self._cursors.pop(cursor_id, None)

    def recovered_cursors(self) -> list[dict]:
        """The cursors recovery found: ``{"spec", "position", "stale"}``.

        ``stale`` marks cursors opened against a data state that is not
        the final acknowledged one — a restarted server restores those
        poisoned (they answer ``stale-cursor``) rather than silently
        serving pages from a different database state.
        """
        return [
            {
                "spec": dict(state["spec"]),
                "position": state["position"],
                "stale": bool(state.get("stale")),
            }
            for state in self._recovered.values()
        ]

    # -- checkpointing --------------------------------------------------- #
    def checkpoint(self) -> str:
        """Fold the journal into a fresh snapshot; returns the new token.

        Durable at every intermediate crash point (see the module
        docstring for the protocol); after a *failed* checkpoint the
        handle refuses further writes — reopen to recover.
        """
        with self._lock:
            self._ensure_open()
            old_manifest = dict(self._snapshot.manifest)
            next_token = _new_token()
            try:
                self._writer.append({"t": "checkpoint-begin", "next": next_token})
                save_snapshot(self.db, self.directory, checkpoint_token=next_token)
                fault_point("journal.checkpoint")
                carried = []
                for state in self._cursors.values():
                    if state.get("stale") or state["seq"] != self.write_seq:
                        continue
                    spec = dict(state["spec"])
                    spec["seq"] = 0
                    spec["position"] = state["position"]
                    carried.append((spec["cursor"], spec))
                _create_journal(
                    self._writer.target,
                    next_token,
                    ({"t": "cursor", **spec} for _, spec in carried),
                )
            except Exception:
                self._writer.broken = True
                raise
            self._writer.close()
            self._writer = _JournalWriter(self._writer.target)
            self._token = next_token
            self.write_seq = 0
            self.checkpoints += 1
            self._cursors = {
                cursor_id: {"spec": spec, "position": spec["position"], "seq": 0, "stale": False}
                for cursor_id, spec in carried
            }
            self._snapshot.manifest["checkpoint"] = next_token
            _cleanup_superseded(self.directory, old_manifest)
            return next_token

    # -- bookkeeping ----------------------------------------------------- #
    @property
    def journal_bytes(self) -> int:
        """Acknowledged journal size — the crash fuzzer's kill offsets."""
        return self._writer.end

    def snapshot_info(self) -> dict:
        """A JSON-safe durability summary (surfaced by server ``stats``)."""
        return {
            "directory": str(self.directory),
            "write_seq": self.write_seq,
            "journal_bytes": self.journal_bytes,
            "checkpoints": self.checkpoints,
            "replayed": self.replayed,
            "recovered_cursors": len(self._recovered),
            "live_cursors": len(self._cursors),
        }

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._writer.close()

    def __enter__(self) -> "DurableDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DurableDatabase({self.directory!r}, seq={self.write_seq}, "
            f"{len(self._cursors)} cursors)"
        )


def _cleanup_superseded(directory, old_manifest: dict) -> None:
    """Best-effort unlink of data files a checkpoint replaced.

    Only files the *old* manifest referenced and the new one does not;
    live mappings keep their inodes (POSIX), so open handles are safe.
    Failures are ignored — garbage files cost disk, not correctness.
    """
    try:
        with open(os.path.join(directory, MANIFEST_FILE), encoding="utf-8") as fh:
            new_manifest = json.load(fh)
    except (OSError, ValueError):
        return
    live = _manifest_files(new_manifest)
    for name in _manifest_files(old_manifest) - live:
        try:
            os.unlink(os.path.join(directory, name))
        except OSError:
            pass


def _manifest_files(manifest: dict) -> set[str]:
    files = set()
    for entry in manifest.get("relations", ()):
        if isinstance(entry, dict) and "codes_file" in entry:
            files.add(entry["codes_file"])
    for key in ("dictionary", "scores"):
        entry = manifest.get(key)
        if isinstance(entry, dict) and "file" in entry:
            files.add(entry["file"])
    return files


# ---------------------------------------------------------------------- #
# opening
# ---------------------------------------------------------------------- #
def open_durable(path: str | os.PathLike) -> DurableDatabase:
    """Open a snapshot directory for durable writes.

    Recovers exactly: replays the journal's acknowledged records over
    the mapped snapshot, truncates a torn tail (and an uncommitted
    ``checkpoint-begin``), completes a crashed checkpoint's journal
    swap, and refuses (:class:`JournalError`) on anything a single
    crash cannot explain.  A pre-journal snapshot is adopted in place:
    its manifest gets a checkpoint token and a fresh journal is created
    beside it.  Works without NumPy (eager stores; only
    :meth:`DurableDatabase.checkpoint` needs the snapshot writer).
    """
    path = os.fspath(path)
    snapshot = open_snapshot(path)
    token = snapshot.manifest.get("checkpoint")
    if token is None:
        # Adopt a pre-durability snapshot: stamp a token so the journal
        # binds to exactly this incarnation.
        token = _new_token()
        snapshot.manifest["checkpoint"] = token
        _write_json(os.path.join(path, MANIFEST_FILE), snapshot.manifest, indent=2)
        _fsync_dir(path)
    db = snapshot.database()
    _SNAPSHOTS[db] = snapshot
    target = journal_path(path)
    recovered = _load_journal(target, token)
    cursors: dict[str, dict] = {}
    write_seq = 0
    replayed = 0
    if recovered is None:
        _create_journal(target, token)
    elif recovered.reset:
        # Crashed checkpoint: data lives in the snapshot; finish the swap.
        cursors = recovered.cursors
        _create_journal(
            target,
            token,
            ({"t": "cursor", **state["spec"]} for state in cursors.values()),
        )
    else:
        total = os.path.getsize(target)
        if recovered.keep_bytes != total:
            # Drop the torn tail / uncommitted checkpoint marker so new
            # records land on a clean boundary.
            with open(target, "r+b") as fh:
                fh.truncate(recovered.keep_bytes)
                fh.flush()
                os.fsync(fh.fileno())
        for record in recovered.data:
            _apply_record(db, record)
        replayed = len(recovered.data)
        write_seq = recovered.last_seq
        cursors = recovered.cursors
    snapshot.journal_replayed = replayed
    return DurableDatabase(
        path,
        snapshot,
        db,
        _JournalWriter(target),
        token=token,
        write_seq=write_seq,
        cursors=cursors,
        replayed=replayed,
    )
