"""Vectorised NumPy join kernels over dense code columns.

The storage layer encodes join keys to dense integers
(:mod:`repro.storage.dictionary`), and a :class:`~repro.storage.columnstore.ColumnStore`
already holds tuples column-major — so the hot relational primitives
(the Yannakakis reducer's two semi-join sweeps, ``antijoin``, hash-index
construction and the GHD bag materialisation) are one array away from
running as batched NumPy operations instead of per-row Python loops.
This module is that array layer:

* **representation** — :func:`column_array` / :func:`codes_matrix` turn
  integer-valued columns and row lists into ``int64`` arrays, returning
  ``None`` (never a lossy cast) whenever the values are not exactly
  representable: floats, bools, strings and out-of-``int64`` integers
  all refuse;
* **key packing** — :func:`pack_columns` / :func:`pack_pair`
  radix-combine multi-column keys into a single ``int64`` per row (the
  per-column radix is the value span, computed jointly over both sides
  so packed equality is key-tuple equality), refusing on overflow;
* **membership** — :func:`semijoin_mask` / :func:`antijoin_mask` via
  ``np.isin`` (sorted-array membership, ``O((n+m) log m)``);
* **grouping** — :func:`group_indices` / :func:`hash_group` build hash
  buckets in one stable argsort pass, bucket and insertion order
  identical to the Python dict build;
* **joins** — :func:`join_indices` / :func:`cross_indices` produce
  matching row-index pairs in exactly the left-major,
  right-store-order sequence of the Python hash join.

Every kernel is exact or refuses: a ``None`` return tells the caller to
use the pure-Python implementation, so outputs (values, scores, ties,
order) are identical whichever path runs.  NumPy itself is optional —
install the ``fast`` extra (``pip install repro[fast]``); without it
:func:`enabled` is ``False`` and every consumer stays on Python rows.

The module-level :data:`counters` record kernel invocations and
fallbacks; :class:`~repro.engine.stats.EngineStats` surfaces them per
engine as ``kernel_calls`` / ``kernel_fallbacks``.
"""

from __future__ import annotations

import threading
import weakref
from contextlib import contextmanager
from typing import Any, Sequence

try:  # pragma: no branch - one of the two arms runs per process
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised via import stubbing
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

__all__ = [
    "HAS_NUMPY",
    "KERNEL_MIN_ROWS",
    "KernelCounters",
    "Tally",
    "antijoin_mask",
    "attached_context",
    "capture_context",
    "codes_matrix",
    "column_array",
    "counters",
    "cross_indices",
    "distinct_indices",
    "enabled",
    "group_indices",
    "hash_group",
    "join_indices",
    "min_rows",
    "min_rows_override",
    "pack_columns",
    "pack_pair",
    "semijoin_mask",
    "set_enabled",
    "set_min_rows",
    "shard_ids",
]

Row = tuple

#: Below this many input rows the per-call dispatch sites — the
#: standalone ``semijoin``/``antijoin`` helpers (total rows across both
#: sides) and ``HashIndexPath`` construction (store size) — stay on the
#: single-pass Python implementations, where per-call array conversion
#: or kernel setup would cost more than it saves.  One process-wide
#: default, overridable per thread through :func:`min_rows_override`
#: (the ``QueryEngine(kernel_min_rows=...)`` option) so tests and
#: benchmarks can force kernels onto tiny inputs.  (The batched reducer
#: path converts through store-level caches and has no such floor.)
KERNEL_MIN_ROWS = 1024

#: Packed multi-column keys must stay well inside signed 64 bits.
_MAX_PACKED = 1 << 62

_min_rows_local = threading.local()


def min_rows() -> int:
    """The kernel-dispatch row threshold in force on this thread."""
    override = getattr(_min_rows_local, "value", None)
    return KERNEL_MIN_ROWS if override is None else override


def set_min_rows(n: int) -> None:
    """Change the process-wide default threshold (tests/benchmarks)."""
    global KERNEL_MIN_ROWS
    KERNEL_MIN_ROWS = int(n)


@contextmanager
def min_rows_override(n: int | None):
    """Thread-local threshold override; ``None`` leaves the default."""
    if n is None:
        yield
        return
    previous = getattr(_min_rows_local, "value", None)
    _min_rows_local.value = int(n)
    try:
        yield
    finally:
        _min_rows_local.value = previous


class Tally:
    """One scope's share of the counters (see :meth:`KernelCounters.collect`).

    ``reasons`` breaks the fallback total down by reason code (e.g.
    ``"conversion"`` vs ``"unbatchable-ranking"``), so callers can tell
    "the data refused the arrays" apart from "the ranking has no array
    form" without re-running anything.
    """

    __slots__ = ("calls", "fallbacks", "reasons")

    def __init__(self):
        self.calls = 0
        self.fallbacks = 0
        self.reasons: dict[str, int] = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tally(calls={self.calls}, fallbacks={self.fallbacks})"


class KernelCounters:
    """Process-wide, thread-safe instrumentation with scoped collection.

    Global totals (``calls`` / ``fallbacks``) are incremented under a
    lock.  Attribution to one engine is done with *tally scopes*: a
    caller enters :meth:`collect`, and every increment made on the same
    thread (or on a worker thread that re-entered the scope via
    :func:`attached_context` — the threads parallel backend does) is
    added to the scope's :class:`Tally` as well.  Two engines executing
    concurrently on different threads therefore never see each other's
    increments — the race the old snapshot-diff accounting had.
    """

    __slots__ = ("calls", "fallbacks", "reasons", "_lock", "_local", "__weakref__")

    #: Every live instance (kernel + score counters); context capture
    #: snapshots the calling thread's scopes across all of them.  Weak
    #: references: ad-hoc counters die with their creators instead of
    #: accumulating here forever.
    _instances: "weakref.WeakSet[KernelCounters]" = weakref.WeakSet()

    def __init__(self):
        self.calls = 0
        self.fallbacks = 0
        self.reasons: dict[str, int] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        KernelCounters._instances.add(self)

    def _scopes(self) -> list[Tally]:
        scopes = getattr(self._local, "scopes", None)
        if scopes is None:
            scopes = self._local.scopes = []
        return scopes

    def record_call(self) -> None:
        with self._lock:
            self.calls += 1
            for tally in self._scopes():
                tally.calls += 1

    def record_fallback(self, reason: str = "conversion") -> None:
        """Count one refusal, tagged with *why* the array path declined.

        Established reason codes: ``"conversion"`` (values not exactly
        int64-representable), ``"pack-overflow"`` (multi-column key span
        exceeds 64 bits), ``"non-real-weight"`` / ``"missing-weight"``
        (score columns), ``"unbatchable-ranking"`` (the ranking has no
        array form — LEX/composite), ``"combine-refused"`` /
        ``"scalar-child-keys"`` (batched combine declined).
        """
        with self._lock:
            self.fallbacks += 1
            self.reasons[reason] = self.reasons.get(reason, 0) + 1
            for tally in self._scopes():
                tally.fallbacks += 1
                tally.reasons[reason] = tally.reasons.get(reason, 0) + 1

    @contextmanager
    def collect(self):
        """Scope: attribute increments on this thread to a fresh tally."""
        tally = Tally()
        scopes = self._scopes()
        with self._lock:
            scopes.append(tally)
        try:
            yield tally
        finally:
            with self._lock:
                scopes.remove(tally)

    def snapshot(self) -> tuple[int, int]:
        with self._lock:
            return (self.calls, self.fallbacks)

    def reasons_snapshot(self) -> dict[str, int]:
        """The fallback-reason breakdown (a copy; totals sum to ``fallbacks``)."""
        with self._lock:
            return dict(self.reasons)

    def reset(self) -> None:
        with self._lock:
            self.calls = 0
            self.fallbacks = 0
            self.reasons.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KernelCounters(calls={self.calls}, fallbacks={self.fallbacks})"


counters = KernelCounters()


def capture_context():
    """Snapshot the calling thread's instrumentation context.

    Returns an opaque token holding every active tally scope (across
    all counter instances — kernel and score counters alike) plus the
    thread's min-rows override.  Worker threads doing this thread's
    work re-enter the context with :func:`attached_context`, so scoped
    attribution and threshold overrides survive the thread hop.
    """
    scopes = []
    for instance in KernelCounters._instances:
        active = getattr(instance._local, "scopes", None)
        if active:
            scopes.append((instance, tuple(active)))
    return (tuple(scopes), getattr(_min_rows_local, "value", None))


@contextmanager
def attached_context(token):
    """Re-enter a :func:`capture_context` token on the current thread."""
    scopes, override = token
    entered: list[tuple[KernelCounters, Tally]] = []
    for instance, tallies in scopes:
        local = instance._scopes()
        with instance._lock:
            for tally in tallies:
                local.append(tally)
                entered.append((instance, tally))
    try:
        with min_rows_override(override):
            yield
    finally:
        for instance, tally in entered:
            with instance._lock:
                instance._scopes().remove(tally)


_enabled = True


def enabled() -> bool:
    """True when NumPy is importable and kernels are not switched off."""
    return HAS_NUMPY and _enabled


def set_enabled(flag: bool) -> None:
    """Force-disable (or re-enable) every kernel dispatch site.

    The row-at-a-time implementations are always available; benchmarks
    and tests use this switch to compare the two paths on identical
    inputs.
    """
    global _enabled
    _enabled = bool(flag)


# ---------------------------------------------------------------------- #
# representation: columns and row lists as int64 arrays
# ---------------------------------------------------------------------- #
def column_array(values: Sequence[Any]):
    """``values`` as a 1-D ``int64`` array, or ``None`` if not exact.

    Only genuinely integer-valued columns qualify: floats (silent
    truncation), bools (identity-changing normalisation), strings,
    integers beyond 64 bits (object dtype) and sequence-valued cells
    (NumPy would build a multi-dimensional array, or raise on ragged
    input) all return ``None``, which callers treat as "use the Python
    path".
    """
    if np is None:
        return None
    if not len(values):
        return np.empty(0, dtype=np.int64)
    try:
        arr = np.asarray(values)
    except (ValueError, OverflowError):  # ragged nested sequences etc.
        return None
    if arr.ndim != 1:
        return None
    if arr.dtype == np.int64:
        return arr
    if arr.dtype.kind == "i":  # smaller signed ints widen losslessly
        return arr.astype(np.int64)
    return None


def codes_matrix(rows: Sequence[Row], width: int):
    """A row list as an ``(n, width)`` ``int64`` matrix, or ``None``.

    Row ``i`` of the matrix corresponds to ``rows[i]``; conversion
    refuses (returns ``None``) under the same rules as
    :func:`column_array`.
    """
    if np is None:
        return None
    n = len(rows)
    if width == 0 or n == 0:
        return np.empty((n, width), dtype=np.int64)
    cols = []
    for i in range(width):
        arr = column_array([r[i] for r in rows])
        if arr is None:
            return None
        cols.append(arr)
    return np.stack(cols, axis=1)


def key_columns(rows: Sequence[Row], positions: Sequence[int]):
    """The key columns of a row list as ``int64`` arrays, or ``None``."""
    cols = []
    for i in positions:
        arr = column_array([r[i] for r in rows])
        if arr is None:
            return None
        cols.append(arr)
    return cols


def rows_exactly_int(rows: Sequence[Row], positions: Sequence[int] | None = None) -> bool:
    """True when every (selected) cell is exactly ``int`` — no subclasses.

    :func:`column_array` accepts anything NumPy coerces to an integer
    dtype, which keeps membership/grouping kernels correct (they return
    the *original* tuples, and ``True == 1`` decisions agree with
    Python sets) but is too loose for kernels that **rebuild** rows
    from codes: a ``True`` or ``IntEnum`` cell would come back as a
    plain ``int``.  Those emit sites run this linear pre-scan first —
    cheap next to the superlinear joins it guards — and fall back to
    the Python path on anything exotic.
    """
    if positions is None:
        return all(type(v) is int for row in rows for v in row)
    pos = tuple(positions)
    return all(type(row[i]) is int for row in rows for i in pos)


# ---------------------------------------------------------------------- #
# shard assignment: hash a whole key column in one array op
# ---------------------------------------------------------------------- #
def shard_ids(values: Sequence[Any], shards: int):
    """Stable shard index per value as a plain list, or ``None``.

    The vectorised twin of ``stable_shard`` in
    :mod:`repro.data.partition`, for the columns where the two are
    *provably* identical: exactly-integer columns, where the stable
    hash is the value itself and ``%`` with a positive modulus agrees
    between NumPy and Python (both floor, including for negatives).
    Anything else — floats, strings, bools-as-a-column — refuses, and
    the caller runs the per-row CRC loop.
    """
    arr = column_array(values)
    if arr is None:
        counters.record_fallback("conversion")
        return None
    counters.record_call()
    return (arr % shards).tolist()


# ---------------------------------------------------------------------- #
# key packing: multi-column keys -> one int64 per row
# ---------------------------------------------------------------------- #
def _spans(column_pairs):
    """Joint (lo, span) per aligned column pair; None on packed overflow."""
    packed_span = 1
    spans = []
    for left_col, right_col in column_pairs:
        sides = [c for c in (left_col, right_col) if c is not None and len(c)]
        if not sides:
            lo, hi = 0, 0
        else:
            lo = min(int(c.min()) for c in sides)
            hi = max(int(c.max()) for c in sides)
        span = hi - lo + 1
        packed_span *= span
        if packed_span > _MAX_PACKED:
            return None
        spans.append((lo, span))
    return spans


def _pack(cols, spans):
    keys = (cols[0] - spans[0][0]).astype(np.int64, copy=False)
    for col, (lo, span) in zip(cols[1:], spans[1:]):
        keys *= span
        keys += col - lo
    return keys


def pack_columns(cols):
    """One-sided radix pack of aligned key columns; ``None`` on overflow."""
    if len(cols) == 1:
        return cols[0]
    spans = _spans([(c, None) for c in cols])
    if spans is None:
        return None
    return _pack(cols, spans)


def pack_pair(left_cols, right_cols):
    """Pack both sides of a join key into comparable ``int64`` keys.

    The radix per column is computed **jointly** over both sides, so
    equal key tuples pack to equal ints and unequal ones never collide.
    Returns ``(left_keys, right_keys)`` or ``None`` when the combined
    span cannot fit 64 bits (the caller falls back to Python).
    """
    if len(left_cols) == 1:
        return left_cols[0], right_cols[0]
    spans = _spans(list(zip(left_cols, right_cols)))
    if spans is None:
        return None
    return _pack(left_cols, spans), _pack(right_cols, spans)


# ---------------------------------------------------------------------- #
# membership: semi-join and anti-join masks
# ---------------------------------------------------------------------- #
def semijoin_mask(left_keys, right_keys):
    """Boolean mask: which left keys have a partner on the right."""
    counters.record_call()
    if len(right_keys) == 0:
        return np.zeros(len(left_keys), dtype=bool)
    return np.isin(left_keys, right_keys)


def antijoin_mask(left_keys, right_keys):
    """Boolean mask: which left keys have **no** partner on the right."""
    counters.record_call()
    if len(right_keys) == 0:
        return np.ones(len(left_keys), dtype=bool)
    return ~np.isin(left_keys, right_keys)


# ---------------------------------------------------------------------- #
# grouping: hash buckets in one stable sort pass
# ---------------------------------------------------------------------- #
def group_indices(keys):
    """Groups of equal keys as ``(first_row, row_indices)`` pairs.

    Row indices within a group ascend (store order) and groups are
    returned in first-occurrence order — exactly the bucket contents
    and dict insertion order of the Python single-pass group-by.
    """
    counters.record_call()
    order = np.argsort(keys, kind="stable")
    if len(order) == 0:
        return []
    sk = keys[order]
    starts = np.nonzero(np.r_[True, sk[1:] != sk[:-1]])[0]
    ends = np.r_[starts[1:], len(sk)]
    groups = [
        (int(order[s]), order[s:e]) for s, e in zip(starts.tolist(), ends.tolist())
    ]
    groups.sort(key=lambda g: g[0])
    return groups


def hash_group(matrix, positions: Sequence[int], rows: Sequence[Row]):
    """``{key tuple: [rows...]}`` buckets, identical to the dict build.

    ``matrix`` must be aligned row-for-row with ``rows``; bucket keys
    are projected from the original row tuples, so value identity is
    preserved exactly.  ``None`` when the key does not pack.
    """
    cols = [matrix[:, i] for i in positions]
    keys = pack_columns(cols)
    if keys is None:
        counters.record_fallback("pack-overflow")
        return None
    pos = tuple(positions)
    buckets: dict[tuple, list[Row]] = {}
    for first, idx in group_indices(keys):
        row = rows[first]
        buckets[tuple(row[i] for i in pos)] = [rows[j] for j in idx.tolist()]
    return buckets


# ---------------------------------------------------------------------- #
# joins: matching index pairs in Python hash-join order
# ---------------------------------------------------------------------- #
def join_indices(left_keys, right_keys):
    """``(left_idx, right_idx)`` of every matching pair.

    Pairs come out left-major with right matches in store order — the
    exact sequence of ``for lrow: for rrow in bucket[key]``.
    """
    counters.record_call()
    order = np.argsort(right_keys, kind="stable")
    rs = right_keys[order]
    starts = np.searchsorted(rs, left_keys, side="left")
    ends = np.searchsorted(rs, left_keys, side="right")
    cnt = ends - starts
    total = int(cnt.sum())
    left_idx = np.repeat(np.arange(len(left_keys)), cnt)
    if total == 0:
        return left_idx, left_idx
    offsets = np.arange(total) - np.repeat(np.cumsum(cnt) - cnt, cnt)
    right_idx = order[np.repeat(starts, cnt) + offsets]
    return left_idx, right_idx


def cross_indices(n_left: int, n_right: int):
    """Index pairs of the cartesian product, left-major."""
    counters.record_call()
    return (
        np.repeat(np.arange(n_left), n_right),
        np.tile(np.arange(n_right), n_left),
    )


# ---------------------------------------------------------------------- #
# dedup: first-occurrence distinct rows
# ---------------------------------------------------------------------- #
def distinct_indices(matrix):
    """Ascending indices of each first-occurring distinct row, or ``None``.

    ``matrix[distinct_indices(matrix)]`` equals the Python
    seen-set dedup of the same rows, order included.
    """
    n, width = matrix.shape
    if width == 0:
        return np.arange(min(n, 1))
    keys = pack_columns([matrix[:, i] for i in range(width)])
    if keys is None:
        counters.record_fallback("pack-overflow")
        return None
    counters.record_call()
    _unique, first = np.unique(keys, return_index=True)
    first.sort()
    return first
