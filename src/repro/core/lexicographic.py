"""Lexicographic enumeration by semi-join backtracking (paper §3.2,
Algorithm 3 — ``EnumAcyclicLexi``).

For ``LEXICOGRAPHIC`` ranking the general priority-queue machinery is
overkill: the global order implies a local order per attribute, so the
algorithm simply walks the projection attributes in comparison order,
fixing one value at a time:

1. sort the candidate values of the current attribute (ascending or
   descending per attribute — the ``ORDER BY A1 ASC, A2 DESC`` case the
   paper highlights);
2. for each value, filter the relations containing the attribute and run
   a full-reducer pass (the paper's "two-phase semi-joins"), which both
   prunes dead branches and exposes the candidate values of the next
   attribute;
3. recurse; every full assignment is one distinct output.

Guarantees (Lemma 4): ``O(|D|)`` delay after ``O(|D| log |D|)``
preprocessing with ``O(|D|)`` space — and no priority queues, which is
where the paper's measured 2-3x speed-up over the SUM machinery comes
from (Figure 6).
"""

from __future__ import annotations

import time
from typing import Iterable, Iterator, Mapping, Sequence

from ..algorithms.yannakakis import atom_instances, full_reduce
from ..data.database import Database
from ..errors import QueryError, RankingError
from ..query.jointree import JoinTree, build_join_tree
from ..query.query import JoinProjectQuery
from .answers import EnumerationStats, RankedAnswer
from .base import RankedEnumeratorBase
from .ranking import Desc, WeightFunction, batched_weight_table

__all__ = ["LexBacktrackEnumerator"]

Row = tuple

_MISSING = object()  # weight-table sentinel: raising values stay uncached


class LexBacktrackEnumerator(RankedEnumeratorBase):
    """Algorithm 3: lexicographic ranked enumeration without priority queues.

    Parameters
    ----------
    query:
        An acyclic join-project query.
    db:
        The database instance.
    order:
        Attribute comparison order; must be a permutation of the head.
        Defaults to the head order itself.
    descending:
        Head variables to enumerate in descending order.
    weight:
        Optional per-value weight function: order each attribute by
        ``w(value)`` (refined by the raw value on ties) instead of the
        raw value — the paper's ``ORDER BY A1.weight, A2.weight`` form.
    join_tree:
        Optional pre-built join tree.

    The emitted :attr:`RankedAnswer.score` (and :attr:`~RankedAnswer.key`)
    is the comparison tuple: head values arranged in ``order``, with
    descending attributes order-reversed inside the key so keys from
    different enumerators merge correctly.

    Examples
    --------
    >>> from repro.data import Database
    >>> from repro.query import parse_query
    >>> db = Database()
    >>> _ = db.add_relation("R", ("a", "b"), [(2, 10), (1, 10), (1, 20)])
    >>> q = parse_query("Q(a1, a2) :- R(a1, p), R(a2, p)")
    >>> [a.values for a in LexBacktrackEnumerator(q, db)]
    [(1, 1), (1, 2), (2, 1), (2, 2)]
    """

    def __init__(
        self,
        query: JoinProjectQuery,
        db: Database,
        *,
        order: Sequence[str] | None = None,
        descending: Iterable[str] = (),
        weight: WeightFunction | None = None,
        join_tree: JoinTree | None = None,
        instances: Mapping[str, list[Row]] | None = None,
        already_reduced: bool = False,
    ):
        self.query = query
        self.db = db
        self._already_reduced = already_reduced
        self._order = tuple(order) if order is not None else query.head
        if sorted(self._order) != sorted(query.head):
            raise RankingError(
                f"lexicographic order {self._order} must be a permutation of the "
                f"head {query.head}"
            )
        self._descending = frozenset(descending)
        self._weight = weight
        unknown = self._descending - set(query.head)
        if unknown:
            raise RankingError(f"descending variables {sorted(unknown)} not in the head")
        self.join_tree = join_tree or build_join_tree(query)
        self._given_instances = instances
        self.stats = EnumerationStats()
        self._instances: dict[str, list[Row]] | None = None
        self._exhausted = False
        self._weight_tables: dict[str, dict] = {}
        # Atoms (alias, position) containing each order variable.
        self._holders: dict[str, list[tuple[str, int]]] = {}
        for var in self._order:
            holders = [
                (atom.alias, atom.variables.index(var))
                for atom in query.atoms
                if var in atom.var_set
            ]
            if not holders:  # pragma: no cover - head validation precludes this
                raise QueryError(f"head variable {var!r} appears in no atom")
            self._holders[var] = holders

    # ------------------------------------------------------------------ #
    # phases
    # ------------------------------------------------------------------ #
    def preprocess(self) -> "LexBacktrackEnumerator":
        """Full-reducer pass + hash indexes (the paper's "create hash
        indexes for the base relations in sorted order").

        Two index families are built over the reduced instance:

        * value indexes for the first order variable, so fixing
          ``A_1 = a`` costs its bucket size instead of a relation scan;
        * per join-tree-edge indexes keyed on the shared variables, so
          the first semi-join wave after the fix only touches the
          joining neighbourhood (:meth:`_index_reduce`) rather than all
          of ``|D|`` — this is what makes the backtracker outpace the
          priority-queue machinery in practice (Figure 6).
        """
        if self._instances is not None:
            return self
        started = time.perf_counter()
        if self._given_instances is not None:
            instances = {a: list(r) for a, r in self._given_instances.items()}
        else:
            instances = atom_instances(self.query, self.db)
        if self._already_reduced:
            self._instances = instances
        else:
            self._instances = full_reduce(self.join_tree, instances)
        self.stats.reduce_seconds = time.perf_counter() - started

        # Cached per-variable weight tables: one batched distinct pass
        # and one weight call per distinct value, so the candidate sorts
        # read a dict instead of re-calling the weight function per
        # value per backtracking level.  The cached entry is the weight
        # call's exact return value, so comparison keys are unchanged;
        # values absent from a table (or whole columns that refuse) fall
        # back to the direct call, raising identically where the
        # uncached path would.
        if self._weight is not None:
            for var in self._order:
                alias0, pos0 = self._holders[var][0]
                table = batched_weight_table(
                    self._weight, var, self._instances[alias0], pos0
                )
                if table is not None:
                    self._weight_tables[var] = table

        # Value indexes for the first order variable's holders.
        self._value_index: dict[str, dict] = {}
        first_var = self._order[0]
        for alias, pos in self._holders[first_var]:
            index: dict = {}
            for row in self._instances[alias]:
                index.setdefault(row[pos], []).append(row)
            self._value_index[alias] = index

        # Edge indexes over the reduced instance, both directions.
        self._edges: list[tuple[str, str, tuple[int, ...], tuple[int, ...]]] = []
        self._edge_index: dict[tuple[str, tuple[int, ...]], dict] = {}
        for node in self.join_tree.nodes:
            if node.parent is None:
                continue
            a, b = node.alias, node.parent.alias
            a_vars = node.atom.variables
            b_vars = node.parent.atom.variables
            shared = [v for v in a_vars if v in b_vars]
            a_pos = tuple(a_vars.index(v) for v in shared)
            b_pos = tuple(b_vars.index(v) for v in shared)
            self._edges.append((a, b, a_pos, b_pos))
            for alias, pos in ((a, a_pos), (b, b_pos)):
                if (alias, pos) in self._edge_index:
                    continue
                index = {}
                for row in self._instances[alias]:
                    index.setdefault(tuple(row[i] for i in pos), []).append(row)
                self._edge_index[(alias, pos)] = index
        self.stats.preprocess_seconds = time.perf_counter() - started
        self.stats.build_seconds = (
            self.stats.preprocess_seconds - self.stats.reduce_seconds
        )
        return self

    def _index_reduce(self, seeds: dict[str, list[Row]]) -> dict[str, list[Row]]:
        """Propagate a depth-0 filter outward through the edge indexes.

        ``seeds`` holds filtered row lists for the atoms containing the
        fixed variable; every other atom is narrowed to the rows joining
        the wavefront, by index lookup, in BFS order over the join tree.
        The result over-approximates the reduced instance (one outward
        wave only) but is small, so the exact :func:`full_reduce` that
        follows is cheap.
        """
        adjacency: dict[str, list[tuple[str, tuple[int, ...], tuple[int, ...]]]] = {}
        for a, b, a_pos, b_pos in self._edges:
            adjacency.setdefault(a, []).append((b, a_pos, b_pos))
            adjacency.setdefault(b, []).append((a, b_pos, a_pos))

        state = dict(seeds)
        frontier = list(seeds)
        visited = set(seeds)
        while frontier:
            current = frontier.pop()
            for neighbour, cur_pos, nb_pos in adjacency.get(current, ()):
                if neighbour in visited:
                    continue
                visited.add(neighbour)
                index = self._edge_index[(neighbour, nb_pos)]
                keys = {tuple(r[i] for i in cur_pos) for r in state[current]}
                rows: list[Row] = []
                for key in keys:
                    rows.extend(index.get(key, ()))
                state[neighbour] = rows
                frontier.append(neighbour)
        # Atoms disconnected from every seed keep their full reduced rows.
        for alias, rows in self._instances.items():  # type: ignore[union-attr]
            state.setdefault(alias, rows)
        return state

    def __iter__(self) -> Iterator[RankedAnswer]:
        self.preprocess()
        if self._exhausted:
            raise QueryError(
                "enumerator already consumed; call fresh() to enumerate again"
            )
        self._exhausted = True
        assert self._instances is not None
        if any(not rows for rows in self._instances.values()):
            return  # empty join
        yield from self._enum(self._instances, 0, {})

    def _enum(
        self,
        instances: dict[str, list[Row]],
        depth: int,
        fixed: dict[str, object],
    ) -> Iterator[RankedAnswer]:
        if depth == len(self._order):
            values = tuple(fixed[v] for v in self.query.head)
            score = tuple(fixed[v] for v in self._order)
            key = tuple(
                Desc(self._value_key(v, fixed[v]))
                if v in self._descending
                else self._value_key(v, fixed[v])
                for v in self._order
            )
            self.stats.answers += 1
            yield RankedAnswer(values, score, key=key)
            return

        var = self._order[depth]
        holders = self._holders[var]
        alias0, pos0 = holders[0]
        candidates = sorted(
            {row[pos0] for row in instances[alias0]},
            key=lambda v: self._value_key(var, v),
            reverse=var in self._descending,
        )
        for value in candidates:
            alive = True
            if depth == 0:
                # Index path: bucket lookups + one outward wave keep the
                # first (most expensive) level proportional to the value's
                # join neighbourhood instead of |D|.
                seeds: dict[str, list[Row]] = {}
                for alias, pos in holders:
                    rows = self._value_index[alias].get(value, [])
                    rows = [row for row in rows if row[pos] == value]
                    if not rows:
                        alive = False
                        break
                    seeds[alias] = rows
                if not alive:
                    continue
                filtered = self._index_reduce(seeds)
            else:
                filtered = dict(instances)
                for alias, pos in holders:
                    rows = [row for row in filtered[alias] if row[pos] == value]
                    if not rows:
                        alive = False
                        break
                    filtered[alias] = rows
                if not alive:
                    continue
            reduced = full_reduce(self.join_tree, filtered)
            self.stats.reducer_passes += 1
            if any(not rows for rows in reduced.values()):
                continue
            yield from self._enum(reduced, depth + 1, {**fixed, var: value})

    def _value_key(self, var: str, value):
        """Per-attribute comparison key: ``(w(value), value)`` when a
        weight function is configured, the raw value otherwise.

        Weighted comparisons read the cached weight table built in
        :meth:`preprocess` (one weight call per distinct value); values
        outside the table call the weight function directly — same
        result, same errors.
        """
        if self._weight is None:
            return value
        table = self._weight_tables.get(var)
        if table is not None:
            w = table.get(value, _MISSING)
            if w is not _MISSING:
                return (w, value)
        return (self._weight(var, value), value)

    def fresh(self) -> "LexBacktrackEnumerator":
        """A new enumerator with identical configuration."""
        return LexBacktrackEnumerator(
            self.query,
            self.db,
            order=self._order,
            descending=self._descending,
            weight=self._weight,
            join_tree=self.join_tree,
            instances=self._given_instances,
            already_reduced=self._already_reduced,
        )

