"""Min-weight-projection semantics (paper Appendix A).

The paper's main problem ranks outputs by the *projection* attributes
only.  Appendix A discusses the alternative semantics of [66]: the
ranking function reads **all** attributes, an output tuple inherits the
weight of its *cheapest witness* (the minimum over the full join results
that project onto it), and tuples are enumerated by that min-weight.
The paper notes its machinery "can be extended to handle this
trivially" — this module is that extension:

1. enumerate the *full* query in rank order over all attributes
   (Theorem 1's enumerator, which recovers the prior full-query
   algorithms — Appendix E);
2. project each full result; the **first** occurrence of a projection
   carries its minimal witness weight, later occurrences are skipped
   (an output-sized seen-set: unlike the projection-ranking problem,
   equal projections are *not* adjacent here, so constant-memory
   deduplication is impossible — exactly why the paper's primary
   formulation ranks on the head).
"""

from __future__ import annotations

import time
from typing import Iterator

from ..data.database import Database
from ..errors import QueryError
from ..query.query import JoinProjectQuery
from .acyclic import AcyclicRankedEnumerator
from .answers import EnumerationStats, RankedAnswer
from .base import RankedEnumeratorBase
from .ranking import RankingFunction, SumRanking

__all__ = ["MinWeightProjectionEnumerator"]


class MinWeightProjectionEnumerator(RankedEnumeratorBase):
    """Appendix A: rank projections by their cheapest full witness.

    Parameters
    ----------
    query:
        An acyclic join-project query; the *projection* defines the
        emitted tuples, but the ranking reads every variable.
    db:
        The database instance.
    ranking:
        Ranking over **all** body variables (default ascending SUM with
        identity weights).

    Examples
    --------
    >>> from repro.data import Database
    >>> from repro.query import parse_query
    >>> db = Database()
    >>> _ = db.add_relation("R", ("a", "b"), [(1, 9), (1, 2), (2, 1)])
    >>> q = parse_query("Q(a) :- R(a, b)")
    >>> [(x.values, x.score) for x in MinWeightProjectionEnumerator(q, db)]
    [((1,), 3.0), ((2,), 3.0)]
    """

    def __init__(
        self,
        query: JoinProjectQuery,
        db: Database,
        ranking: RankingFunction | None = None,
        *,
        dedup_inserts: bool = True,
    ):
        self.query = query
        self.db = db
        self.ranking = ranking or SumRanking()
        self.full_query = query.full_version()
        self._projection = tuple(self.full_query.head.index(v) for v in query.head)
        self._inner = AcyclicRankedEnumerator(
            self.full_query, db, self.ranking, dedup_inserts=dedup_inserts
        )
        self.stats = EnumerationStats()
        self._exhausted = False

    def preprocess(self) -> "MinWeightProjectionEnumerator":
        """Preprocess the full-query enumerator."""
        started = time.perf_counter()
        self._inner.preprocess()
        self.stats.preprocess_seconds = time.perf_counter() - started
        return self

    def __iter__(self) -> Iterator[RankedAnswer]:
        self.preprocess()
        if self._exhausted:
            raise QueryError(
                "enumerator already consumed; call fresh() to enumerate again"
            )
        self._exhausted = True
        seen: set[tuple] = set()
        proj = self._projection
        for full_answer in self._inner:
            values = tuple(full_answer.values[i] for i in proj)
            if values in seen:
                continue
            seen.add(values)
            self.stats.answers += 1
            yield RankedAnswer(values, full_answer.score, key=full_answer.key)

    def fresh(self) -> "MinWeightProjectionEnumerator":
        """A new enumerator with identical configuration."""
        return MinWeightProjectionEnumerator(self.query, self.db, self.ranking)
