"""The paper's main result: ranked enumeration for acyclic join-project
queries (Theorem 1, Algorithms 1 and 2 — ``LinDelay``).

Guarantees: after ``O(|D|)`` preprocessing, results of any acyclic
join-project query are enumerated in rank order, without duplicates,
with worst-case delay ``O(|D| log |D|)`` per answer — and ``O(log |D|)``
for full / free-connex queries (Appendix E), ``O(Δ log |D|)`` under
degree bounds (Appendix D).

How it works
------------
Every join-tree node ``i`` incrementally materialises the *distinct*
ranked partial outputs of its subtree over ``A^π_i``, grouped by anchor
value.  The state per node is a family of priority queues
``PQ_i[u]`` (``u`` an anchor value) holding :class:`~repro.core.cell.Cell`
objects; the queue comparator is ``(rank key, partial output)``.

* **Preprocessing (Algorithm 1)**: full-reducer pass, then bottom-up cell
  construction — a leaf cell per tuple; an internal cell per tuple
  pointing at the current top of each child queue it joins with.
* **Enumeration (Algorithm 2)**: pop the root queue; emit if the output
  differs from the previous one; then ``Topdown`` regenerates
  candidates: it pops every cell of the group that produces the same
  partial output (on-the-fly deduplication), advances each child pointer
  through the child's ``next`` chain (computing it recursively on first
  demand, reusing it in O(1) afterwards) and inserts the successor
  cells.  The ``next`` chain per node/anchor group memoises the sequence
  of distinct ranked partial outputs so sibling parents never repeat the
  work — this is the paper's key to the ``O(|D| log |D|)`` delay.

Engineering notes (see DESIGN.md §6):

* ``prune=True`` drops maximal subtrees without projection variables
  after the reducer pass (they are pure filters — Lemma 1's opening
  assumption).
* ``dedup_inserts=True`` suppresses re-insertion of a cell combination
  reachable through several predecessors (Lawler lattice duplication);
  a per-queue seen-set keyed on ``(tuple, child cell identities)``.
  Benchmarked as an ablation.
"""

from __future__ import annotations

import time
from typing import Any, Iterator, Mapping, Sequence

from ..algorithms.yannakakis import atom_instances, full_reduce
from ..data.database import Database
from ..errors import QueryError
from ..query.jointree import JoinTree, JoinTreeNode, build_join_tree
from ..query.query import JoinProjectQuery
from ..storage import kernels
from .answers import EnumerationStats, RankedAnswer
from .base import RankedEnumeratorBase
from .cell import Cell, UNSET
from .heap import HeapStats, RankHeap
from .ranking import (
    BoundRanking,
    RankingFunction,
    SumRanking,
    batched_node_key_array,
    batched_node_keys,
    combine_counters,
    topk_counters,
)

__all__ = ["AcyclicRankedEnumerator", "BULK_TOPK_MAX_K"]

Row = tuple

#: Default ``k`` ceiling for the bulk top-k kernel when the engine layer
#: enables it (:meth:`repro.engine.prepared.PreparedPlan.make_enumerator`).
#: Above it the incremental heap wins: bulk materialises every candidate
#: answer, which is the right trade only while k stays small relative to
#: the output.  Direct enumerator construction defaults to *disabled*
#: (``bulk_topk_max_k=0``) — the class embodies the paper's any-delay
#: algorithm and keeps its per-answer cost profile unless asked.
BULK_TOPK_MAX_K = 256

#: Refuse the bulk kernel when an intermediate join materialises more
#: than this many rows — the heap path's laziness is the better trade.
BULK_TOPK_ROW_CAP = 5_000_000


class _RTNode:
    """Runtime join-tree node: positions precomputed, queues attached."""

    __slots__ = (
        "alias",
        "variables",
        "children",
        "anchor_positions",
        "child_key_positions",
        "own_pairs",
        "own_positions",
        "out_vars",
        "out_plan",
        "pqs",
        "seen",
        "is_root",
        "batched",
    )

    def __init__(
        self,
        tree_node: JoinTreeNode,
        children: list["_RTNode"],
        head_position: Mapping[str, int],
    ):
        self.alias = tree_node.alias
        self.variables = tree_node.atom.variables
        self.children = children
        self.anchor_positions = tuple(
            self.variables.index(v) for v in tree_node.anchor
        )
        # For each child: positions *in this node's tuple* of the child's
        # anchor variables (the key into the child's queue family).
        self.child_key_positions = tuple(
            tuple(self.variables.index(v) for v in c_node.anchor)
            for c_node in tree_node.children
        )
        # Owned head variables, kept sorted by their global head position
        # so that every partial output is a subsequence of the head order
        # and tie-breaking matches ORDER BY semantics exactly.
        own = sorted(tree_node.own_head_vars, key=lambda v: head_position[v])
        self.own_pairs = tuple((v, self.variables.index(v)) for v in own)
        self.own_positions = tuple(p for _, p in self.own_pairs)
        # Merge plan: the subtree's output variables in head order, each
        # mapped to (source part, offset) where part 0 is the node's own
        # values and part i+1 is child i's partial output.
        merged: list[tuple[str, int, int]] = [
            (v, 0, i) for i, v in enumerate(own)
        ]
        for c_idx, child in enumerate(children):
            merged.extend(
                (v, c_idx + 1, j) for j, v in enumerate(child.out_vars)
            )
        merged.sort(key=lambda item: head_position[item[0]])
        self.out_vars = tuple(v for v, _, _ in merged)
        self.out_plan = tuple((src, off) for _, src, off in merged)
        self.pqs: dict[tuple, RankHeap[Cell]] = {}
        self.seen: dict[tuple, set] = {}
        self.is_root = tree_node.is_root
        # True when every initial cell key of this node came through the
        # float64 array path (or is the ranking's empty-set constant) —
        # the precondition for a parent to gather this node's top keys
        # into an array.  A scalar-keyed child (e.g. huge-int identity
        # weights that float64 cannot hold) forces scalar combine upward.
        self.batched = False

    def anchor_of(self, row: Row) -> tuple:
        return tuple(row[i] for i in self.anchor_positions)


class AcyclicRankedEnumerator(RankedEnumeratorBase):
    """Ranked enumeration for acyclic join-project queries (Theorem 1).

    Parameters
    ----------
    query:
        An acyclic :class:`JoinProjectQuery`.
    db:
        The database instance.
    ranking:
        A :class:`RankingFunction`; defaults to ascending ``SUM`` with
        identity weights (numeric head values).
    join_tree:
        Optional pre-built join tree (must belong to ``query``).
    root:
        Optional atom alias to root the tree at (the paper shows the
        choice does not matter asymptotically; benchmarks sweep it).
    prune:
        Drop output-free subtrees after the reducer pass (default on).
    dedup_inserts:
        Suppress duplicate successor insertions (default on).

    Usage
    -----
    >>> from repro.data import Database
    >>> from repro.query import parse_query
    >>> db = Database()
    >>> _ = db.add_relation("R", ("a", "b"), [(1, 10), (2, 10), (1, 20)])
    >>> q = parse_query("Q(a1, a2) :- R(a1, p), R(a2, p)")
    >>> enum = AcyclicRankedEnumerator(q, db)
    >>> [a.values for a in enum.top_k(3)]
    [(1, 1), (1, 2), (2, 1)]

    The object is one-shot per enumeration: iterating consumes the
    queues.  Call :meth:`fresh` (cheap re-preprocess) to enumerate again.
    """

    def __init__(
        self,
        query: JoinProjectQuery,
        db: Database,
        ranking: RankingFunction | None = None,
        *,
        join_tree: JoinTree | None = None,
        root: str | None = None,
        prune: bool = True,
        dedup_inserts: bool = True,
        instances: Mapping[str, list[Row]] | None = None,
        already_reduced: bool = False,
        bulk_topk_max_k: int = 0,
    ):
        self.query = query
        self.db = db
        self.ranking = ranking or SumRanking()
        self._prune = prune
        self._dedup_inserts = dedup_inserts
        self._given_instances = instances
        self._already_reduced = already_reduced
        self._bulk_topk_max_k = int(bulk_topk_max_k)

        if join_tree is None:
            join_tree = build_join_tree(query, root=root)
        elif root is not None and join_tree.root.alias != root:
            join_tree = join_tree.rerooted(root)
        if join_tree.query.head != query.head:
            raise QueryError("join tree belongs to a different query head")
        self.join_tree = join_tree

        positions = {v: i for i, v in enumerate(query.head)}
        self.bound: BoundRanking = self.ranking.bind(positions)

        self.heap_stats = HeapStats()
        self.stats = EnumerationStats(self.heap_stats)
        self._root_rt: _RTNode | None = None
        self._head_reorder: tuple[int, ...] = ()
        self._preprocessed = False
        self._exhausted = False
        self._instances: Mapping[str, list[Row]] | None = None
        self._tree: JoinTree | None = None

    # ------------------------------------------------------------------ #
    # preprocessing (Algorithm 1)
    # ------------------------------------------------------------------ #
    def _prepare_instances(self):
        """Reducer pass + pruning, shared by queue build and bulk top-k.

        The given instances are used as-is (full_reduce copies before
        filtering, downstream code only reads) so that warm
        ReducedInstances keep their source-view bindings and survivor
        arrays — that metadata is what lets the batched key paths gather
        storage-cached score columns instead of re-weighing every row.
        """
        if self._instances is not None:
            return self._instances, self._tree
        started = time.perf_counter()
        if self._given_instances is not None:
            instances = self._given_instances
        else:
            instances = atom_instances(self.query, self.db)
        if not self._already_reduced:
            instances = full_reduce(self.join_tree, instances)
        tree = self.join_tree
        if self._prune:
            tree, _dropped = tree.pruned()
        self._instances = instances
        self._tree = tree
        self.stats.reduce_seconds += time.perf_counter() - started
        return instances, tree

    def preprocess(self) -> "AcyclicRankedEnumerator":
        """Run the full reducer and build all per-node priority queues."""
        if self._preprocessed:
            return self
        instances, tree = self._prepare_instances()
        started = time.perf_counter()

        head_position = {v: i for i, v in enumerate(self.query.head)}
        rt_by_alias: dict[str, _RTNode] = {}
        for node in tree.post_order():
            children_rt = [rt_by_alias[c.alias] for c in node.children]
            rt = _RTNode(node, children_rt, head_position)
            rt_by_alias[node.alias] = rt
            # Vectorised scoring: the node's per-row keys in one array
            # pass over its score columns, scalar fallback otherwise.
            own_keys = batched_node_keys(self.bound, instances, node.alias, rt.own_pairs)
            self._build_node_queues(rt, instances[node.alias], own_keys)
        self._root_rt = rt_by_alias[tree.root.alias]
        # Partial outputs are kept in head order throughout, so the root
        # output aligns with the query head directly.
        if self._root_rt.out_vars != self.query.head:
            raise QueryError(
                f"internal error: root output {self._root_rt.out_vars} does not "
                f"match head {self.query.head}"
            )
        self._head_reorder = tuple(range(len(self.query.head)))

        self._preprocessed = True
        self.stats.build_seconds += time.perf_counter() - started
        self.stats.preprocess_seconds = (
            self.stats.reduce_seconds + self.stats.build_seconds
        )
        return self

    def _build_node_queues(
        self, rt: _RTNode, rows: Sequence[Row], own_keys: Sequence | None = None
    ) -> None:
        bound = self.bound
        make_key = bound.key
        combine = bound.combine
        # Initial cells are unique combinations (rows are distinct and
        # all point at the current child tops), so duplicate tracking is
        # skipped; entries are grouped per anchor and heapified in one
        # pass (RankHeap.push_many) instead of pushed one at a time.
        groups: dict[tuple, list[tuple[tuple, Cell]]] = {}
        batched = self._batched_combine(rt, rows, own_keys) if rt.children else None
        if batched is not None:
            rt.batched = True
            keys, row_children = batched
            zero_key = None if rt.own_pairs else make_key([])
            for i, row in enumerate(rows):
                children = row_children[i]
                if children is None:
                    continue  # dangling row (see the scalar branch below)
                own_key = own_keys[i] if own_keys is not None else zero_key
                own_out = tuple(row[p] for p in rt.own_positions)
                key = keys[i]
                out = self._layout(rt, own_out, children)
                cell = Cell(row, children, key, out, own_key, own_out)
                self.stats.cells_created += 1
                u = tuple(row[j] for j in rt.anchor_positions)
                entries = groups.get(u)
                if entries is None:
                    entries = groups[u] = []
                entries.append(((key, out), cell))
        else:
            if not rt.children:
                # Leaf keys either came out of one array pass or are
                # the ranking's empty-set constant — both exactly
                # float64-representable, so parents may gather them.
                rt.batched = (own_keys is not None or not rt.own_pairs) and (
                    bound.batch_weight() is not None
                )
            for i, row in enumerate(rows):
                if own_keys is not None:
                    own_key = own_keys[i]
                else:
                    own_key = make_key([(v, row[p]) for v, p in rt.own_pairs])
                own_out = tuple(row[p] for p in rt.own_positions)
                if rt.children:
                    child_cells = []
                    dead = False
                    for child_rt, key_pos in zip(rt.children, rt.child_key_positions):
                        ck = tuple(row[j] for j in key_pos)
                        pq = child_rt.pqs.get(ck)
                        if pq is None or not pq:
                            # Can only happen when the caller passed
                            # unreduced instances with
                            # already_reduced=True; treat the tuple as
                            # dangling and skip it.
                            dead = True
                            break
                        child_cells.append(pq.top())
                    if dead:
                        continue
                    children = tuple(child_cells)
                    key = combine([own_key] + [c.key for c in children])
                    out = self._layout(rt, own_out, children)
                else:
                    children = ()
                    key = own_key
                    out = own_out
                cell = Cell(row, children, key, out, own_key, own_out)
                self.stats.cells_created += 1
                u = tuple(row[j] for j in rt.anchor_positions)
                entries = groups.get(u)
                if entries is None:
                    entries = groups[u] = []
                entries.append(((key, out), cell))
        for u, entries in groups.items():
            pq = RankHeap(self.heap_stats)
            pq.push_many(entries)
            rt.pqs[u] = pq

    def _batched_combine(self, rt: _RTNode, rows: Sequence[Row], own_keys):
        """Per-row combined keys + child-top cells through array passes.

        Returns ``(keys, children_per_row)`` — ``keys[i]`` bit-identical
        to the scalar ``combine([own_key] + child top keys)`` and
        ``children_per_row[i]`` the matching child-top cells (``None``
        for dangling rows) — or ``None`` to refuse, in which case the
        per-row scalar loop runs unchanged.  The match of each row
        against each child's queue-family keys runs as one
        sort-and-search kernel pass per child instead of a dict lookup
        per row, and the key combine as one array expression per node.
        """
        bound = self.bound
        if not rows or not kernels.enabled():
            return None
        if bound.batch_weight() is None:
            combine_counters.record_fallback("unbatchable-ranking")
            return None
        if own_keys is None and rt.own_pairs:
            # The node's own keys did not come out of the array path, so
            # per-row floats are not available to combine with.
            combine_counters.record_fallback("no-key-array")
            return None
        if any(not child.batched for child in rt.children):
            combine_counters.record_fallback("scalar-child-keys")
            return None
        np = kernels.np
        n = len(rows)
        if own_keys is not None:
            own_arr = np.asarray(own_keys, dtype=np.float64)
        else:
            own_arr = np.full(n, float(bound.zero))
        valid = np.ones(n, dtype=bool)
        key_arrays = [own_arr]
        child_tops: list[list[Cell]] = []
        child_fam_idx: list = []
        for child_rt, key_pos in zip(rt.children, rt.child_key_positions):
            fams = child_rt.pqs
            if not fams:
                valid[:] = False
                child_tops.append([])
                child_fam_idx.append(np.zeros(n, dtype=np.int64))
                key_arrays.append(np.zeros(n))
                continue
            tops = [pq.top() for pq in fams.values()]
            if not key_pos:
                idx = np.zeros(n, dtype=np.int64)  # single ()-anchored family
            else:
                parent_cols = kernels.key_columns(rows, key_pos)
                if parent_cols is None:
                    combine_counters.record_fallback("conversion")
                    return None
                fam_cols = kernels.key_columns(
                    list(fams.keys()), range(len(key_pos))
                )
                if fam_cols is None:
                    combine_counters.record_fallback("conversion")
                    return None
                packed = kernels.pack_pair(parent_cols, fam_cols)
                if packed is None:
                    combine_counters.record_fallback("pack-overflow")
                    return None
                p_keys, f_keys = packed
                order = np.argsort(f_keys)
                sf = f_keys[order]
                pos = np.minimum(np.searchsorted(sf, p_keys), len(sf) - 1)
                valid &= sf[pos] == p_keys
                idx = order[pos]
            top_keys = np.array([top.key for top in tops], dtype=np.float64)
            child_tops.append(tops)
            child_fam_idx.append(idx)
            key_arrays.append(top_keys[idx])
        combined = bound.combine_key_arrays(key_arrays)
        if combined is None:
            combine_counters.record_fallback("combine-refused")
            return None
        combine_counters.record_call()
        keys = combined.tolist()
        valid_list = valid.tolist()
        idx_lists = [idx.tolist() for idx in child_fam_idx]
        children_per_row: list[tuple[Cell, ...] | None] = []
        append = children_per_row.append
        for i in range(n):
            if not valid_list[i]:
                append(None)
                continue
            append(tuple(tops[il[i]] for tops, il in zip(child_tops, idx_lists)))
        return keys, children_per_row

    def _layout(self, rt: _RTNode, own_out: tuple, children: tuple[Cell, ...]) -> tuple:
        """Partial output in global head order (see ``_RTNode.out_plan``)."""
        if not children:
            return own_out
        parts = (own_out,) + tuple(c.out for c in children)
        return tuple(parts[src][off] for src, off in rt.out_plan)

    def _push(self, rt: _RTNode, cell: Cell, *, track: bool = True) -> bool:
        row = cell.row
        u = tuple(row[i] for i in rt.anchor_positions)
        if track and self._dedup_inserts:
            seen = rt.seen.get(u)
            if seen is None:
                seen = set()
                rt.seen[u] = seen
            ident = cell.identity()
            if ident in seen:
                return False
            seen.add(ident)
        pq = rt.pqs.get(u)
        if pq is None:
            pq = RankHeap(self.heap_stats)
            rt.pqs[u] = pq
        pq.push((cell.key, cell.out), cell)
        return True

    # ------------------------------------------------------------------ #
    # enumeration (Algorithm 2)
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[RankedAnswer]:
        """Enumerate ``Q(D)`` in rank order without duplicates.

        Strictly monotone rankings (SUM, LEX, composites on them) stream
        straight off the root queue: every group of cells with the same
        partial output is popped at once and can never reappear.  Weakly
        monotone rankings (MIN/MAX/PRODUCT) buffer one *key* group at a
        time: within an equal-key run, successor cells can arrive out of
        output order (and re-produce an output seen earlier in the run),
        so the run is collected fully, de-duplicated and emitted sorted.
        """
        self.preprocess()
        if self._exhausted:
            raise QueryError(
                "enumerator already consumed; call fresh() to enumerate again"
            )
        self._exhausted = True
        root = self._root_rt
        assert root is not None
        pq = root.pqs.get(())
        if self.bound.strictly_monotone:
            yield from self._iter_streaming(pq, root)
        else:
            yield from self._iter_key_groups(pq, root)

    def _iter_streaming(self, pq, root: _RTNode) -> Iterator[RankedAnswer]:
        final_score = self.bound.final_score
        ops_mark = self.heap_stats.operations
        last_out = None
        while pq:
            top = pq.top()
            if top.out != last_out:  # Algorithm 2 line 5 (defensive; see note)
                last_out = top.out
                self.stats.answers += 1
                ops_now = self.heap_stats.operations
                self.stats.pq_ops_per_answer.append(ops_now - ops_mark)
                ops_mark = ops_now
                yield RankedAnswer(top.out, final_score(top.key), key=top.key)
            self._topdown(top, root)

    def _iter_key_groups(self, pq, root: _RTNode) -> Iterator[RankedAnswer]:
        final_score = self.bound.final_score
        ops_mark = self.heap_stats.operations
        while pq:
            key = pq.top().key
            outs: set[tuple] = set()
            # Drain the whole equal-key run; weak monotonicity guarantees
            # every ancestor of a key-k cell also has key <= k, so all
            # key-k cells surface before the run ends.
            while pq and pq.top().key == key:
                top = pq.top()
                outs.add(top.out)
                self._topdown(top, root)
            ops_now = self.heap_stats.operations
            group_ops = ops_now - ops_mark
            ops_mark = ops_now
            score = final_score(key)
            for i, out in enumerate(sorted(outs)):
                self.stats.answers += 1
                self.stats.pq_ops_per_answer.append(group_ops if i == 0 else 0)
                yield RankedAnswer(out, score, key=key)

    def _topdown(self, cell: Cell, rt: _RTNode) -> Cell | None:
        """Algorithm 2's ``Topdown``: advance a node/anchor group past the
        partial output of ``cell``, memoising the result on the chain."""
        nxt = cell.next
        if nxt is not UNSET:
            return nxt  # O(1) reuse of previously computed successor
        pq = rt.pqs[tuple(cell.row[i] for i in rt.anchor_positions)]
        combine = self.bound.combine
        children_rts = rt.children
        while True:
            temp = pq.pop()
            # Successors: advance each child pointer of the popped cell.
            for i, child_rt in enumerate(children_rts):
                advanced = self._topdown(temp.children[i], child_rt)
                if advanced is not None:
                    new_children = (
                        temp.children[:i] + (advanced,) + temp.children[i + 1 :]
                    )
                    key = combine([temp.own_key] + [c.key for c in new_children])
                    out = self._layout(rt, temp.own_out, new_children)
                    successor = Cell(
                        temp.row, new_children, key, out, temp.own_key, temp.own_out
                    )
                    if self._push(rt, successor):
                        self.stats.cells_created += 1
            if not pq:
                cell.next = None
                break
            top = pq.top()
            if not rt.is_root:
                cell.next = top
            if not temp.same_output(top):
                break
        if rt.is_root:
            return None  # the root chain is never consulted
        return cell.next

    # ------------------------------------------------------------------ #
    # bulk top-k (vectorised small-k serve)
    # ------------------------------------------------------------------ #
    def top_k(self, k: int) -> list[RankedAnswer]:
        """First ``k`` answers; small k may be served by the bulk kernel.

        When ``bulk_topk_max_k`` is set (the engine layer does, direct
        construction defaults to off), ``k`` is at or below it and the
        ranking is batched-capable, the answer prefix is computed in one
        materialise-partition-sort pass over arrays
        (:meth:`_bulk_topk`) — bit-identical to the heap emission, ties
        included.  Any refusal falls back to the incremental heap path
        with its delay guarantees intact, counted in
        ``bulk_topk_fallbacks``.
        """
        limit = self._bulk_topk_max_k
        if (
            limit > 0
            and 0 < k <= limit
            and not self._exhausted
            and not self._preprocessed
            and kernels.enabled()
        ):
            if self.bound.batch_weight() is None:
                topk_counters.record_fallback("unbatchable-ranking")
            else:
                answers = self._bulk_topk(k)
                if answers is not None:
                    topk_counters.record_call()
                    return answers
                topk_counters.record_fallback("refused")
        return super().top_k(k)

    def _bulk_topk(self, k: int) -> list[RankedAnswer] | None:
        """One array pass from reduced instances to the k best answers.

        Post-order over the join tree, each node's state three aligned
        array groups: anchor columns, output columns (head order) and a
        float64 key per distinct (anchor, output) partial answer.  A
        node joins its rows against each child state on the anchor
        (``pack_pair`` + ``join_indices``), combines keys with the same
        nested structure as the scalar ``combine([own] + children)``
        (float addition is not associative — structure is identity),
        dedups with ``distinct_indices`` (a partial answer's key is a
        pure function of its output values, so any representative's key
        is *the* key), and the root selects k via ``np.partition`` on
        the kth key, an ``<=``-mask that keeps boundary ties, and one
        ``lexsort`` by (key, output) — exactly the heap's emission
        order, weakly-monotone key-group sorting included.  Returns
        ``None`` to refuse (the heap path then runs unchanged).
        """
        np = kernels.np
        bound = self.bound
        instances, tree = self._prepare_instances()
        started = time.perf_counter()
        head_position = {v: i for i, v in enumerate(self.query.head)}
        states: dict[str, tuple] = {}
        rt_by_alias: dict[str, _RTNode] = {}
        for node in tree.post_order():
            rows = instances[node.alias]
            children_rt = [rt_by_alias[c.alias] for c in node.children]
            rt = _RTNode(node, children_rt, head_position)
            rt_by_alias[node.alias] = rt
            if not rows:
                # Reduced instances: one empty relation empties the output.
                self._exhausted = True
                self.stats.enumerate_seconds += time.perf_counter() - started
                return []
            if rt.own_pairs and not kernels.rows_exactly_int(rows, rt.own_positions):
                return None  # output rebuild would normalise bool/IntEnum
            if rt.own_pairs:
                own_arr = batched_node_key_array(
                    bound, instances, node.alias, rt.own_pairs
                )
                if own_arr is None:
                    return None
            else:
                own_arr = np.full(len(rows), float(bound.zero))
            needed = set(rt.anchor_positions) | set(rt.own_positions)
            for key_pos in rt.child_key_positions:
                needed.update(key_pos)
            cols = {}
            for p in needed:
                col = kernels.column_array([row[p] for row in rows])
                if col is None:
                    return None
                cols[p] = col
            sel = np.arange(len(rows))
            acc_child_cols: list[list] = []
            acc_child_keys: list = []
            for child_rt, key_pos in zip(children_rt, rt.child_key_positions):
                c_anchor, c_out, c_keys = states[child_rt.alias]
                parent_key_cols = [cols[p][sel] for p in key_pos]
                if key_pos:
                    packed = kernels.pack_pair(parent_key_cols, list(c_anchor))
                    if packed is None:
                        return None
                    p_keys, ca_keys = packed
                else:
                    p_keys = np.zeros(len(sel), dtype=np.int64)
                    ca_keys = np.zeros(len(c_keys), dtype=np.int64)
                li, ri = kernels.join_indices(p_keys, ca_keys)
                if len(li) > BULK_TOPK_ROW_CAP:
                    return None
                sel = sel[li]
                acc_child_cols = [
                    [col[li] for col in colset] for colset in acc_child_cols
                ]
                acc_child_keys = [arr[li] for arr in acc_child_keys]
                acc_child_cols.append([col[ri] for col in c_out])
                acc_child_keys.append(c_keys[ri])
            if acc_child_keys:
                keys = bound.combine_key_arrays([own_arr[sel]] + acc_child_keys)
                if keys is None:
                    return None
            else:
                # Leaves take their own key verbatim — the scalar path
                # applies combine() only when children exist (and e.g.
                # PRODUCT's combine strips key signs that must survive).
                keys = own_arr[sel]
            anchor_cols = [cols[p][sel] for p in rt.anchor_positions]
            own_out_cols = [cols[p][sel] for p in rt.own_positions]
            parts = [own_out_cols] + acc_child_cols
            out_cols = [parts[src][off] for src, off in rt.out_plan]
            dedup_cols = anchor_cols + out_cols
            if dedup_cols:
                matrix = np.stack(dedup_cols, axis=1)
            else:
                matrix = np.empty((len(sel), 0), dtype=np.int64)
            first = kernels.distinct_indices(matrix)
            if first is None:
                return None
            anchor_cols = [c[first] for c in anchor_cols]
            out_cols = [c[first] for c in out_cols]
            keys = keys[first]
            states[node.alias] = (anchor_cols, out_cols, keys)

        root_rt = rt_by_alias[tree.root.alias]
        if root_rt.out_vars != self.query.head:
            raise QueryError(
                f"internal error: root output {root_rt.out_vars} does not "
                f"match head {self.query.head}"
            )
        _anchor, out_cols, keys = states[tree.root.alias]
        n = len(keys)
        if n == 0:
            self._exhausted = True
            self.stats.enumerate_seconds += time.perf_counter() - started
            return []
        if n > k:
            kth = np.partition(keys, k - 1)[k - 1]
            mask = keys <= kth  # keep every boundary tie, truncate post-sort
            out_cols = [c[mask] for c in out_cols]
            keys = keys[mask]
        order = np.lexsort(tuple(reversed(out_cols)) + (keys,))[:k]
        out_matrix = np.stack([c[order] for c in out_cols], axis=1)
        final_score = bound.final_score
        answers = [
            RankedAnswer(tuple(values), final_score(key), key=key)
            for values, key in zip(out_matrix.tolist(), keys[order].tolist())
        ]
        self._exhausted = True
        self.stats.answers += len(answers)
        self.stats.enumerate_seconds += time.perf_counter() - started
        return answers

    # ------------------------------------------------------------------ #
    # conveniences
    # ------------------------------------------------------------------ #
    def fresh(self) -> "AcyclicRankedEnumerator":
        """A new enumerator with identical configuration (re-preprocesses)."""
        return AcyclicRankedEnumerator(
            self.query,
            self.db,
            self.ranking,
            join_tree=self.join_tree,
            prune=self._prune,
            dedup_inserts=self._dedup_inserts,
            instances=self._given_instances,
            already_reduced=self._already_reduced,
            bulk_topk_max_k=self._bulk_topk_max_k,
        )
