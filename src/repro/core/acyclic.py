"""The paper's main result: ranked enumeration for acyclic join-project
queries (Theorem 1, Algorithms 1 and 2 — ``LinDelay``).

Guarantees: after ``O(|D|)`` preprocessing, results of any acyclic
join-project query are enumerated in rank order, without duplicates,
with worst-case delay ``O(|D| log |D|)`` per answer — and ``O(log |D|)``
for full / free-connex queries (Appendix E), ``O(Δ log |D|)`` under
degree bounds (Appendix D).

How it works
------------
Every join-tree node ``i`` incrementally materialises the *distinct*
ranked partial outputs of its subtree over ``A^π_i``, grouped by anchor
value.  The state per node is a family of priority queues
``PQ_i[u]`` (``u`` an anchor value) holding :class:`~repro.core.cell.Cell`
objects; the queue comparator is ``(rank key, partial output)``.

* **Preprocessing (Algorithm 1)**: full-reducer pass, then bottom-up cell
  construction — a leaf cell per tuple; an internal cell per tuple
  pointing at the current top of each child queue it joins with.
* **Enumeration (Algorithm 2)**: pop the root queue; emit if the output
  differs from the previous one; then ``Topdown`` regenerates
  candidates: it pops every cell of the group that produces the same
  partial output (on-the-fly deduplication), advances each child pointer
  through the child's ``next`` chain (computing it recursively on first
  demand, reusing it in O(1) afterwards) and inserts the successor
  cells.  The ``next`` chain per node/anchor group memoises the sequence
  of distinct ranked partial outputs so sibling parents never repeat the
  work — this is the paper's key to the ``O(|D| log |D|)`` delay.

Engineering notes (see DESIGN.md §6):

* ``prune=True`` drops maximal subtrees without projection variables
  after the reducer pass (they are pure filters — Lemma 1's opening
  assumption).
* ``dedup_inserts=True`` suppresses re-insertion of a cell combination
  reachable through several predecessors (Lawler lattice duplication);
  a per-queue seen-set keyed on ``(tuple, child cell identities)``.
  Benchmarked as an ablation.
"""

from __future__ import annotations

import time
from typing import Any, Iterator, Mapping, Sequence

from ..algorithms.yannakakis import atom_instances, full_reduce
from ..data.database import Database
from ..errors import QueryError
from ..query.jointree import JoinTree, JoinTreeNode, build_join_tree
from ..query.query import JoinProjectQuery
from .answers import EnumerationStats, RankedAnswer
from .base import RankedEnumeratorBase
from .cell import Cell, UNSET
from .heap import HeapStats, RankHeap
from .ranking import BoundRanking, RankingFunction, SumRanking, batched_node_keys

__all__ = ["AcyclicRankedEnumerator"]

Row = tuple


class _RTNode:
    """Runtime join-tree node: positions precomputed, queues attached."""

    __slots__ = (
        "alias",
        "variables",
        "children",
        "anchor_positions",
        "child_key_positions",
        "own_pairs",
        "own_positions",
        "out_vars",
        "out_plan",
        "pqs",
        "seen",
        "is_root",
    )

    def __init__(
        self,
        tree_node: JoinTreeNode,
        children: list["_RTNode"],
        head_position: Mapping[str, int],
    ):
        self.alias = tree_node.alias
        self.variables = tree_node.atom.variables
        self.children = children
        self.anchor_positions = tuple(
            self.variables.index(v) for v in tree_node.anchor
        )
        # For each child: positions *in this node's tuple* of the child's
        # anchor variables (the key into the child's queue family).
        self.child_key_positions = tuple(
            tuple(self.variables.index(v) for v in c_node.anchor)
            for c_node in tree_node.children
        )
        # Owned head variables, kept sorted by their global head position
        # so that every partial output is a subsequence of the head order
        # and tie-breaking matches ORDER BY semantics exactly.
        own = sorted(tree_node.own_head_vars, key=lambda v: head_position[v])
        self.own_pairs = tuple((v, self.variables.index(v)) for v in own)
        self.own_positions = tuple(p for _, p in self.own_pairs)
        # Merge plan: the subtree's output variables in head order, each
        # mapped to (source part, offset) where part 0 is the node's own
        # values and part i+1 is child i's partial output.
        merged: list[tuple[str, int, int]] = [
            (v, 0, i) for i, v in enumerate(own)
        ]
        for c_idx, child in enumerate(children):
            merged.extend(
                (v, c_idx + 1, j) for j, v in enumerate(child.out_vars)
            )
        merged.sort(key=lambda item: head_position[item[0]])
        self.out_vars = tuple(v for v, _, _ in merged)
        self.out_plan = tuple((src, off) for _, src, off in merged)
        self.pqs: dict[tuple, RankHeap[Cell]] = {}
        self.seen: dict[tuple, set] = {}
        self.is_root = tree_node.is_root

    def anchor_of(self, row: Row) -> tuple:
        return tuple(row[i] for i in self.anchor_positions)


class AcyclicRankedEnumerator(RankedEnumeratorBase):
    """Ranked enumeration for acyclic join-project queries (Theorem 1).

    Parameters
    ----------
    query:
        An acyclic :class:`JoinProjectQuery`.
    db:
        The database instance.
    ranking:
        A :class:`RankingFunction`; defaults to ascending ``SUM`` with
        identity weights (numeric head values).
    join_tree:
        Optional pre-built join tree (must belong to ``query``).
    root:
        Optional atom alias to root the tree at (the paper shows the
        choice does not matter asymptotically; benchmarks sweep it).
    prune:
        Drop output-free subtrees after the reducer pass (default on).
    dedup_inserts:
        Suppress duplicate successor insertions (default on).

    Usage
    -----
    >>> from repro.data import Database
    >>> from repro.query import parse_query
    >>> db = Database()
    >>> _ = db.add_relation("R", ("a", "b"), [(1, 10), (2, 10), (1, 20)])
    >>> q = parse_query("Q(a1, a2) :- R(a1, p), R(a2, p)")
    >>> enum = AcyclicRankedEnumerator(q, db)
    >>> [a.values for a in enum.top_k(3)]
    [(1, 1), (1, 2), (2, 1)]

    The object is one-shot per enumeration: iterating consumes the
    queues.  Call :meth:`fresh` (cheap re-preprocess) to enumerate again.
    """

    def __init__(
        self,
        query: JoinProjectQuery,
        db: Database,
        ranking: RankingFunction | None = None,
        *,
        join_tree: JoinTree | None = None,
        root: str | None = None,
        prune: bool = True,
        dedup_inserts: bool = True,
        instances: Mapping[str, list[Row]] | None = None,
        already_reduced: bool = False,
    ):
        self.query = query
        self.db = db
        self.ranking = ranking or SumRanking()
        self._prune = prune
        self._dedup_inserts = dedup_inserts
        self._given_instances = instances
        self._already_reduced = already_reduced

        if join_tree is None:
            join_tree = build_join_tree(query, root=root)
        elif root is not None and join_tree.root.alias != root:
            join_tree = join_tree.rerooted(root)
        if join_tree.query.head != query.head:
            raise QueryError("join tree belongs to a different query head")
        self.join_tree = join_tree

        positions = {v: i for i, v in enumerate(query.head)}
        self.bound: BoundRanking = self.ranking.bind(positions)

        self.heap_stats = HeapStats()
        self.stats = EnumerationStats(self.heap_stats)
        self._root_rt: _RTNode | None = None
        self._head_reorder: tuple[int, ...] = ()
        self._preprocessed = False
        self._exhausted = False

    # ------------------------------------------------------------------ #
    # preprocessing (Algorithm 1)
    # ------------------------------------------------------------------ #
    def preprocess(self) -> "AcyclicRankedEnumerator":
        """Run the full reducer and build all per-node priority queues."""
        if self._preprocessed:
            return self
        started = time.perf_counter()

        # The given instances are used as-is (full_reduce copies before
        # filtering, queue construction only reads) so that warm
        # ReducedInstances keep their source-view bindings and survivor
        # arrays — that metadata is what lets the batched key path below
        # gather storage-cached score columns instead of re-weighing
        # every row.
        if self._given_instances is not None:
            instances = self._given_instances
        else:
            instances = atom_instances(self.query, self.db)
        if not self._already_reduced:
            instances = full_reduce(self.join_tree, instances)

        tree = self.join_tree
        if self._prune:
            tree, _dropped = tree.pruned()

        head_position = {v: i for i, v in enumerate(self.query.head)}
        rt_by_alias: dict[str, _RTNode] = {}
        for node in tree.post_order():
            children_rt = [rt_by_alias[c.alias] for c in node.children]
            rt = _RTNode(node, children_rt, head_position)
            rt_by_alias[node.alias] = rt
            # Vectorised scoring: the node's per-row keys in one array
            # pass over its score columns, scalar fallback otherwise.
            own_keys = batched_node_keys(self.bound, instances, node.alias, rt.own_pairs)
            self._build_node_queues(rt, instances[node.alias], own_keys)
        self._root_rt = rt_by_alias[tree.root.alias]
        # Partial outputs are kept in head order throughout, so the root
        # output aligns with the query head directly.
        if self._root_rt.out_vars != self.query.head:
            raise QueryError(
                f"internal error: root output {self._root_rt.out_vars} does not "
                f"match head {self.query.head}"
            )
        self._head_reorder = tuple(range(len(self.query.head)))

        self._preprocessed = True
        self.stats.preprocess_seconds = time.perf_counter() - started
        return self

    def _build_node_queues(
        self, rt: _RTNode, rows: Sequence[Row], own_keys: Sequence | None = None
    ) -> None:
        bound = self.bound
        make_key = bound.key
        combine = bound.combine
        for i, row in enumerate(rows):
            if own_keys is not None:
                own_key = own_keys[i]
            else:
                own_key = make_key([(v, row[p]) for v, p in rt.own_pairs])
            own_out = tuple(row[p] for p in rt.own_positions)
            if rt.children:
                child_cells = []
                dead = False
                for child_rt, key_pos in zip(rt.children, rt.child_key_positions):
                    ck = tuple(row[i] for i in key_pos)
                    pq = child_rt.pqs.get(ck)
                    if pq is None or not pq:
                        # Can only happen when the caller passed unreduced
                        # instances with already_reduced=True; treat the
                        # tuple as dangling and skip it.
                        dead = True
                        break
                    child_cells.append(pq.top())
                if dead:
                    continue
                children = tuple(child_cells)
                key = combine([own_key] + [c.key for c in children])
                out = self._layout(rt, own_out, children)
            else:
                children = ()
                key = own_key
                out = own_out
            cell = Cell(row, children, key, out, own_key, own_out)
            self.stats.cells_created += 1
            # Initial cells are unique combinations (rows are distinct and
            # all point at the current child tops), so duplicate tracking
            # is skipped here; successors can never collide with them
            # because advancing a pointer always changes it.
            self._push(rt, cell, track=False)

    def _layout(self, rt: _RTNode, own_out: tuple, children: tuple[Cell, ...]) -> tuple:
        """Partial output in global head order (see ``_RTNode.out_plan``)."""
        if not children:
            return own_out
        parts = (own_out,) + tuple(c.out for c in children)
        return tuple(parts[src][off] for src, off in rt.out_plan)

    def _push(self, rt: _RTNode, cell: Cell, *, track: bool = True) -> bool:
        row = cell.row
        u = tuple(row[i] for i in rt.anchor_positions)
        if track and self._dedup_inserts:
            seen = rt.seen.get(u)
            if seen is None:
                seen = set()
                rt.seen[u] = seen
            ident = cell.identity()
            if ident in seen:
                return False
            seen.add(ident)
        pq = rt.pqs.get(u)
        if pq is None:
            pq = RankHeap(self.heap_stats)
            rt.pqs[u] = pq
        pq.push((cell.key, cell.out), cell)
        return True

    # ------------------------------------------------------------------ #
    # enumeration (Algorithm 2)
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[RankedAnswer]:
        """Enumerate ``Q(D)`` in rank order without duplicates.

        Strictly monotone rankings (SUM, LEX, composites on them) stream
        straight off the root queue: every group of cells with the same
        partial output is popped at once and can never reappear.  Weakly
        monotone rankings (MIN/MAX/PRODUCT) buffer one *key* group at a
        time: within an equal-key run, successor cells can arrive out of
        output order (and re-produce an output seen earlier in the run),
        so the run is collected fully, de-duplicated and emitted sorted.
        """
        self.preprocess()
        if self._exhausted:
            raise QueryError(
                "enumerator already consumed; call fresh() to enumerate again"
            )
        self._exhausted = True
        root = self._root_rt
        assert root is not None
        pq = root.pqs.get(())
        if self.bound.strictly_monotone:
            yield from self._iter_streaming(pq, root)
        else:
            yield from self._iter_key_groups(pq, root)

    def _iter_streaming(self, pq, root: _RTNode) -> Iterator[RankedAnswer]:
        final_score = self.bound.final_score
        ops_mark = self.heap_stats.operations
        last_out = None
        while pq:
            top = pq.top()
            if top.out != last_out:  # Algorithm 2 line 5 (defensive; see note)
                last_out = top.out
                self.stats.answers += 1
                ops_now = self.heap_stats.operations
                self.stats.pq_ops_per_answer.append(ops_now - ops_mark)
                ops_mark = ops_now
                yield RankedAnswer(top.out, final_score(top.key), key=top.key)
            self._topdown(top, root)

    def _iter_key_groups(self, pq, root: _RTNode) -> Iterator[RankedAnswer]:
        final_score = self.bound.final_score
        ops_mark = self.heap_stats.operations
        while pq:
            key = pq.top().key
            outs: set[tuple] = set()
            # Drain the whole equal-key run; weak monotonicity guarantees
            # every ancestor of a key-k cell also has key <= k, so all
            # key-k cells surface before the run ends.
            while pq and pq.top().key == key:
                top = pq.top()
                outs.add(top.out)
                self._topdown(top, root)
            ops_now = self.heap_stats.operations
            group_ops = ops_now - ops_mark
            ops_mark = ops_now
            score = final_score(key)
            for i, out in enumerate(sorted(outs)):
                self.stats.answers += 1
                self.stats.pq_ops_per_answer.append(group_ops if i == 0 else 0)
                yield RankedAnswer(out, score, key=key)

    def _topdown(self, cell: Cell, rt: _RTNode) -> Cell | None:
        """Algorithm 2's ``Topdown``: advance a node/anchor group past the
        partial output of ``cell``, memoising the result on the chain."""
        nxt = cell.next
        if nxt is not UNSET:
            return nxt  # O(1) reuse of previously computed successor
        pq = rt.pqs[tuple(cell.row[i] for i in rt.anchor_positions)]
        combine = self.bound.combine
        children_rts = rt.children
        while True:
            temp = pq.pop()
            # Successors: advance each child pointer of the popped cell.
            for i, child_rt in enumerate(children_rts):
                advanced = self._topdown(temp.children[i], child_rt)
                if advanced is not None:
                    new_children = (
                        temp.children[:i] + (advanced,) + temp.children[i + 1 :]
                    )
                    key = combine([temp.own_key] + [c.key for c in new_children])
                    out = self._layout(rt, temp.own_out, new_children)
                    successor = Cell(
                        temp.row, new_children, key, out, temp.own_key, temp.own_out
                    )
                    if self._push(rt, successor):
                        self.stats.cells_created += 1
            if not pq:
                cell.next = None
                break
            top = pq.top()
            if not rt.is_root:
                cell.next = top
            if not temp.same_output(top):
                break
        if rt.is_root:
            return None  # the root chain is never consulted
        return cell.next

    # ------------------------------------------------------------------ #
    # conveniences
    # ------------------------------------------------------------------ #
    def fresh(self) -> "AcyclicRankedEnumerator":
        """A new enumerator with identical configuration (re-preprocesses)."""
        return AcyclicRankedEnumerator(
            self.query,
            self.db,
            self.ranking,
            join_tree=self.join_tree,
            prune=self._prune,
            dedup_inserts=self._dedup_inserts,
            instances=self._given_instances,
            already_reduced=self._already_reduced,
        )
