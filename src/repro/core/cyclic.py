"""Ranked enumeration for cyclic queries via GHDs (paper §5, Theorem 3).

The recipe: pick a generalized hypertree decomposition of width
``fhw``; materialise, per bag, the join of the atoms it contains
(projected onto the bag variables, extended with unary domains for bag
variables covered only fractionally); the bag relations then form an
*acyclic* query over the bag tree, and Theorem 1's enumerator applies
unchanged.  Total: ``O(|D|^fhw log |D|)`` preprocessing and delay.

The materialisation is exact: every original atom is fully contained in
at least one bag (GHD property (i)) and is therefore enforced there; the
running-intersection property of the bag tree glues the bags back into
precisely the original join.

Note: Theorem 4's further improvement to submodular width uses PANDA's
data-dependent decompositions, which are out of scope (see DESIGN.md);
this module delivers the ``fhw`` bound, which already covers every
cyclic experiment in the paper (4/6/8-cycles, butterfly, bowtie).
"""

from __future__ import annotations

import time
from typing import Any, Iterator

from ..algorithms.yannakakis import atom_instances, instance_matrix
from ..data.database import Database
from ..data.index import group_by
from ..errors import DecompositionError
from ..query.ghd import GHD, find_ghd
from ..query.query import Atom, JoinProjectQuery
from ..storage import kernels
from .acyclic import AcyclicRankedEnumerator
from .answers import EnumerationStats, RankedAnswer
from .base import RankedEnumeratorBase
from .ranking import RankingFunction, SumRanking

__all__ = ["CyclicRankedEnumerator"]

Row = tuple


class CyclicRankedEnumerator(RankedEnumeratorBase):
    """Theorem 3: GHD materialisation + acyclic ranked enumeration.

    Parameters
    ----------
    query:
        Any join-project query (typically cyclic; acyclic inputs work
        too, with a single-bag or width-1 decomposition).
    db:
        The database instance.
    ranking:
        Any decomposable ranking; default ascending SUM.
    ghd:
        Optional pre-built decomposition; defaults to
        :func:`repro.query.ghd.find_ghd`.

    Attributes
    ----------
    materialised_tuples:
        Total bag-relation tuples built during preprocessing (the
        ``O(|D|^fhw)`` cost driver, reported by the cyclic benchmarks).
    """

    def __init__(
        self,
        query: JoinProjectQuery,
        db: Database,
        ranking: RankingFunction | None = None,
        *,
        ghd: GHD | None = None,
        dedup_inserts: bool = True,
    ):
        self.query = query
        self.db = db
        self.ranking = ranking or SumRanking()
        self.ghd = ghd if ghd is not None else find_ghd(query)
        if self.ghd.query.atoms != query.atoms:
            raise DecompositionError("the GHD belongs to a different query")
        self._dedup_inserts = dedup_inserts
        self.stats = EnumerationStats()
        self.materialised_tuples = 0
        self._inner: AcyclicRankedEnumerator | None = None
        self._exhausted = False

    # ------------------------------------------------------------------ #
    # preprocessing: bag materialisation
    # ------------------------------------------------------------------ #
    def preprocess(self) -> "CyclicRankedEnumerator":
        if self._inner is not None:
            return self
        started = time.perf_counter()

        instances = atom_instances(self.query, self.db)
        atoms_by_alias = {atom.alias: atom for atom in self.query.atoms}

        bag_db = Database()
        bag_atoms: list[Atom] = []
        for bag in self.ghd.bags:
            bag_vars = tuple(sorted(bag.variables))
            rows = self._materialise_bag(bag, bag_vars, instances, atoms_by_alias)
            self.materialised_tuples += len(rows)
            name = f"__bag{bag.bag_id}"
            bag_db.add_relation(name, bag_vars, rows)
            bag_atoms.append(Atom(name, bag_vars))

        bag_query = JoinProjectQuery(
            bag_atoms, self.query.head, name=f"{self.query.name}_ghd"
        )
        self._inner = AcyclicRankedEnumerator(
            bag_query,
            bag_db,
            self.ranking,
            dedup_inserts=self._dedup_inserts,
        )
        self._inner.preprocess()
        self.stats.preprocess_seconds = time.perf_counter() - started
        return self

    def _materialise_bag(
        self,
        bag,
        bag_vars: tuple[str, ...],
        instances: dict[str, list[Row]],
        atoms_by_alias: dict[str, Atom],
    ) -> list[Row]:
        """Join the atoms contained in a bag, extend uncovered variables
        with unary domains, project onto the bag and de-duplicate.

        Integer-coded instances (encoded execution, plain-int data) run
        the whole pipeline — joins, projection, dedup — as array
        kernels; the row-at-a-time hash join below is the automatic
        fallback and produces identical rows in identical order.
        """
        if kernels.enabled():
            rows = self._materialise_bag_kernel(bag, bag_vars, instances, atoms_by_alias)
            if rows is not None:
                return rows
            kernels.counters.record_fallback()
        components: list[tuple[tuple[str, ...], list[Row]]] = []
        covered: set[str] = set()
        for alias in bag.contained_atom_aliases:
            atom = atoms_by_alias[alias]
            components.append((atom.variables, instances[alias]))
            covered |= atom.var_set

        # Variables in the bag covered only fractionally by the edge
        # cover: give them their active domain (projection of the
        # smallest relation containing them) so the bag relation has the
        # full schema.  This is a superset of the true projection, which
        # is sound — the enforcing bag filters it during the join.
        for var in bag_vars:
            if var in covered:
                continue
            holders = [
                (alias, atom.variables.index(var))
                for alias, atom in atoms_by_alias.items()
                if var in atom.var_set
            ]
            if not holders:  # pragma: no cover - query validation precludes
                raise DecompositionError(f"variable {var!r} appears in no atom")
            alias, pos = min(holders, key=lambda ap: len(instances[ap[0]]))
            domain = sorted({row[pos] for row in instances[alias]})
            components.append(((var,), [(v,) for v in domain]))
            covered.add(var)

        # Greedy join order: always merge a component sharing variables
        # with the accumulated result when possible (delays cartesian
        # blow-ups to the end, where they are required by the cover).
        acc_vars, acc_rows = components[0]
        remaining = components[1:]
        while remaining:
            pick = next(
                (i for i, (vs, _r) in enumerate(remaining) if set(vs) & set(acc_vars)),
                0,
            )
            comp_vars, comp_rows = remaining.pop(pick)
            acc_rows, acc_vars = _hash_join(acc_rows, acc_vars, comp_rows, comp_vars)

        positions = tuple(acc_vars.index(v) for v in bag_vars)
        seen: set[Row] = set()
        out: list[Row] = []
        for row in acc_rows:
            projected = tuple(row[i] for i in positions)
            if projected not in seen:
                seen.add(projected)
                out.append(projected)
        return out

    def _materialise_bag_kernel(
        self,
        bag,
        bag_vars: tuple[str, ...],
        instances: dict[str, list[Row]],
        atoms_by_alias: dict[str, Atom],
    ) -> list[Row] | None:
        """The bag join as array kernels; ``None`` → row-at-a-time path.

        Mirrors the Python materialisation step for step — same
        component order, same greedy join order, same left-major join
        sequence, same first-occurrence dedup — so the returned rows
        are identical, in identical order.
        """
        np = kernels.np
        components: list[tuple[tuple[str, ...], Any]] = []
        covered: set[str] = set()
        for alias in bag.contained_atom_aliases:
            atom = atoms_by_alias[alias]
            matrix = instance_matrix(instances, alias, len(atom.variables))
            # Unlike the reducer (which re-emits the original tuples),
            # the bag rows are rebuilt from codes — so the inputs must
            # be exactly ints, not merely int-coercible (bool, IntEnum).
            if matrix is None or not kernels.rows_exactly_int(instances[alias]):
                return None
            components.append((atom.variables, matrix))
            covered |= atom.var_set

        for var in bag_vars:
            if var in covered:
                continue
            holders = [
                (alias, atom.variables.index(var))
                for alias, atom in atoms_by_alias.items()
                if var in atom.var_set
            ]
            if not holders:  # pragma: no cover - query validation precludes
                raise DecompositionError(f"variable {var!r} appears in no atom")
            alias, pos = min(holders, key=lambda ap: len(instances[ap[0]]))
            source = instance_matrix(
                instances, alias, len(atoms_by_alias[alias].variables)
            )
            if source is None or not kernels.rows_exactly_int(
                instances[alias], (pos,)
            ):
                return None
            # np.unique ascending == sorted(set(...)) on integers.
            components.append(((var,), np.unique(source[:, pos]).reshape(-1, 1)))
            covered.add(var)

        acc_vars, acc = components[0]
        remaining = components[1:]
        while remaining:
            pick = next(
                (i for i, (vs, _m) in enumerate(remaining) if set(vs) & set(acc_vars)),
                0,
            )
            comp_vars, comp = remaining.pop(pick)
            joined = _kernel_join(acc, acc_vars, comp, comp_vars)
            if joined is None:
                return None
            acc, acc_vars = joined

        positions = [acc_vars.index(v) for v in bag_vars]
        projected = acc[:, positions]
        first = kernels.distinct_indices(projected)
        if first is None:
            return None
        return [tuple(r) for r in projected[first].tolist()]

    # ------------------------------------------------------------------ #
    # enumeration: delegate to the acyclic enumerator over the bag tree
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[RankedAnswer]:
        self.preprocess()
        if self._exhausted:
            raise DecompositionError(
                "enumerator already consumed; call fresh() to enumerate again"
            )
        self._exhausted = True
        assert self._inner is not None
        yield from self._inner

    @property
    def inner_stats(self) -> EnumerationStats:
        """Statistics of the inner acyclic enumerator."""
        assert self._inner is not None, "preprocess first"
        return self._inner.stats

    def fresh(self) -> "CyclicRankedEnumerator":
        """A new enumerator with identical configuration."""
        return CyclicRankedEnumerator(
            self.query,
            self.db,
            self.ranking,
            ghd=self.ghd,
            dedup_inserts=self._dedup_inserts,
        )


def _kernel_join(
    left,
    left_vars: tuple[str, ...],
    right,
    right_vars: tuple[str, ...],
):
    """Hash join two code matrices (cartesian when disjoint).

    Output row order matches :func:`_hash_join` exactly: left-major,
    right matches in store order.  ``None`` when the join key does not
    pack into 64 bits.
    """
    np = kernels.np
    shared = [v for v in left_vars if v in right_vars]
    l_pos = tuple(left_vars.index(v) for v in shared)
    r_pos = tuple(right_vars.index(v) for v in shared)
    extra = [i for i, v in enumerate(right_vars) if v not in left_vars]
    out_vars = tuple(left_vars) + tuple(right_vars[i] for i in extra)
    width = len(out_vars)
    if len(left) == 0 or len(right) == 0:
        return np.empty((0, width), dtype=np.int64), out_vars
    if not l_pos:
        left_idx, right_idx = kernels.cross_indices(len(left), len(right))
    else:
        packed = kernels.pack_pair(
            [left[:, i] for i in l_pos], [right[:, j] for j in r_pos]
        )
        if packed is None:
            return None
        left_idx, right_idx = kernels.join_indices(*packed)
    parts = [left[left_idx]]
    if extra:
        parts.append(right[right_idx][:, extra])
    return (
        parts[0] if len(parts) == 1 else np.concatenate(parts, axis=1),
        out_vars,
    )


def _hash_join(
    left_rows: list[Row],
    left_vars: tuple[str, ...],
    right_rows: list[Row],
    right_vars: tuple[str, ...],
) -> tuple[list[Row], tuple[str, ...]]:
    """Hash join two positional row lists (cartesian when disjoint)."""
    shared = [v for v in left_vars if v in right_vars]
    l_pos = tuple(left_vars.index(v) for v in shared)
    r_pos = tuple(right_vars.index(v) for v in shared)
    extra = [i for i, v in enumerate(right_vars) if v not in left_vars]
    out_vars = left_vars + tuple(right_vars[i] for i in extra)
    index = group_by(right_rows, r_pos)
    out: list[Row] = []
    for lrow in left_rows:
        key = tuple(lrow[i] for i in l_pos)
        for rrow in index.get(key, ()):
            out.append(lrow + tuple(rrow[i] for i in extra))
    return out, out_vars
