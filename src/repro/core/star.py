"""The star-query preprocessing/delay tradeoff (paper §4, Theorem 2,
Algorithms 4 and 5 — ``PreprocessStar`` / ``EnumStar``).

A star query joins ``m`` binary relations ``R_i(A_i, B)`` on the shared
variable ``B`` and projects the ``A_i``.  Fix a degree threshold
``δ = |D|^(1-ε)``:

* a value ``a`` of ``A_i`` is *heavy* in ``R_i`` when its degree (number
  of ``B`` partners) is at least ``δ``; a tuple/output coordinate is
  heavy accordingly;
* **preprocessing** materialises and sorts the *all-heavy* output ``O_H``
  (Yannakakis over the heavy fragments — at most ``(|D|/δ)^m`` tuples),
  and builds one :class:`~repro.core.acyclic.AcyclicRankedEnumerator`
  per subquery ``Q_i = R^H_1 ⋈ .. ⋈ R^H_{i-1} ⋈ R^L_i ⋈ R_{i+1} ⋈ .. ⋈ R_m``
  rooted at the light relation ``R_i`` (join tree ``T_i``: all other
  relations are children of ``R_i``);
* **enumeration** is an ``(m+1)``-way merge of ``O_H`` and the ``Q_i``
  streams through one priority queue.  The streams partition the output
  (an answer belongs to ``Q_i`` for its *first* light coordinate ``i``,
  or to ``O_H`` when every coordinate is heavy), so no cross-stream
  deduplication is needed.

Resulting guarantees (Lemma 5): ``O(|D|·(|D|/δ)^(m-1))`` preprocessing,
``O((|D|/δ)^m)`` space, ``O(δ log |D|)`` delay — the smooth tradeoff of
Theorem 2 with ``δ = |D|^(1-ε)``.  ``ε = 0`` degenerates to Theorem 1's
behaviour, ``ε = 1`` to full materialisation.
"""

from __future__ import annotations

import time
from typing import Any, Iterator

from ..algorithms.yannakakis import atom_instances
from ..data.database import Database
from ..data.index import group_by
from ..errors import NotAStarQueryError
from ..query.jointree import build_join_tree
from ..query.query import JoinProjectQuery
from ..storage import kernels
from .acyclic import AcyclicRankedEnumerator
from .answers import EnumerationStats, RankedAnswer
from .base import RankedEnumeratorBase
from .heap import HeapStats, RankHeap
from .ranking import (
    RankingFunction,
    SumRanking,
    batched_column_keys,
    batched_output_keys,
    topk_counters,
)

__all__ = ["StarTradeoffEnumerator", "star_query_shape"]

Row = tuple


def star_query_shape(query: JoinProjectQuery) -> tuple[str, list[tuple[str, int, int]]]:
    """Validate that ``query`` is a star query ``Q*_m`` and describe it.

    Returns ``(join_variable, [(alias, a_position, b_position), ...])``
    with one entry per atom in head order of its ``A_i`` variable.

    Raises
    ------
    NotAStarQueryError
        If the query is not of the form
        ``π_{A_1..A_m}(R_1(A_1,B) ⋈ ... ⋈ R_m(A_m,B))``.
    """
    if any(len(atom.variables) != 2 for atom in query.atoms):
        raise NotAStarQueryError("star queries need binary atoms R_i(A_i, B)")
    if len(query.atoms) < 2:
        raise NotAStarQueryError("a star query needs at least two atoms")
    candidates = set(query.atoms[0].variables)
    for atom in query.atoms[1:]:
        candidates &= atom.var_set
    if len(candidates) != 1:
        raise NotAStarQueryError(
            f"star atoms must share exactly one join variable, found {sorted(candidates)}"
        )
    join_var = candidates.pop()
    if join_var in query.head_set:
        raise NotAStarQueryError(
            f"the join variable {join_var!r} must be projected away in a star query"
        )
    legs: dict[str, tuple[str, int, int]] = {}
    for atom in query.atoms:
        b_pos = atom.variables.index(join_var)
        a_pos = 1 - b_pos
        a_var = atom.variables[a_pos]
        if a_var in legs:
            raise NotAStarQueryError(f"variable {a_var!r} appears in two atoms")
        legs[a_var] = (atom.alias, a_pos, b_pos)
    if set(legs) != query.head_set or len(query.head) != len(query.atoms):
        raise NotAStarQueryError(
            f"head {query.head} must be exactly the non-join variables {sorted(legs)}"
        )
    return join_var, [legs[v] for v in query.head]


class StarTradeoffEnumerator(RankedEnumeratorBase):
    """Theorem 2's tradeoff structure for star queries.

    Parameters
    ----------
    query:
        A star query (validated by :func:`star_query_shape`).
    db:
        The database instance.
    ranking:
        Any decomposable ranking (SUM/LEX/...); default ascending SUM.
    epsilon:
        Tradeoff knob in ``[0, 1]``; the degree threshold is
        ``δ = ceil(|D|^(1-ε))``.  Mutually exclusive with ``delta``.
    delta:
        Explicit degree threshold ``δ ≥ 1``.

    Attributes
    ----------
    heavy_output_size:
        ``|O_H|`` — the number of tuples materialised during
        preprocessing (Figure 7's "extra space" driver).
    delta:
        The degree threshold in force.
    """

    def __init__(
        self,
        query: JoinProjectQuery,
        db: Database,
        ranking: RankingFunction | None = None,
        *,
        epsilon: float | None = None,
        delta: int | None = None,
        dedup_inserts: bool = True,
        bulk_topk_max_k: int = 0,
    ):
        self.query = query
        self.db = db
        self.ranking = ranking or SumRanking()
        self.join_var, self.legs = star_query_shape(query)
        if delta is not None and epsilon is not None:
            raise NotAStarQueryError("give either epsilon or delta, not both")
        if delta is None:
            eps = 0.5 if epsilon is None else float(epsilon)
            if not 0.0 <= eps <= 1.0:
                raise NotAStarQueryError(f"epsilon must be in [0, 1], got {eps}")
            size = max(db.size, 2)
            delta = max(1, round(size ** (1.0 - eps)))
        if delta < 1:
            raise NotAStarQueryError(f"delta must be >= 1, got {delta}")
        self.delta = int(delta)
        self._dedup_inserts = dedup_inserts
        self._bulk_topk_max_k = int(bulk_topk_max_k)

        self.bound = self.ranking.bind({v: i for i, v in enumerate(query.head)})
        self.heap_stats = HeapStats()
        self.stats = EnumerationStats(self.heap_stats)
        self.heavy_output: list[tuple[Any, Row]] = []
        self._subenums: list[AcyclicRankedEnumerator] = []
        self._preprocessed = False
        self._exhausted = False

    @property
    def heavy_output_size(self) -> int:
        """Number of materialised all-heavy output tuples ``|O_H|``."""
        return len(self.heavy_output)

    # ------------------------------------------------------------------ #
    # Algorithm 4: preprocessing
    # ------------------------------------------------------------------ #
    def preprocess(self) -> "StarTradeoffEnumerator":
        if self._preprocessed:
            return self
        started = time.perf_counter()
        m = len(self.legs)

        # Dangling removal for a star: keep tuples whose B value occurs in
        # every relation.
        instances = atom_instances(self.query, self.db)
        b_common: set | None = None
        for alias, _a_pos, b_pos in self.legs:
            values = {row[b_pos] for row in instances[alias]}
            b_common = values if b_common is None else (b_common & values)
        b_common = b_common or set()
        for alias, _a_pos, b_pos in self.legs:
            instances[alias] = [r for r in instances[alias] if r[b_pos] in b_common]
        self.stats.reduce_seconds = time.perf_counter() - started

        # Heavy/light split per relation (degree of the A_i value).
        heavy: list[list[Row]] = []
        light: list[list[Row]] = []
        for alias, a_pos, b_pos in self.legs:
            rows = instances[alias]
            groups = group_by(rows, (a_pos,))
            h_rows: list[Row] = []
            l_rows: list[Row] = []
            for (a_value,), grp in groups.items():
                (h_rows if len(grp) >= self.delta else l_rows).append((a_value, grp))
            heavy.append([r for _a, grp in h_rows for r in grp])
            light.append([r for _a, grp in l_rows for r in grp])

        # O_H: the all-heavy output — iterated B-joins of the heavy
        # fragments projected to the A_i columns, de-duplicated, sorted
        # by (rank key, tuple).  The array path does all four steps as
        # kernel passes; the scalar twin runs per-B cartesian products
        # into a seen-set.  Same tuples, same keys, same order.
        vector = self._batched_heavy_output(heavy)
        if vector is not None:
            self.heavy_output = vector
        else:
            heavy_by_b: list[dict[Any, list[Any]]] = []
            for (alias, a_pos, b_pos), h_flat in zip(self.legs, heavy):
                by_b: dict[Any, list[Any]] = {}
                for row in h_flat:
                    by_b.setdefault(row[b_pos], []).append(row[a_pos])
                heavy_by_b.append(by_b)
            distinct: set[Row] = set()
            if all(heavy_by_b):
                for b in b_common:
                    lists = []
                    ok = True
                    for by_b in heavy_by_b:
                        vals = by_b.get(b)
                        if not vals:
                            ok = False
                            break
                        lists.append(vals)
                    if not ok:
                        continue
                    self._cartesian_collect(lists, distinct)
            head = self.query.head
            candidates = list(distinct)
            # Score the materialised candidates through the batched key
            # path (one array pass per head attribute) when the ranking
            # supports it; identical keys per tuple either way.
            keys = batched_output_keys(self.bound, head, candidates)
            if keys is not None:
                self.heavy_output = sorted(zip(keys, candidates))
            else:
                key_of = self.bound.key_of_output
                self.heavy_output = sorted((key_of(head, t), t) for t in candidates)
        self.stats.cells_created += len(self.heavy_output)

        # Subqueries Q_i with join tree T_i (R_i as root).
        aliases = [alias for alias, _a, _b in self.legs]
        for i in range(m):
            if not light[i]:
                continue
            sub_instances: dict[str, list[Row]] = {}
            for j, alias in enumerate(aliases):
                if j < i:
                    sub_instances[alias] = heavy[j]
                elif j == i:
                    sub_instances[alias] = light[i]
                else:
                    sub_instances[alias] = instances[alias]
            if any(not rows for rows in sub_instances.values()):
                continue
            edges = [(aliases[j], aliases[i]) for j in range(m) if j != i]
            tree = build_join_tree(self.query, root=aliases[i], _edges=edges)
            enum = AcyclicRankedEnumerator(
                self.query,
                self.db,
                self.ranking,
                join_tree=tree,
                dedup_inserts=self._dedup_inserts,
                instances=sub_instances,
                bulk_topk_max_k=self._bulk_topk_max_k,
            )
            if not self._bulk_topk_max_k:
                # Eager per-subquery queue build (Algorithm 4's
                # preprocessing).  With bulk top-k enabled the build is
                # deferred: a bulk-served subquery never needs queues,
                # and the merge path preprocesses lazily on iteration.
                enum.preprocess()
            self._subenums.append(enum)

        self._preprocessed = True
        self.stats.build_seconds = (
            time.perf_counter() - started - self.stats.reduce_seconds
        )
        self.stats.preprocess_seconds = time.perf_counter() - started
        return self

    @staticmethod
    def _cartesian_collect(lists: list[list[Any]], into: set[Row]) -> None:
        """Accumulate the cartesian product of per-leg value lists."""
        out: list[tuple] = [()]
        for values in lists:
            out = [prefix + (v,) for prefix in out for v in values]
        into.update(out)

    def _batched_heavy_output(self, heavy: list[list[Row]]):
        """``O_H`` as array passes: join, project, dedup, sort — or ``None``.

        Joins the heavy fragments pairwise on B with the
        ``pack``/``join_indices`` kernels (the per-B cartesian products
        fall out of the join itself), projects to the A_i columns,
        dedups with ``distinct_indices`` and sorts once by (rank key,
        tuple) via ``lexsort`` over batched score columns.  Exact or
        refuse: any conversion failure or an unbatchable ranking
        returns ``None`` and the scalar per-B loop runs unchanged.
        """
        if not kernels.enabled():
            return None
        if self.bound.batch_weight() is None:
            return None  # LEX/composite: scalar path sorts with key_of
        if any(not rows for rows in heavy):
            return []  # some leg has no heavy tuples: O_H is empty
        np = kernels.np
        a_cols = []
        b_cols = []
        for (alias, a_pos, b_pos), rows in zip(self.legs, heavy):
            if not kernels.rows_exactly_int(rows, (a_pos,)):
                return None  # emitted values must round-trip exactly
            a = kernels.column_array([r[a_pos] for r in rows])
            b = kernels.column_array([r[b_pos] for r in rows])
            if a is None or b is None:
                return None
            a_cols.append(a)
            b_cols.append(b)
        acc_b = b_cols[0]
        acc_a = [a_cols[0]]
        for i in range(1, len(self.legs)):
            li, ri = kernels.join_indices(acc_b, b_cols[i])
            acc_b = acc_b[li]
            acc_a = [c[li] for c in acc_a]
            acc_a.append(a_cols[i][ri])
        if not len(acc_b):
            return []
        matrix = np.stack(acc_a, axis=1)
        first = kernels.distinct_indices(matrix)
        if first is None:
            return None
        cand = matrix[first]
        columns = [cand[:, j] for j in range(cand.shape[1])]
        keys = batched_column_keys(self.bound, self.query.head, columns)
        if keys is None:
            return None
        order = np.lexsort(tuple(reversed(columns)) + (keys,))
        return [
            (key, tuple(values))
            for key, values in zip(keys[order].tolist(), cand[order].tolist())
        ]

    # ------------------------------------------------------------------ #
    # Algorithm 5: (m+1)-way merge enumeration
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[RankedAnswer]:
        self.preprocess()
        if self._exhausted:
            raise NotAStarQueryError(
                "enumerator already consumed; call fresh() to enumerate again"
            )
        self._exhausted = True

        merge: RankHeap[tuple[Any, int]] = RankHeap(self.heap_stats)
        streams: list[Iterator[RankedAnswer]] = []

        # Stream 0: the sorted heavy output.
        def heavy_stream() -> Iterator[RankedAnswer]:
            final = self.bound.final_score
            for key, values in self.heavy_output:
                yield RankedAnswer(values, final(key), key=key)

        streams.append(heavy_stream())
        for enum in self._subenums:
            streams.append(iter(enum))

        for idx, stream in enumerate(streams):
            first = next(stream, None)
            if first is not None:
                merge.push((first.key, first.values), (first, idx))

        final_score = self.bound.final_score
        ops_mark = self.heap_stats.operations
        while merge:
            answer, idx = merge.pop()
            self.stats.answers += 1
            ops_now = self.heap_stats.operations
            self.stats.pq_ops_per_answer.append(ops_now - ops_mark)
            ops_mark = ops_now
            yield RankedAnswer(answer.values, final_score(answer.key), key=answer.key)
            nxt = next(streams[idx], None)
            if nxt is not None:
                merge.push((nxt.key, nxt.values), (nxt, idx))
            ops_mark = self.heap_stats.operations

    # ------------------------------------------------------------------ #
    # bulk top-k (vectorised small-k serve)
    # ------------------------------------------------------------------ #
    def top_k(self, k: int) -> list[RankedAnswer]:
        """First ``k`` answers; small k skips the merge machinery.

        The streams partition the output and each is served sorted, so
        the k best answers are within the first k of every stream: take
        the ``heavy_output`` prefix, ``top_k(k)`` of each subquery
        enumerator (bulk-served where possible), sort the union once by
        (key, values) and truncate — identical to the merge emission.
        Enabled by ``bulk_topk_max_k`` (the engine layer sets it);
        ``0 < k <= bulk_topk_max_k`` with a batched-capable ranking
        qualifies, anything else runs the incremental merge.
        """
        limit = self._bulk_topk_max_k
        if limit > 0 and 0 < k <= limit and not self._exhausted and kernels.enabled():
            if self.bound.batch_weight() is None:
                topk_counters.record_fallback("unbatchable-ranking")
            else:
                answers = self._bulk_topk(k)
                topk_counters.record_call()
                return answers
        return super().top_k(k)

    def _bulk_topk(self, k: int) -> list[RankedAnswer]:
        self.preprocess()
        started = time.perf_counter()
        final = self.bound.final_score
        candidates = [
            RankedAnswer(values, final(key), key=key)
            for key, values in self.heavy_output[:k]
        ]
        for enum in self._subenums:
            candidates.extend(enum.top_k(k))
        candidates.sort(key=lambda a: (a.key, a.values))
        answers = candidates[:k]
        self._exhausted = True
        self.stats.answers += len(answers)
        self.stats.enumerate_seconds += time.perf_counter() - started
        return answers

    def fresh(self) -> "StarTradeoffEnumerator":
        """A new enumerator with identical configuration."""
        return StarTradeoffEnumerator(
            self.query,
            self.db,
            self.ranking,
            delta=self.delta,
            dedup_inserts=self._dedup_inserts,
            bulk_topk_max_k=self._bulk_topk_max_k,
        )
