"""Shared enumerator interface.

Every enumerator in :mod:`repro.core` — the general acyclic algorithm,
the lexicographic backtracker, the star tradeoff structure, the
GHD-based cyclic wrapper, and the union merger — follows the paper's
two-phase contract:

* :meth:`preprocess` builds the data structure (idempotent);
* iteration yields :class:`~repro.core.answers.RankedAnswer` objects in
  rank order without duplicates, consuming internal state (one-shot).

The ordering contract is strict and shared by every subclass: answers
stream sorted ascending by ``(answer.key, answer.values)``, where
``answer.key`` is the bound ranking's comparable key — a pure function
of the output values.  The parallel merge layer
(:mod:`repro.parallel.merge`) and the union enumerator both rely on
exactly this property to interleave independent streams without
re-sorting.

This mixin provides the derived conveniences so all enumerators expose
an identical surface.
"""

from __future__ import annotations

import time
from typing import Iterator

from .answers import RankedAnswer

__all__ = ["RankedEnumeratorBase"]


class RankedEnumeratorBase:
    """Mixin with the derived enumeration helpers.

    Subclasses implement ``__iter__`` (and usually ``preprocess``) and
    inherit :meth:`top_k` / :meth:`all`.  Delay guarantees are a
    property of the subclass, not the mixin: after preprocessing,
    producing the *next* answer costs ``O(|D| log |D|)`` worst case for
    the acyclic LinDelay algorithm (``O(log |D|)`` for full /
    free-connex queries), ``O(|D|^{1-ε} log |D|)`` for the star
    structure, ``O(|D|^{fhw} log |D|)`` for the GHD-based cyclic
    wrapper, and the worst branch's delay for unions.  Nothing here
    materialises the full output: space stays bounded by the
    enumerator's own preprocessing structures plus the live priority
    queue entries.

    Examples
    --------
    Any subclass supports the same access patterns:

    >>> from repro.data import Database
    >>> from repro.query import parse_query
    >>> from repro.core.acyclic import AcyclicRankedEnumerator
    >>> db = Database()
    >>> _ = db.add_relation("R", ("a", "b"), [(1, 10), (2, 10), (3, 99)])
    >>> q = parse_query("Q(a1, a2) :- R(a1, p), R(a2, p)")
    >>> AcyclicRankedEnumerator(q, db).top_k(3)
    [RankedAnswer((1, 1), score=2.0), RankedAnswer((1, 2), score=3.0), RankedAnswer((2, 1), score=3.0)]
    >>> len(AcyclicRankedEnumerator(q, db).all())
    5
    """

    def preprocess(self):
        """Build the enumeration data structure (default: nothing).

        Idempotent; iteration calls it implicitly.  This is the phase
        the paper bounds separately — ``O(|D|)`` for acyclic queries,
        ``O(|D|^{1+ε})`` for the star structure, ``O(|D|^{fhw})`` for
        cyclic queries — so callers can measure or amortise it apart
        from enumeration (the engine's warm plans do exactly that).
        """
        return self

    def __iter__(self) -> Iterator[RankedAnswer]:  # pragma: no cover - interface
        """Yield distinct answers sorted by ``(rank key, output tuple)``."""
        raise NotImplementedError

    def top_k(self, k: int) -> list[RankedAnswer]:
        """The first ``k`` ranked answers (fewer if the output is smaller).

        This is the paper's ``LIMIT k`` access pattern: cost scales with
        ``k`` times the delay, not with the full output — the whole
        point of ranked enumeration over materialise-then-sort.
        """
        out: list[RankedAnswer] = []
        if k <= 0:
            return out
        self.preprocess()
        started = time.perf_counter()
        for answer in self:
            out.append(answer)
            if len(out) >= k:
                break
        self._note_enumerate_seconds(time.perf_counter() - started)
        return out

    def all(self) -> list[RankedAnswer]:
        """The complete ranked output (no LIMIT clause).

        Unlike iteration, this does materialise the output list —
        ``O(|Q(D)|)`` space in the caller's hands; the enumerator's own
        extra space stays at its documented bound.
        """
        self.preprocess()
        started = time.perf_counter()
        out = list(self)
        self._note_enumerate_seconds(time.perf_counter() - started)
        return out

    def _note_enumerate_seconds(self, elapsed: float) -> None:
        """Accumulate emission time into ``stats.enumerate_seconds``."""
        stats = getattr(self, "stats", None)
        if stats is not None and hasattr(stats, "enumerate_seconds"):
            stats.enumerate_seconds += elapsed

    def fresh(self):  # pragma: no cover - overridden where reuse matters
        """A reset clone able to enumerate again; override per subclass."""
        raise NotImplementedError(f"{type(self).__name__} does not support fresh()")
