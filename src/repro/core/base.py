"""Shared enumerator interface.

Every enumerator in :mod:`repro.core` — the general acyclic algorithm,
the lexicographic backtracker, the star tradeoff structure, the
GHD-based cyclic wrapper, and the union merger — follows the paper's
two-phase contract:

* :meth:`preprocess` builds the data structure (idempotent);
* iteration yields :class:`~repro.core.answers.RankedAnswer` objects in
  rank order without duplicates, consuming internal state (one-shot).

This mixin provides the derived conveniences so all enumerators expose
an identical surface.
"""

from __future__ import annotations

from typing import Iterator

from .answers import RankedAnswer

__all__ = ["RankedEnumeratorBase"]


class RankedEnumeratorBase:
    """Mixin with the derived enumeration helpers.

    Subclasses implement ``__iter__`` (and usually ``preprocess``).
    """

    def preprocess(self):
        """Build the enumeration data structure (default: nothing)."""
        return self

    def __iter__(self) -> Iterator[RankedAnswer]:  # pragma: no cover - interface
        raise NotImplementedError

    def top_k(self, k: int) -> list[RankedAnswer]:
        """The first ``k`` ranked answers (fewer if the output is smaller).

        This is the paper's ``LIMIT k`` access pattern: cost scales with
        ``k`` times the delay, not with the full output.
        """
        out: list[RankedAnswer] = []
        if k <= 0:
            return out
        for answer in self:
            out.append(answer)
            if len(out) >= k:
                break
        return out

    def all(self) -> list[RankedAnswer]:
        """The complete ranked output (no LIMIT clause)."""
        return list(self)

    def fresh(self):  # pragma: no cover - overridden where reuse matters
        """A reset clone able to enumerate again; override per subclass."""
        raise NotImplementedError(f"{type(self).__name__} does not support fresh()")
