"""Answer and statistics containers shared by all enumerators."""

from __future__ import annotations

from typing import Any

__all__ = ["RankedAnswer", "EnumerationStats"]


class RankedAnswer:
    """One enumerated result.

    Attributes
    ----------
    values:
        The output tuple, aligned with the query head order.
    score:
        The user-facing rank value (a float for SUM-style rankings, the
        comparison tuple for LEX).
    key:
        The raw comparable rank key, used by merge-based enumerators
        (star tradeoff, unions) to interleave streams; compares ascending
        regardless of the user-facing direction.  ``None`` when a
        producer does not expose one.
    """

    __slots__ = ("values", "score", "key")

    def __init__(self, values: tuple, score: Any = None, key: Any = None):
        self.values = values
        self.score = score
        self.key = key

    def __iter__(self):
        return iter((self.values, self.score))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RankedAnswer):
            return self.values == other.values and self.score == other.score
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.values, self.score))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RankedAnswer({self.values}, score={self.score})"


class EnumerationStats:
    """Instrumentation collected by an enumerator run.

    ``pq_ops_per_answer`` records, for every emitted answer, how many
    priority-queue operations happened since the previous answer — the
    paper's empirical-delay proxy (Figure 14a).  ``cells_created`` and
    ``peak_pq_entries`` proxy the data-structure memory footprint that
    the paper reports against the engines' multi-GB materialisations.

    ``preprocess_seconds`` splits into ``reduce_seconds`` (reducer pass
    + pruning/dangling removal) and ``build_seconds`` (queue/index
    construction, scoring included); ``enumerate_seconds`` accumulates
    time spent emitting answers (``top_k``/``all``/bulk serves) — the
    per-phase breakdown ``repro --stats`` prints.
    """

    __slots__ = (
        "answers",
        "cells_created",
        "reducer_passes",
        "pq_ops_per_answer",
        "preprocess_seconds",
        "reduce_seconds",
        "build_seconds",
        "enumerate_seconds",
        "heap_stats",
    )

    def __init__(self, heap_stats=None):
        self.answers = 0
        self.cells_created = 0
        self.reducer_passes = 0
        self.pq_ops_per_answer: list[int] = []
        self.preprocess_seconds = 0.0
        self.reduce_seconds = 0.0
        self.build_seconds = 0.0
        self.enumerate_seconds = 0.0
        self.heap_stats = heap_stats

    @property
    def peak_pq_entries(self) -> int:
        """High-water mark of live priority-queue entries."""
        return self.heap_stats.peak_entries if self.heap_stats is not None else 0

    @property
    def total_pq_operations(self) -> int:
        """All pushes + pops across the run."""
        return self.heap_stats.operations if self.heap_stats is not None else 0

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict view for reports."""
        return {
            "answers": self.answers,
            "cells_created": self.cells_created,
            "reducer_passes": self.reducer_passes,
            "peak_pq_entries": self.peak_pq_entries,
            "total_pq_operations": self.total_pq_operations,
            "preprocess_seconds": self.preprocess_seconds,
            "reduce_seconds": self.reduce_seconds,
            "build_seconds": self.build_seconds,
            "enumerate_seconds": self.enumerate_seconds,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EnumerationStats({self.snapshot()})"
