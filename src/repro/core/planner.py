"""Algorithm selection: one entry point for every query class.

``create_enumerator`` inspects the query and dispatches:

================  ====================================================
query shape        algorithm
================  ====================================================
UCQ                :class:`~repro.core.ucq.UnionRankedEnumerator`
cyclic CQ          :class:`~repro.core.cyclic.CyclicRankedEnumerator`
star + ``epsilon`` :class:`~repro.core.star.StarTradeoffEnumerator`
acyclic + LEX      :class:`~repro.core.lexicographic.LexBacktrackEnumerator`
acyclic            :class:`~repro.core.acyclic.AcyclicRankedEnumerator`
================  ====================================================

``method`` overrides the dispatch (``"lindelay"``, ``"lex-backtrack"``,
``"star"``, ``"ghd"``, ``"auto"``), and ``enumerate_ranked`` is the
one-call convenience: the paper's ``SELECT DISTINCT .. ORDER BY ..
LIMIT k``.
"""

from __future__ import annotations

from typing import Any

from ..data.database import Database
from ..errors import NotAStarQueryError, QueryError
from ..query.hypergraph import Hypergraph
from ..query.query import JoinProjectQuery, UnionQuery
from .acyclic import AcyclicRankedEnumerator
from .answers import RankedAnswer
from .base import RankedEnumeratorBase
from .cyclic import CyclicRankedEnumerator
from .lexicographic import LexBacktrackEnumerator
from .ranking import LexRanking, RankingFunction, SumRanking
from .star import StarTradeoffEnumerator, star_query_shape
from .ucq import UnionRankedEnumerator

__all__ = ["create_enumerator", "enumerate_ranked", "is_star_query", "METHODS"]

METHODS = ("auto", "lindelay", "lex-backtrack", "star", "ghd")


def is_star_query(query: JoinProjectQuery) -> bool:
    """True if ``query`` matches the paper's ``Q*_m`` star shape."""
    try:
        star_query_shape(query)
        return True
    except NotAStarQueryError:
        return False


def create_enumerator(
    query: JoinProjectQuery | UnionQuery,
    db: Database,
    ranking: RankingFunction | None = None,
    *,
    method: str = "auto",
    epsilon: float | None = None,
    delta: int | None = None,
    **kwargs: Any,
) -> RankedEnumeratorBase:
    """Build the appropriate ranked enumerator for a query.

    Parameters
    ----------
    query:
        A :class:`JoinProjectQuery` or :class:`UnionQuery`.
    db:
        The database instance.
    ranking:
        Ranking function; default ascending SUM with identity weights.
    method:
        One of :data:`METHODS`; ``"auto"`` picks per the table above.
    epsilon / delta:
        Star-tradeoff knobs; supplying either selects the star structure
        for star-shaped queries (Theorem 2).
    kwargs:
        Forwarded to the selected enumerator (``root``, ``join_tree``,
        ``dedup_inserts``, ``order``, ``descending``, ``ghd``, ...).
    """
    if method not in METHODS:
        raise QueryError(f"unknown method {method!r}; choose one of {METHODS}")
    ranking = ranking or SumRanking()

    if isinstance(query, UnionQuery):
        if method != "auto":
            raise QueryError("union queries dispatch per-branch; use method='auto'")
        return UnionRankedEnumerator(query, db, ranking, **kwargs)

    acyclic = Hypergraph(query.edge_map()).is_acyclic()

    if method == "ghd" or (method == "auto" and not acyclic):
        return CyclicRankedEnumerator(query, db, ranking, **kwargs)
    if not acyclic:
        raise QueryError(f"method {method!r} requires an acyclic query")

    if method == "star" or (method == "auto" and (epsilon is not None or delta is not None)):
        return StarTradeoffEnumerator(
            query, db, ranking, epsilon=epsilon, delta=delta, **kwargs
        )

    if method == "lex-backtrack" or (
        method == "auto" and isinstance(ranking, LexRanking)
    ):
        order = kwargs.pop("order", None)
        descending = kwargs.pop("descending", None)
        weight = kwargs.pop("weight", None)
        if isinstance(ranking, LexRanking):
            order = order if order is not None else ranking.order
            descending = descending if descending is not None else ranking.descending
            weight = weight if weight is not None else ranking.weight
        return LexBacktrackEnumerator(
            query, db, order=order, descending=descending or (), weight=weight, **kwargs
        )

    return AcyclicRankedEnumerator(query, db, ranking, **kwargs)


def enumerate_ranked(
    query: JoinProjectQuery | UnionQuery,
    db: Database,
    ranking: RankingFunction | None = None,
    *,
    k: int | None = None,
    method: str = "auto",
    **kwargs: Any,
) -> list[RankedAnswer]:
    """One-call ranked enumeration: ``SELECT DISTINCT .. ORDER BY .. LIMIT k``.

    Returns the first ``k`` answers (all of them when ``k is None``) in
    rank order without duplicates.

    Examples
    --------
    >>> from repro.data import Database
    >>> from repro.query import parse_query
    >>> db = Database()
    >>> _ = db.add_relation("R", ("a", "b"), [(1, 10), (2, 10), (3, 99)])
    >>> q = parse_query("Q(a1, a2) :- R(a1, p), R(a2, p)")
    >>> [a.values for a in enumerate_ranked(q, db, k=3)]
    [(1, 1), (1, 2), (2, 1)]
    """
    enum = create_enumerator(query, db, ranking, method=method, **kwargs)
    if k is None:
        return enum.all()
    return enum.top_k(k)
