"""Algorithm selection: one entry point for every query class.

``create_enumerator`` inspects the query and dispatches:

================  ====================================================
query shape        algorithm
================  ====================================================
UCQ                :class:`~repro.core.ucq.UnionRankedEnumerator`
cyclic CQ          :class:`~repro.core.cyclic.CyclicRankedEnumerator`
star + ``epsilon`` :class:`~repro.core.star.StarTradeoffEnumerator`
acyclic + LEX      :class:`~repro.core.lexicographic.LexBacktrackEnumerator`
acyclic            :class:`~repro.core.acyclic.AcyclicRankedEnumerator`
================  ====================================================

``method`` overrides the dispatch (``"lindelay"``, ``"lex-backtrack"``,
``"star"``, ``"ghd"``, ``"auto"``), and ``enumerate_ranked`` is the
one-call convenience: the paper's ``SELECT DISTINCT .. ORDER BY ..
LIMIT k``.

Planning is split in two so the data-independent half can be cached
(:mod:`repro.engine`):

* :func:`plan_query` classifies the query (hypergraph acyclicity, star
  shape, union structure) and builds the reusable structures — join
  tree for the acyclic algorithms, GHD for the cyclic one.  It never
  touches a :class:`~repro.data.database.Database`.
* :meth:`QueryPlan.instantiate` binds a plan to a database, producing a
  fresh one-shot enumerator.  ``create_enumerator`` is exactly
  ``plan_query(...).instantiate(db)``.
"""

from __future__ import annotations

from typing import Any

from ..data.database import Database
from ..errors import NotAStarQueryError, QueryError
from ..query.hypergraph import Hypergraph
from ..query.query import JoinProjectQuery, UnionQuery
from .acyclic import AcyclicRankedEnumerator
from .answers import RankedAnswer
from .base import RankedEnumeratorBase
from .cyclic import CyclicRankedEnumerator
from .lexicographic import LexBacktrackEnumerator
from .ranking import LexRanking, RankingFunction, SumRanking
from .star import StarTradeoffEnumerator, star_query_shape
from .ucq import UnionRankedEnumerator

__all__ = [
    "QueryPlan",
    "plan_query",
    "create_enumerator",
    "enumerate_ranked",
    "is_star_query",
    "METHODS",
]

METHODS = ("auto", "lindelay", "lex-backtrack", "star", "ghd")


def is_star_query(query: JoinProjectQuery) -> bool:
    """True if ``query`` matches the paper's ``Q*_m`` star shape."""
    try:
        star_query_shape(query)
        return True
    except NotAStarQueryError:
        return False


class QueryPlan:
    """The data-independent result of planning one query.

    A plan records which algorithm the dispatch table selected
    (:attr:`kind`) together with the expensive structures that depend
    only on the query — the join tree for the acyclic/lexicographic
    algorithms and the GHD for the cyclic one.  Plans are therefore
    reusable across executions and across databases with compatible
    schemas; :class:`repro.engine.QueryEngine` caches them keyed on the
    query/ranking/method fingerprint.

    Attributes
    ----------
    query / ranking / method:
        The planning inputs (``ranking`` normalised to :class:`SumRanking`).
    kind:
        One of ``"union"``, ``"cyclic"``, ``"star"``, ``"lex"``,
        ``"acyclic"`` — the selected algorithm family.
    acyclic:
        Hypergraph classification (``True`` for union plans, which
        dispatch per branch).
    join_tree / ghd:
        The pre-built structure for the selected family (``None`` where
        not applicable).
    """

    __slots__ = (
        "query",
        "ranking",
        "method",
        "kind",
        "acyclic",
        "join_tree",
        "ghd",
        "epsilon",
        "delta",
        "kwargs",
        "partition_attribute",
        "partition_shards",
    )

    _CLASSES = {
        "union": UnionRankedEnumerator,
        "cyclic": CyclicRankedEnumerator,
        "star": StarTradeoffEnumerator,
        "lex": LexBacktrackEnumerator,
        "acyclic": AcyclicRankedEnumerator,
    }

    def __init__(
        self,
        query: JoinProjectQuery | UnionQuery,
        ranking: RankingFunction,
        method: str,
        kind: str,
        *,
        acyclic: bool = True,
        join_tree=None,
        ghd=None,
        epsilon: float | None = None,
        delta: int | None = None,
        kwargs: dict[str, Any] | None = None,
    ):
        self.query = query
        self.ranking = ranking
        self.method = method
        self.kind = kind
        self.acyclic = acyclic
        self.join_tree = join_tree
        self.ghd = ghd
        self.epsilon = epsilon
        self.delta = delta
        self.kwargs = dict(kwargs or {})
        #: Set by :meth:`parallelised` for plans served through the
        #: sharded executor; ``None`` on plain serial plans.
        self.partition_attribute: str | None = None
        self.partition_shards: int | None = None

    @property
    def enumerator_class(self) -> type[RankedEnumeratorBase]:
        """The enumerator class this plan instantiates."""
        return self._CLASSES[self.kind]

    @property
    def is_parallel(self) -> bool:
        """True when this plan describes a sharded (parallel) execution."""
        return self.partition_shards is not None and self.partition_shards > 1

    def parallelised(self, attribute: str | None, shards: int) -> "QueryPlan":
        """A copy of this plan annotated as a sharded execution.

        The copy shares the (immutable-in-practice) join tree / GHD and
        records the partition attribute and shard count so
        :meth:`describe` and the engine's ``explain`` report how the
        data is split.  The serial plan is left untouched — both can
        sit in the engine's plan cache under different fingerprints.
        """
        plan = QueryPlan(
            self.query,
            self.ranking,
            self.method,
            self.kind,
            acyclic=self.acyclic,
            join_tree=self.join_tree,
            ghd=self.ghd,
            epsilon=self.epsilon,
            delta=self.delta,
            kwargs=self.kwargs,
        )
        plan.partition_attribute = attribute
        plan.partition_shards = shards
        return plan

    def describe(self) -> str:
        """One-line plan summary (used by ``--explain`` and the engine).

        Serial plans name the enumerator class, query shape and
        ranking; parallel plans additionally state the chosen partition
        attribute and shard count.

        >>> from repro.query import parse_query
        >>> plan = plan_query(parse_query("Q(a1, a2) :- R(a1, p), R(a2, p)"))
        >>> plan.describe()
        'AcyclicRankedEnumerator[acyclic, rank=SUM[w(v) = v, asc]]'
        >>> plan.parallelised("p", 4).describe()
        'AcyclicRankedEnumerator[acyclic, rank=SUM[w(v) = v, asc], parallel=hash(p) x 4 shards]'
        """
        shape = "union" if self.kind == "union" else (
            "acyclic" if self.acyclic else "cyclic"
        )
        base = f"{self.enumerator_class.__name__}[{shape}, rank={self.ranking.describe()}"
        if self.is_parallel:
            attr = self.partition_attribute or "?"
            base += f", parallel=hash({attr}) x {self.partition_shards} shards"
        return base + "]"

    def instantiate(self, db: Database, **overrides: Any) -> RankedEnumeratorBase:
        """Bind the plan to a database: build a fresh one-shot enumerator.

        ``overrides`` are forwarded to the enumerator constructor on top
        of the planning-time kwargs (the warm path in
        :mod:`repro.engine` passes pre-reduced ``instances`` this way).
        """
        kwargs = dict(self.kwargs)
        kwargs.update(overrides)
        query, ranking = self.query, self.ranking

        if self.kind == "union":
            return UnionRankedEnumerator(query, db, ranking, **kwargs)

        if self.kind == "cyclic":
            kwargs.setdefault("ghd", self.ghd)
            return CyclicRankedEnumerator(query, db, ranking, **kwargs)

        if self.kind == "star":
            return StarTradeoffEnumerator(
                query, db, ranking, epsilon=self.epsilon, delta=self.delta, **kwargs
            )

        if self.kind == "lex":
            order = kwargs.pop("order", None)
            descending = kwargs.pop("descending", None)
            weight = kwargs.pop("weight", None)
            if isinstance(ranking, LexRanking):
                order = order if order is not None else ranking.order
                descending = descending if descending is not None else ranking.descending
                weight = weight if weight is not None else ranking.weight
            kwargs.setdefault("join_tree", self.join_tree)
            return LexBacktrackEnumerator(
                query, db, order=order, descending=descending or (), weight=weight, **kwargs
            )

        kwargs.setdefault("join_tree", self.join_tree)
        return AcyclicRankedEnumerator(query, db, ranking, **kwargs)


def plan_query(
    query: JoinProjectQuery | UnionQuery,
    ranking: RankingFunction | None = None,
    *,
    method: str = "auto",
    epsilon: float | None = None,
    delta: int | None = None,
    **kwargs: Any,
) -> QueryPlan:
    """Classify ``query`` and build its reusable plan (no database needed).

    This is the cacheable half of :func:`create_enumerator`: hypergraph
    classification plus join-tree / GHD construction.  See
    :class:`QueryPlan` for what the result carries.

    Cost contract: planning is polynomial in the *query* size only —
    it never touches a database, so one plan amortises over any number
    of executions and over databases with compatible schemas.  The
    delay guarantee of the eventual execution is decided here by the
    selected family: ``O(|D| log |D|)`` worst-case delay after
    ``O(|D|)`` preprocessing for acyclic plans (Theorem 1),
    ``O(|D|^{fhw} log |D|)`` for cyclic plans (Theorem 3), the
    ``O(|D|^{1-ε})``-delay / ``O(|D|^{1+ε})``-space tradeoff for star
    plans (Theorem 2), and the worst branch's bound for unions
    (Theorem 4).

    >>> from repro.query import parse_query
    >>> plan = plan_query(parse_query("Q(x, y) :- R(x, p), S(p, y)"))
    >>> plan.kind, plan.acyclic
    ('acyclic', True)
    """
    if method not in METHODS:
        raise QueryError(f"unknown method {method!r}; choose one of {METHODS}")
    ranking = ranking or SumRanking()

    if isinstance(query, UnionQuery):
        if method != "auto":
            raise QueryError("union queries dispatch per-branch; use method='auto'")
        return QueryPlan(query, ranking, method, "union", kwargs=kwargs)

    acyclic = Hypergraph(query.edge_map()).is_acyclic()

    if method == "ghd" or (method == "auto" and not acyclic):
        ghd = kwargs.pop("ghd", None)
        if ghd is None:
            from ..query.ghd import find_ghd

            ghd = find_ghd(query)
        return QueryPlan(
            query, ranking, method, "cyclic", acyclic=acyclic, ghd=ghd, kwargs=kwargs
        )
    if not acyclic:
        raise QueryError(f"method {method!r} requires an acyclic query")

    if method == "star" or (method == "auto" and (epsilon is not None or delta is not None)):
        star_query_shape(query)  # raises NotAStarQueryError on a mismatch
        return QueryPlan(
            query,
            ranking,
            method,
            "star",
            epsilon=epsilon,
            delta=delta,
            kwargs=kwargs,
        )

    kind = (
        "lex"
        if method == "lex-backtrack"
        or (method == "auto" and isinstance(ranking, LexRanking))
        else "acyclic"
    )
    join_tree = kwargs.pop("join_tree", None)
    if join_tree is None:
        from ..query.jointree import build_join_tree

        join_tree = build_join_tree(query, root=kwargs.get("root"))
    return QueryPlan(
        query, ranking, method, kind, join_tree=join_tree, kwargs=kwargs
    )


def create_enumerator(
    query: JoinProjectQuery | UnionQuery,
    db: Database,
    ranking: RankingFunction | None = None,
    *,
    method: str = "auto",
    epsilon: float | None = None,
    delta: int | None = None,
    **kwargs: Any,
) -> RankedEnumeratorBase:
    """Build the appropriate ranked enumerator for a query.

    Exactly ``plan_query(...).instantiate(db)``: a fresh one-shot
    enumerator whose iteration yields distinct answers in rank order
    under the delay guarantee of the selected family (see
    :func:`plan_query`).  Use :class:`repro.engine.QueryEngine` instead
    when executing more than one query against the same data — it
    caches the plan half of this call.

    Parameters
    ----------
    query:
        A :class:`JoinProjectQuery` or :class:`UnionQuery`.
    db:
        The database instance.
    ranking:
        Ranking function; default ascending SUM with identity weights.
    method:
        One of :data:`METHODS`; ``"auto"`` picks per the table above.
    epsilon / delta:
        Star-tradeoff knobs; supplying either selects the star structure
        for star-shaped queries (Theorem 2).
    kwargs:
        Forwarded to the selected enumerator (``root``, ``join_tree``,
        ``dedup_inserts``, ``order``, ``descending``, ``ghd``, ...).
    """
    plan = plan_query(
        query, ranking, method=method, epsilon=epsilon, delta=delta, **kwargs
    )
    return plan.instantiate(db)


def enumerate_ranked(
    query: JoinProjectQuery | UnionQuery,
    db: Database,
    ranking: RankingFunction | None = None,
    *,
    k: int | None = None,
    method: str = "auto",
    **kwargs: Any,
) -> list[RankedAnswer]:
    """One-call ranked enumeration: ``SELECT DISTINCT .. ORDER BY .. LIMIT k``.

    Returns the first ``k`` answers (all of them when ``k is None``) in
    rank order without duplicates.

    Examples
    --------
    >>> from repro.data import Database
    >>> from repro.query import parse_query
    >>> db = Database()
    >>> _ = db.add_relation("R", ("a", "b"), [(1, 10), (2, 10), (3, 99)])
    >>> q = parse_query("Q(a1, a2) :- R(a1, p), R(a2, p)")
    >>> [a.values for a in enumerate_ranked(q, db, k=3)]
    [(1, 1), (1, 2), (2, 1)]
    """
    enum = create_enumerator(query, db, ranking, method=method, **kwargs)
    if k is None:
        return enum.all()
    return enum.top_k(k)
