"""The paper's contribution: ranked enumeration with projections.

Algorithms 1-5 plus the cyclic/union extensions, the ranking-function
algebra, and the planner that dispatches between them.
"""

from .acyclic import AcyclicRankedEnumerator
from .answers import EnumerationStats, RankedAnswer
from .base import RankedEnumeratorBase
from .cell import Cell, UNSET
from .cyclic import CyclicRankedEnumerator
from .heap import HeapStats, RankHeap
from .lexicographic import LexBacktrackEnumerator
from .minweight import MinWeightProjectionEnumerator
from .planner import METHODS, create_enumerator, enumerate_ranked, is_star_query
from .ranking import (
    AvgRanking,
    CallableWeight,
    CompositeRanking,
    Desc,
    IdentityWeight,
    LexRanking,
    MaxRanking,
    MinRanking,
    ProductRanking,
    RankingFunction,
    SumRanking,
    TableWeight,
    WeightFunction,
)
from .star import StarTradeoffEnumerator, star_query_shape
from .ucq import UnionRankedEnumerator

__all__ = [
    "AcyclicRankedEnumerator",
    "LexBacktrackEnumerator",
    "MinWeightProjectionEnumerator",
    "StarTradeoffEnumerator",
    "CyclicRankedEnumerator",
    "UnionRankedEnumerator",
    "RankedEnumeratorBase",
    "RankedAnswer",
    "EnumerationStats",
    "Cell",
    "UNSET",
    "RankHeap",
    "HeapStats",
    "create_enumerator",
    "enumerate_ranked",
    "is_star_query",
    "METHODS",
    "star_query_shape",
    "RankingFunction",
    "SumRanking",
    "AvgRanking",
    "MinRanking",
    "MaxRanking",
    "ProductRanking",
    "LexRanking",
    "CompositeRanking",
    "Desc",
    "WeightFunction",
    "IdentityWeight",
    "TableWeight",
    "CallableWeight",
]
