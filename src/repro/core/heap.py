"""Counting priority queues.

The paper assumes a priority queue with O(1) insert / O(1) top /
O(log n) pop (a Fibonacci heap).  We use :mod:`heapq` binary heaps —
O(log n) insert, same pop bound — which is also what the paper's C++
artifact uses in practice; only constant factors differ.

Every heap shares a :class:`HeapStats` object with its enumerator so the
experiments can report priority-queue operation counts per answer
(paper Figure 14a) and live-entry space proxies (Figure 7's "extra
space").
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generic, Iterable, TypeVar

__all__ = ["HeapStats", "RankHeap"]

T = TypeVar("T")


class HeapStats:
    """Shared operation counters across all priority queues of one run.

    Attributes
    ----------
    pushes / pops:
        Total number of insert / pop-min operations.
    live_entries:
        Entries currently stored across all heaps sharing these stats.
    peak_entries:
        High-water mark of ``live_entries`` (the paper's space proxy).
    """

    __slots__ = ("pushes", "pops", "live_entries", "peak_entries")

    def __init__(self) -> None:
        self.pushes = 0
        self.pops = 0
        self.live_entries = 0
        self.peak_entries = 0

    @property
    def operations(self) -> int:
        """Total priority-queue operations (pushes + pops)."""
        return self.pushes + self.pops

    def snapshot(self) -> dict[str, int]:
        """Plain-dict view for reports."""
        return {
            "pushes": self.pushes,
            "pops": self.pops,
            "live_entries": self.live_entries,
            "peak_entries": self.peak_entries,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HeapStats(pushes={self.pushes}, pops={self.pops}, peak={self.peak_entries})"


_seq = count()  # global monotone sequence: total order among exact key ties


class RankHeap(Generic[T]):
    """A min-heap of items ordered by caller-provided sort keys.

    Keys must be totally ordered among the items of one heap; the
    enumerators use ``(rank key, partial output)`` which matches the
    paper's deterministic tie-breaking.  A monotone sequence number
    breaks residual exact ties without comparing items.
    """

    __slots__ = ("_entries", "stats")

    def __init__(self, stats: HeapStats | None = None):
        self._entries: list[tuple[Any, int, T]] = []
        self.stats = stats if stats is not None else HeapStats()

    def push(self, sort_key: Any, item: T) -> None:
        """Insert ``item`` with priority ``sort_key``."""
        heapq.heappush(self._entries, (sort_key, next(_seq), item))
        st = self.stats
        st.pushes += 1
        st.live_entries += 1
        if st.live_entries > st.peak_entries:
            st.peak_entries = st.live_entries

    def push_many(self, entries: Iterable[tuple[Any, T]]) -> None:
        """Insert ``(sort_key, item)`` pairs in one heapify pass.

        O(n) against the push loop's O(n log n) — the win the initial
        queue builds want, where every entry arrives before the first
        pop.  The pop sequence is identical to pushing one at a time:
        entries are totally ordered by ``(sort_key, seq)``, so a heap's
        pop order is their sorted order however the heap was built, and
        sequence numbers are drawn here in iteration order exactly as
        the loop would draw them.
        """
        added = [(sort_key, next(_seq), item) for sort_key, item in entries]
        if not added:
            return
        if self._entries:
            for entry in added:
                heapq.heappush(self._entries, entry)
        else:
            self._entries = added
            heapq.heapify(self._entries)
        st = self.stats
        st.pushes += len(added)
        st.live_entries += len(added)
        if st.live_entries > st.peak_entries:
            st.peak_entries = st.live_entries

    def top(self) -> T:
        """The minimum item (raises IndexError when empty)."""
        return self._entries[0][2]

    def top_key(self) -> Any:
        """The minimum sort key (raises IndexError when empty)."""
        return self._entries[0][0]

    def pop(self) -> T:
        """Remove and return the minimum item."""
        entry = heapq.heappop(self._entries)
        self.stats.pops += 1
        self.stats.live_entries -= 1
        return entry[2]

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def items(self) -> Iterable[T]:
        """All stored items in heap (not sorted) order — for inspection."""
        return [entry[2] for entry in self._entries]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RankHeap(n={len(self._entries)})"
