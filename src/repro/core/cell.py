"""The paper's ``cell`` data structure (Definition 1).

A cell ``c = ⟨t, [p_1 .. p_k], q⟩`` holds a tuple of its join-tree node,
one pointer per child to a cell of that child, and a ``next`` pointer to
another cell of the *same* node.  ``next`` chains materialise, per node
and anchor value, the distinct ranked partial outputs — the memoisation
that makes Algorithm 2's delay bound work (every parent that reaches a
chained cell follows it in O(1) instead of recomputing).

We additionally cache on the cell:

* ``key`` — the rank key of its partial output (so priority-queue
  comparisons are O(1), as the paper's constant-time ``rank(output(c))``
  assumption requires);
* ``out`` — the materialised partial output over ``A^π_i`` in the
  subtree's in-order layout (the paper's ``output(c)``), used both for
  emission and for deterministic tie-breaking;
* ``own_key`` / ``own_out`` — the node-local contribution, shared
  unchanged by all successor cells of the same tuple.
"""

from __future__ import annotations

from itertools import count
from typing import Any

__all__ = ["Cell", "UNSET"]

_uid = count()


class _Unset:
    """Sentinel for a ``next`` pointer that has not been computed yet.

    Distinct from ``None``, which means "computed: there is no next
    distinct partial output" (the paper's ``⊥`` after exhaustion).
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "UNSET"


UNSET = _Unset()


class Cell:
    """One cell: a node tuple plus child pointers plus the next-chain."""

    __slots__ = ("row", "children", "next", "key", "out", "own_key", "own_out", "uid")

    def __init__(
        self,
        row: tuple,
        children: tuple["Cell", ...],
        key: Any,
        out: tuple,
        own_key: Any,
        own_out: tuple,
    ):
        self.row = row
        self.children = children
        self.next: Any = UNSET  # UNSET | None | Cell
        self.key = key
        self.out = out
        self.own_key = own_key
        self.own_out = own_out
        # Stable identity for duplicate-insert suppression.  Object ids
        # cannot be used: popped duplicate cells are garbage-collected and
        # CPython reuses their addresses, which would suppress unrelated
        # fresh cells (a real bug found by the fuzz suite).
        self.uid = next(_uid)

    @property
    def sort_key(self) -> tuple:
        """Priority-queue key: rank key, ties broken by the partial output."""
        return (self.key, self.out)

    def same_output(self, other: "Cell") -> bool:
        """The paper's ``is_equal``: same rank and same partial output."""
        return self.key == other.key and self.out == other.out

    def identity(self) -> tuple:
        """Structural identity used to suppress duplicate inserts:
        the node tuple plus the stable uids of the child cells."""
        return (self.row, tuple(c.uid for c in self.children))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        nxt = "⊥" if self.next is None else ("?" if self.next is UNSET else "→")
        return f"Cell(t={self.row}, out={self.out}, key={self.key}, next={nxt})"
