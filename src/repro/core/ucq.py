"""Ranked enumeration for unions of join-project queries (paper §5,
Theorem 4).

A UCQ ``Q = Q_1 ∪ ... ∪ Q_m`` over a shared head is enumerated by
running one ranked enumerator per branch and merging the streams through
a single priority queue keyed on ``(rank key, output tuple)``.  Because
the same output can be produced by several branches, equal tuples are
adjacent in the merge order (keys are functions of the tuple), so a
one-answer memory de-duplicates the union exactly — the idea the paper
attributes to [26, 65].

Branch enumerators are created by the planner (acyclic branches get
Theorem 1's ``LinDelay``, cyclic branches the GHD wrapper), so the delay
follows the worst branch: ``O(|D|^{fhw} log |D|)`` in general and
``O(|D| log |D|)`` for unions of acyclic queries.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator

from ..data.database import Database
from ..errors import QueryError
from ..query.query import JoinProjectQuery, UnionQuery
from .answers import EnumerationStats, RankedAnswer
from .base import RankedEnumeratorBase
from .heap import HeapStats, RankHeap
from .ranking import RankingFunction, SumRanking

__all__ = ["UnionRankedEnumerator"]

BranchFactory = Callable[[JoinProjectQuery, Database, RankingFunction], RankedEnumeratorBase]


def _default_branch_factory(
    query: JoinProjectQuery, db: Database, ranking: RankingFunction
) -> RankedEnumeratorBase:
    """Dispatch each branch through the planner (lazy import: the planner
    itself builds union enumerators)."""
    from .planner import create_enumerator

    return create_enumerator(query, db, ranking)


class UnionRankedEnumerator(RankedEnumeratorBase):
    """Theorem 4: ranked union with cross-branch deduplication.

    Parameters
    ----------
    union:
        The UCQ (branches validated to share the head).
    db:
        The database instance.
    ranking:
        Any decomposable ranking; applied identically to every branch so
        keys are comparable across streams.
    branch_factory:
        Override how branch enumerators are constructed (tests use this
        to force specific algorithms).

    Examples
    --------
    >>> from repro.data import Database
    >>> from repro.query import parse_query
    >>> db = Database()
    >>> _ = db.add_relation("R", ("a", "b"), [(1, 5)])
    >>> _ = db.add_relation("S", ("a", "b"), [(1, 6), (0, 7)])
    >>> u = parse_query("Q(x) :- R(x, y) ; Q(x) :- S(x, y)")
    >>> [a.values for a in UnionRankedEnumerator(u, db)]
    [(0,), (1,)]
    """

    def __init__(
        self,
        union: UnionQuery,
        db: Database,
        ranking: RankingFunction | None = None,
        *,
        branch_factory: BranchFactory | None = None,
    ):
        if not isinstance(union, UnionQuery):
            raise QueryError("UnionRankedEnumerator needs a UnionQuery")
        self.union = union
        self.db = db
        self.ranking = ranking or SumRanking()
        self._branch_factory = branch_factory or _default_branch_factory
        self.heap_stats = HeapStats()
        self.stats = EnumerationStats(self.heap_stats)
        self._branches: list[RankedEnumeratorBase] | None = None
        self._exhausted = False

    def preprocess(self) -> "UnionRankedEnumerator":
        """Preprocess every branch enumerator."""
        if self._branches is not None:
            return self
        started = time.perf_counter()
        self._branches = [
            self._branch_factory(branch, self.db, self.ranking).preprocess()
            for branch in self.union.branches
        ]
        self.stats.preprocess_seconds = time.perf_counter() - started
        return self

    def __iter__(self) -> Iterator[RankedAnswer]:
        self.preprocess()
        if self._exhausted:
            raise QueryError(
                "enumerator already consumed; call fresh() to enumerate again"
            )
        self._exhausted = True
        assert self._branches is not None

        merge: RankHeap[tuple[RankedAnswer, int]] = RankHeap(self.heap_stats)
        streams = [iter(branch) for branch in self._branches]
        for idx, stream in enumerate(streams):
            first = next(stream, None)
            if first is not None:
                if first.key is None:  # pragma: no cover - defensive
                    raise QueryError("branch enumerator does not expose rank keys")
                merge.push((first.key, first.values), (first, idx))

        last_values: tuple | None = None
        ops_mark = self.heap_stats.operations
        while merge:
            answer, idx = merge.pop()
            if answer.values != last_values:
                last_values = answer.values
                self.stats.answers += 1
                ops_now = self.heap_stats.operations
                self.stats.pq_ops_per_answer.append(ops_now - ops_mark)
                ops_mark = ops_now
                yield answer
            nxt = next(streams[idx], None)
            if nxt is not None:
                merge.push((nxt.key, nxt.values), (nxt, idx))

    def fresh(self) -> "UnionRankedEnumerator":
        """A new enumerator with identical configuration."""
        return UnionRankedEnumerator(
            self.union, self.db, self.ranking, branch_factory=self._branch_factory
        )
