"""Ranking functions (paper §2.1).

The paper focuses on two rankings over the projection attributes:

* ``SUM`` — ``rank(t) = Σ_{A ∈ head} w(t[A])`` for a per-value weight
  function ``w`` (paper Example 3);
* ``LEXICOGRAPHIC`` — compare head attributes in a given order, each
  ascending or descending.

and notes that the machinery extends directly to other *decomposable*
functions; we also ship ``MIN``, ``MAX``, ``AVG``, ``PRODUCT`` and a
composite ``then_by`` combinator (used to repair the Algorithm 6 baseline,
see :mod:`repro.algorithms.existing`).

Design
------
A ranking function is a small spec object; the enumerators call
:meth:`RankingFunction.bind` with the mapping ``variable -> global
position`` to obtain a :class:`BoundRanking` that produces *keys*:

* ``key(pairs)`` turns ``[(var, value), ...]`` (a node's owned head
  variables) into a partial key;
* ``combine(keys)`` merges the keys of a node and its children —
  **monotone in every argument**, which is exactly the property the
  correctness proof of Algorithm 2 needs (Lemma 3, cases 1–3);
* keys are plain comparable Python values, so priority queues order
  partial answers by comparing ``(key, partial output)`` tuples — the
  paper's tie-break "by the lexicographic order of ``output(c)``".

For ``LEXICOGRAPHIC`` the key is a tuple of ``(global position, value)``
pairs kept sorted by position; merging two such keys is monotone for any
assignment of positions, so the general algorithm supports arbitrary
lexicographic orders without the paper's ``10^(m-i)`` weight transform
(which assumes bounded domains).

Batched keys
------------
The aggregate rankings additionally support a *vectorised* key path:
:meth:`BoundRanking.combine_score_arrays` turns per-attribute weight
arrays (score columns served by the storage layer, see
:mod:`repro.storage.scores`) into a per-row key array with NumPy
reductions, and :func:`batched_node_keys` / :func:`batched_output_keys`
are the enumerator-facing glue.  The contract is exact-or-refuse, like
the join kernels: the array keys are bit-identical to the scalar
``key()`` path (the float operations are performed in the same order),
and anything the arrays cannot reproduce — LEX and composite keys,
non-real or missing weights, non-``int`` values — returns ``None`` so
the scalar path runs unchanged.  This module is the only non-storage
module allowed to touch raw score arrays (``tools/check_layering.py``).

The enumeration phase has its own array algebra on top of the scoring
one: :meth:`BoundRanking.combine_key_arrays` is the array form of
:meth:`BoundRanking.combine` over *already-signed key* arrays (a node's
own keys plus one child-top key column per child), used by the batched
queue construction and the bulk top-k kernel in
:mod:`repro.core.acyclic`.  :data:`combine_counters` and
:data:`topk_counters` record those two dispatch sites' successes and
reason-coded refusals; :class:`~repro.engine.stats.EngineStats`
surfaces them as ``batched_combines`` / ``bulk_topk_calls`` /
``bulk_topk_fallbacks``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

from ..errors import RankingError
from ..storage import kernels, scores

__all__ = [
    "WeightFunction",
    "IdentityWeight",
    "TableWeight",
    "CallableWeight",
    "RankingFunction",
    "BoundRanking",
    "SumRanking",
    "AvgRanking",
    "MinRanking",
    "MaxRanking",
    "ProductRanking",
    "LexRanking",
    "CompositeRanking",
    "Desc",
    "batched_column_keys",
    "batched_node_key_array",
    "batched_node_keys",
    "batched_output_keys",
    "batched_weight_table",
    "combine_counters",
    "topk_counters",
]

#: Instrumentation for the two enumeration-phase array dispatch sites
#: (same thread-safe, scope-collecting class as the kernel counters):
#: ``combine_counters`` tracks per-node batched ``combine`` passes in
#: queue construction, ``topk_counters`` tracks bulk ``top_k`` serves.
#: Refusals carry reason codes (``reasons_snapshot()``).
combine_counters = kernels.KernelCounters()
topk_counters = kernels.KernelCounters()

Pair = tuple[str, Any]


# --------------------------------------------------------------------- #
# weight functions
# --------------------------------------------------------------------- #
class WeightFunction:
    """Maps ``(attribute, value)`` to a real weight (paper's ``w``)."""

    def __call__(self, attr: str, value: Any) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class IdentityWeight(WeightFunction):
    """The value *is* its weight (requires numeric attribute values)."""

    def __call__(self, attr: str, value: Any) -> float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise RankingError(
                f"IdentityWeight needs numeric values; got {value!r} for {attr!r}. "
                "Use TableWeight or CallableWeight for non-numeric domains."
            )
        return value

    def describe(self) -> str:
        return "w(v) = v"


class TableWeight(WeightFunction):
    """Weights from per-attribute lookup tables.

    Parameters
    ----------
    tables:
        ``{attribute: {value: weight}}``.  Attributes absent from the
        mapping fall back to ``default_table`` (shared across attributes,
        e.g. one entity-weight table used by several self-join variables).
    default:
        Weight for values missing from their table (``None`` = raise).
    """

    def __init__(
        self,
        tables: Mapping[str, Mapping[Any, float]],
        *,
        default_table: Mapping[Any, float] | None = None,
        default: float | None = None,
    ):
        self.tables = {a: dict(t) for a, t in tables.items()}
        self.default_table = dict(default_table) if default_table is not None else None
        self.default = default

    def __call__(self, attr: str, value: Any) -> float:
        table = self.tables.get(attr, self.default_table)
        if table is None:
            raise RankingError(f"no weight table for attribute {attr!r}")
        w = table.get(value, self.default)
        if w is None:
            raise RankingError(f"no weight for value {value!r} of attribute {attr!r}")
        return w

    def describe(self) -> str:
        return f"table weights over {sorted(self.tables)}"


class CallableWeight(WeightFunction):
    """Adapter for an arbitrary ``f(attr, value) -> float``."""

    def __init__(self, fn: Callable[[str, Any], float], *, label: str = "callable"):
        self.fn = fn
        self.label = label

    def __call__(self, attr: str, value: Any) -> float:
        return self.fn(attr, value)

    def describe(self) -> str:
        return self.label


# --------------------------------------------------------------------- #
# descending-order value wrapper
# --------------------------------------------------------------------- #
class Desc:
    """Total-order-reversing wrapper used inside LEX keys for DESC attributes."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "Desc") -> bool:
        return other.value < self.value

    def __le__(self, other: "Desc") -> bool:
        return other.value <= self.value

    def __gt__(self, other: "Desc") -> bool:
        return other.value > self.value

    def __ge__(self, other: "Desc") -> bool:
        return other.value >= self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Desc) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Desc", self.value))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Desc({self.value!r})"


# --------------------------------------------------------------------- #
# ranking specs and bound rankings
# --------------------------------------------------------------------- #
class BoundRanking:
    """A ranking bound to concrete head-variable positions.

    Subclasses define the key algebra.  ``zero`` is the key of an empty
    variable set (a node that owns no projection variables).

    ``strictly_monotone`` declares that increasing a child's
    ``(key, partial output)`` strictly increases the combined parent's
    ``(key, partial output)``.  SUM and LEX have this property, which is
    what makes Lawler-style successor generation emit ties in
    deterministic output order and keep duplicates adjacent.  MIN/MAX
    (and PRODUCT, whose zero weights can freeze the combined key) are
    only *weakly* monotone: the combined key never decreases, but equal
    keys can arrive out of output order — the enumerator then buffers
    one key group at a time (see
    :meth:`repro.core.acyclic.AcyclicRankedEnumerator.__iter__`).
    """

    zero: Any = 0.0
    strictly_monotone: bool = True

    def key(self, pairs: Sequence[Pair]) -> Any:
        """Key of a set of ``(variable, value)`` pairs."""
        raise NotImplementedError

    def combine(self, keys: Sequence[Any]) -> Any:
        """Merge node + children keys; monotone in every argument."""
        raise NotImplementedError

    def final_score(self, key: Any) -> Any:
        """User-facing score derived from a full-output key."""
        return key

    def key_of_output(self, variables: Sequence[str], values: Sequence[Any]) -> Any:
        """Key of a complete output tuple (used by sort-based baselines)."""
        return self.key(list(zip(variables, values)))

    # ------------------------------------------------------------------ #
    # batched (array) keys — exact-or-refuse, see module docstring
    # ------------------------------------------------------------------ #
    def batch_weight(self) -> "WeightFunction | None":
        """The weight function driving the batched key path.

        ``None`` declares the key algebra non-batchable (LEX, composite
        and any user subclass that does not opt in): the enumerators
        then compute every key through :meth:`key`, unchanged.
        """
        return None

    def combine_score_arrays(self, arrays: Sequence[Any]):
        """Per-row key array from per-attribute raw weight arrays.

        ``arrays[j][i]`` is ``weight(attr_j, row_i[attr_j])`` as
        ``float64``; the result's entry ``i`` must be bit-identical to
        ``key([(attr_0, row_i[..]), ...])``.  ``None`` refuses (the
        scalar path runs, including any error it raises).
        """
        return None

    def combine_key_arrays(self, arrays: Sequence[Any]):
        """Per-row combined keys from aligned *key* arrays.

        The array form of :meth:`combine`: ``arrays[j][i]`` is part
        ``j``'s key for row ``i`` (a node's own key plus one child-top
        key per child), already signed — unlike
        :meth:`combine_score_arrays`, no direction sign is applied
        here.  The result's entry ``i`` must be bit-identical to
        ``combine([arrays[0][i], arrays[1][i], ...])``.  ``None``
        refuses (LEX/composite keys are not flat floats), and the
        enumerator's scalar combine loop runs unchanged.
        """
        return None


class RankingFunction:
    """Base spec; :meth:`bind` produces the operational object."""

    #: human-readable kind used in reports ("sum", "lexicographic", ...)
    kind: str = "abstract"

    def bind(self, positions: Mapping[str, int]) -> BoundRanking:
        """Bind to ``variable -> global output position``.

        The position map is only semantically relevant for
        ``LEXICOGRAPHIC``; the aggregate rankings ignore it.
        """
        raise NotImplementedError

    def then_by(self, secondary: "RankingFunction") -> "CompositeRanking":
        """Order by ``self``, break ties by ``secondary``."""
        return CompositeRanking(self, secondary)

    def describe(self) -> str:
        return self.kind


class _AggregateBound(BoundRanking):
    """Shared machinery for SUM/MIN/MAX/PRODUCT-style numeric keys."""

    def __init__(self, weight: WeightFunction, sign: float):
        self.weight = weight
        self.sign = sign

    def _w(self, attr: str, value: Any) -> float:
        return self.sign * self.weight(attr, value)

    def batch_weight(self) -> WeightFunction:
        return self.weight


class _SumBound(_AggregateBound):
    zero = 0.0

    def key(self, pairs: Sequence[Pair]) -> float:
        return sum(self._w(a, v) for a, v in pairs)

    def combine(self, keys: Sequence[float]) -> float:
        return sum(keys)

    def final_score(self, key: float) -> float:
        return self.sign * key

    def combine_score_arrays(self, arrays):
        # Mirrors key()'s ``sum()`` operation for operation — the int-0
        # start included, so signed zeros come out bit-identical.
        acc = 0.0 + self.sign * arrays[0]
        for arr in arrays[1:]:
            acc = acc + self.sign * arr
        return acc

    def combine_key_arrays(self, arrays):
        # combine() is sum(keys): int-0 start, then left-to-right adds.
        # Keys are already signed, so no sign is applied here.
        acc = 0.0 + arrays[0]
        for arr in arrays[1:]:
            acc = acc + arr
        return acc


class SumRanking(RankingFunction):
    """``SUM`` ranking: ``rank(t) = Σ w(t[A])`` (ascending by default).

    Parameters
    ----------
    weight:
        Per-value weight function; defaults to :class:`IdentityWeight`.
    descending:
        Enumerate largest-sum first (the paper's DBLP queries use
        ``ORDER BY w1 + w2`` with either direction; descending is
        implemented by negating weights, which keeps combine monotone).
    """

    kind = "sum"

    def __init__(self, weight: WeightFunction | None = None, *, descending: bool = False):
        self.weight = weight or IdentityWeight()
        self.descending = descending

    def bind(self, positions: Mapping[str, int]) -> BoundRanking:
        return _SumBound(self.weight, -1.0 if self.descending else 1.0)

    def describe(self) -> str:
        direction = "desc" if self.descending else "asc"
        return f"SUM[{self.weight.describe()}, {direction}]"


class _AvgBound(_SumBound):
    def __init__(self, weight: WeightFunction, sign: float, arity: int):
        super().__init__(weight, sign)
        self.arity = max(arity, 1)

    def final_score(self, key: float) -> float:
        return self.sign * key / self.arity


class AvgRanking(SumRanking):
    """``AVG`` over the head attributes.

    Because the head size is fixed per query, AVG induces the same order
    as SUM; only the reported score is divided by the head arity (one of
    the paper's "straightforward extensions").
    """

    kind = "avg"

    def bind(self, positions: Mapping[str, int]) -> BoundRanking:
        return _AvgBound(self.weight, -1.0 if self.descending else 1.0, len(positions))


class _MinBound(_AggregateBound):
    zero = float("inf")
    strictly_monotone = False

    def key(self, pairs: Sequence[Pair]) -> float:
        return min((self._w(a, v) for a, v in pairs), default=self.zero)

    def combine(self, keys: Sequence[float]) -> float:
        return min(keys) if keys else self.zero

    def final_score(self, key: float) -> float:
        return self.sign * key

    def combine_score_arrays(self, arrays):
        acc = self.sign * arrays[0]
        np = kernels.np
        for arr in arrays[1:]:
            acc = np.minimum(acc, self.sign * arr)
        return acc

    def combine_key_arrays(self, arrays):
        acc = arrays[0]
        np = kernels.np
        for arr in arrays[1:]:
            acc = np.minimum(acc, arr)
        return acc


class MinRanking(RankingFunction):
    """Rank by the minimum attribute weight (ascending)."""

    kind = "min"

    def __init__(self, weight: WeightFunction | None = None, *, descending: bool = False):
        self.weight = weight or IdentityWeight()
        self.descending = descending

    def bind(self, positions: Mapping[str, int]) -> BoundRanking:
        # Descending-min == ascending over negated weights *maximised*;
        # handled by sign inside a max-style bound.
        if self.descending:
            return _MaxBound(self.weight, -1.0)
        return _MinBound(self.weight, 1.0)

    def describe(self) -> str:
        return f"MIN[{self.weight.describe()}]"


class _MaxBound(_AggregateBound):
    zero = float("-inf")
    strictly_monotone = False

    def key(self, pairs: Sequence[Pair]) -> float:
        return max((self._w(a, v) for a, v in pairs), default=self.zero)

    def combine(self, keys: Sequence[float]) -> float:
        return max(keys) if keys else self.zero

    def final_score(self, key: float) -> float:
        return self.sign * key

    def combine_score_arrays(self, arrays):
        acc = self.sign * arrays[0]
        np = kernels.np
        for arr in arrays[1:]:
            acc = np.maximum(acc, self.sign * arr)
        return acc

    def combine_key_arrays(self, arrays):
        acc = arrays[0]
        np = kernels.np
        for arr in arrays[1:]:
            acc = np.maximum(acc, arr)
        return acc


class MaxRanking(RankingFunction):
    """Rank by the maximum attribute weight (ascending)."""

    kind = "max"

    def __init__(self, weight: WeightFunction | None = None, *, descending: bool = False):
        self.weight = weight or IdentityWeight()
        self.descending = descending

    def bind(self, positions: Mapping[str, int]) -> BoundRanking:
        if self.descending:
            return _MinBound(self.weight, -1.0)
        return _MaxBound(self.weight, 1.0)

    def describe(self) -> str:
        return f"MAX[{self.weight.describe()}]"


class _ProductBound(BoundRanking):
    strictly_monotone = False  # zero weights freeze the combined product

    def __init__(self, weight: WeightFunction, descending: bool):
        self.weight = weight
        self.descending = descending
        # Keys carry the direction as their sign: ascending keys are the
        # (non-negative) products themselves, descending keys are their
        # negation, so smaller key == enumerated earlier in both modes.
        self.zero = -1.0 if descending else 1.0

    def _w(self, attr: str, value: Any) -> float:
        w = self.weight(attr, value)
        if w < 0:
            raise RankingError(
                f"PRODUCT ranking requires non-negative weights, got {w} for "
                f"{attr!r}={value!r} (multiplication is not monotone otherwise)"
            )
        return w

    def key(self, pairs: Sequence[Pair]) -> float:
        out = 1.0
        for a, v in pairs:
            out *= self._w(a, v)
        return -out if self.descending else out

    def combine(self, keys: Sequence[float]) -> float:
        out = 1.0
        for k in keys:
            out *= abs(k)
        return -out if self.descending else out

    def final_score(self, key: float) -> float:
        return abs(key)

    def batch_weight(self) -> WeightFunction:
        return self.weight

    def combine_score_arrays(self, arrays):
        np = kernels.np
        for arr in arrays:
            # key() raises for negative weights; refuse so the scalar
            # path raises the identical RankingError.
            if bool((arr < 0).any()):
                return None
        acc = 1.0 * arrays[0]
        for arr in arrays[1:]:
            acc = acc * arr
        return np.negative(acc) if self.descending else acc

    def combine_key_arrays(self, arrays):
        # combine() multiplies 1.0 by abs(k) for every key (keys carry
        # the direction as their sign); mirror it op for op.
        np = kernels.np
        acc = 1.0 * np.abs(arrays[0])
        for arr in arrays[1:]:
            acc = acc * np.abs(arr)
        return np.negative(acc) if self.descending else acc


class ProductRanking(RankingFunction):
    """Rank by the product of non-negative attribute weights.

    One of the paper's "circuits that use sum and products" extensions;
    monotone combination requires non-negative weights, validated at key
    creation.
    """

    kind = "product"

    def __init__(self, weight: WeightFunction | None = None, *, descending: bool = False):
        self.weight = weight or IdentityWeight()
        self.descending = descending

    def bind(self, positions: Mapping[str, int]) -> BoundRanking:
        return _ProductBound(self.weight, self.descending)

    def describe(self) -> str:
        return f"PRODUCT[{self.weight.describe()}]"


class _LexBound(BoundRanking):
    zero = ()

    def __init__(
        self,
        positions: Mapping[str, int],
        desc_vars: frozenset[str],
        weight: WeightFunction | None,
    ):
        self.positions = dict(positions)
        self.desc_vars = desc_vars
        self.weight = weight

    def _value_key(self, attr: str, value: Any) -> Any:
        # Weighted LEX compares per-attribute weights, with the raw value
        # as a deterministic refinement of weight ties.
        if self.weight is not None:
            return (self.weight(attr, value), value)
        return value

    def key(self, pairs: Sequence[Pair]) -> tuple:
        items = []
        for attr, value in pairs:
            pos = self.positions.get(attr)
            if pos is None:
                raise RankingError(f"LEX ranking has no position for variable {attr!r}")
            vk = self._value_key(attr, value)
            items.append((pos, Desc(vk) if attr in self.desc_vars else vk))
        items.sort(key=lambda iv: iv[0])
        return tuple(items)

    def combine(self, keys: Sequence[tuple]) -> tuple:
        merged: list[tuple[int, Any]] = []
        for k in keys:
            merged.extend(k)
        merged.sort(key=lambda iv: iv[0])
        return tuple(merged)

    def final_score(self, key: tuple) -> tuple:
        out = []
        for _, v in key:
            if isinstance(v, Desc):
                v = v.value
            if self.weight is not None:
                v = v[1]  # unwrap the (weight, value) refinement
            out.append(v)
        return tuple(out)


class LexRanking(RankingFunction):
    """``LEXICOGRAPHIC`` ranking over the head variables.

    Parameters
    ----------
    order:
        Variable comparison order; defaults to the query head order at
        bind time (positions supplied by the enumerator).
    descending:
        Variables to compare in descending order (the paper's
        ``ORDER BY A1 ASC, A2 DESC ...`` generality).
    weight:
        Optional per-value weight function: compare attributes by
        ``w(value)`` instead of the raw value (the paper's
        ``ORDER BY A1.weight, A2.weight`` queries), refined by the raw
        value on weight ties for determinism.
    """

    kind = "lexicographic"

    def __init__(
        self,
        order: Sequence[str] | None = None,
        descending: Iterable[str] = (),
        *,
        weight: WeightFunction | None = None,
    ):
        self.order = tuple(order) if order is not None else None
        self.descending = frozenset(descending)
        self.weight = weight

    def bind(self, positions: Mapping[str, int]) -> BoundRanking:
        if self.order is not None:
            missing = [v for v in positions if v not in self.order]
            if missing:
                raise RankingError(f"LEX order {self.order} is missing variables {missing}")
            pos = {v: i for i, v in enumerate(self.order) if v in positions}
        else:
            pos = dict(positions)
        unknown = self.descending - set(pos)
        if unknown:
            raise RankingError(f"descending variables {sorted(unknown)} not in the head")
        return _LexBound(pos, self.descending, self.weight)

    def describe(self) -> str:
        order = "head order" if self.order is None else ",".join(self.order)
        desc = f" desc={sorted(self.descending)}" if self.descending else ""
        w = f" w={self.weight.describe()}" if self.weight is not None else ""
        return f"LEX[{order}{desc}{w}]"


class _CompositeBound(BoundRanking):
    def __init__(self, primary: BoundRanking, secondary: BoundRanking):
        self.primary = primary
        self.secondary = secondary
        self.zero = (primary.zero, secondary.zero)
        # Strictness of the pair is inherited from the primary only: a
        # weak primary can hold the first component constant while the
        # secondary moves arbitrarily.
        self.strictly_monotone = primary.strictly_monotone

    def key(self, pairs: Sequence[Pair]) -> tuple:
        return (self.primary.key(pairs), self.secondary.key(pairs))

    def combine(self, keys: Sequence[tuple]) -> tuple:
        return (
            self.primary.combine([k[0] for k in keys]),
            self.secondary.combine([k[1] for k in keys]),
        )

    def final_score(self, key: tuple) -> tuple:
        return (self.primary.final_score(key[0]), self.secondary.final_score(key[1]))


class CompositeRanking(RankingFunction):
    """Primary ranking with a secondary tie-break ranking.

    Both components must themselves be monotone-decomposable, which makes
    the pairwise combination monotone again.  Used by the Algorithm 6
    baseline to keep equal projections adjacent.
    """

    kind = "composite"

    def __init__(self, primary: RankingFunction, secondary: RankingFunction):
        self.primary = primary
        self.secondary = secondary

    def bind(self, positions: Mapping[str, int]) -> BoundRanking:
        return _CompositeBound(self.primary.bind(positions), self.secondary.bind(positions))

    def describe(self) -> str:
        return f"{self.primary.describe()} then {self.secondary.describe()}"


# --------------------------------------------------------------------- #
# batched key computation: score columns -> per-row key arrays
# --------------------------------------------------------------------- #
def _view_score_array(instances, alias: str, rows, position: int, attr: str, weight):
    """Weights aligned with ``instances[alias]`` via the storage cache.

    Available when the instances remember their source scan view
    (:class:`~repro.algorithms.yannakakis.AtomInstances` /
    ``ReducedInstances``): the view-aligned score column comes out of
    the relation's access-path cache — materialised once per store
    version — and the reducer's survivor indices project it onto the
    surviving rows in one gather.
    """
    source_of = getattr(instances, "source_of", None)
    if source_of is None:
        return None
    source = source_of(alias)
    if source is None:
        return None
    relation, positions, selections, distinct = source
    view = relation.scan().scores_view(
        positions, selections, distinct, index=position, attr=attr, weight=weight
    )
    if view is None:
        return None
    survivors = instances.survivors_of(alias)
    arr = view.take(survivors)
    if arr is None or len(arr) != len(rows):
        return None
    return arr


def batched_node_key_array(
    bound: BoundRanking, instances, alias: str, own_pairs: Sequence[tuple[str, int]]
):
    """Rank keys of one join-tree node's rows as a ``float64`` array.

    ``own_pairs`` is the node's owned head variables with their column
    positions in ``instances[alias]`` (the enumerator's ``_RTNode``
    layout).  Entry ``i`` of the result is bit-identical to
    ``bound.key([(var, rows[i][pos]) for var, pos in own_pairs])``;
    ``None`` means "compute keys the scalar way" — non-batchable
    rankings, non-``int`` values, weights the arrays cannot represent.
    """
    if not own_pairs or not scores.enabled():
        return None
    weight = bound.batch_weight()
    if weight is None:
        scores.counters.record_fallback("unbatchable-ranking")
        return None
    rows = instances[alias]
    if not rows:
        return None
    arrays = []
    for var, position in own_pairs:
        arr = _view_score_array(instances, alias, rows, position, var, weight)
        if arr is None:
            arr = scores.adhoc_score_array(rows, position, var, weight)
        if arr is None:
            return None
        arrays.append(arr)
    keys = bound.combine_score_arrays(arrays)
    if keys is None:
        scores.counters.record_fallback("combine-refused")
        return None
    return keys


def batched_node_keys(
    bound: BoundRanking, instances, alias: str, own_pairs: Sequence[tuple[str, int]]
) -> list | None:
    """:func:`batched_node_key_array` as a plain float list (or ``None``)."""
    keys = batched_node_key_array(bound, instances, alias, own_pairs)
    return None if keys is None else keys.tolist()


def batched_output_keys(
    bound: BoundRanking, variables: Sequence[str], rows: Sequence[tuple]
) -> list | None:
    """Rank keys of complete output tuples as a plain float list.

    The array form of :meth:`BoundRanking.key_of_output` (the star
    structure's heavy-output sort); same exact-or-refuse contract as
    :func:`batched_node_keys`.
    """
    if not variables or not rows or not scores.enabled():
        return None
    weight = bound.batch_weight()
    if weight is None:
        scores.counters.record_fallback("unbatchable-ranking")
        return None
    arrays = []
    for position, var in enumerate(variables):
        arr = scores.adhoc_score_array(rows, position, var, weight)
        if arr is None:
            return None
        arrays.append(arr)
    keys = bound.combine_score_arrays(arrays)
    if keys is None:
        scores.counters.record_fallback("combine-refused")
        return None
    return keys.tolist()


def batched_column_keys(bound: BoundRanking, variables: Sequence[str], columns):
    """Rank keys of output tuples held as aligned ``int64`` code columns.

    The column-native sibling of :func:`batched_output_keys` for
    callers that already hold the candidate tuples as arrays (the star
    enumerator's joined heavy fragments); ``columns[j]`` is variable
    ``variables[j]``'s values, pre-checked by the caller to come from
    exactly-``int`` cells.  Returns a ``float64`` key array whose entry
    ``i`` is bit-identical to ``bound.key_of_output(variables,
    row_i)``, or ``None`` to refuse.
    """
    if not variables or not scores.enabled():
        return None
    weight = bound.batch_weight()
    if weight is None:
        scores.counters.record_fallback("unbatchable-ranking")
        return None
    arrays = []
    for var, column in zip(variables, columns):
        view = scores.build_score_view(column, var, weight)
        if view is None:
            return None
        arr = view.take(None)
        if arr is None:
            scores.counters.record_fallback("missing-weight")
            return None
        arrays.append(arr)
    keys = bound.combine_score_arrays(arrays)
    if keys is None:
        scores.counters.record_fallback("combine-refused")
        return None
    return keys


def batched_weight_table(
    weight: WeightFunction, attr: str, rows: Sequence[tuple], position: int
) -> dict | None:
    """``{value: weight(attr, value)}`` over one column's distinct values.

    The lexicographic backtracker's score-column analogue: the distinct
    pass runs as one array operation and the weight function is called
    once per distinct value, with the **raw** result cached — LEX
    comparison keys embed the weight call's exact return value (an
    ``int`` weight orders the same as its float but is a different
    key), so no ``float64`` conversion is applied.  Values whose weight
    call raises are left out of the table: the caller's per-value
    fallback then re-calls the weight function and raises the identical
    error at the identical point.  ``None`` refuses (scores disabled,
    non-``int`` cells).
    """
    if not scores.enabled():
        return None
    if not rows:
        return {}
    if not kernels.rows_exactly_int(rows, (position,)):
        scores.counters.record_fallback("conversion")
        return None
    column = kernels.column_array([row[position] for row in rows])
    if column is None:
        scores.counters.record_fallback("conversion")
        return None
    table: dict[int, Any] = {}
    for value in kernels.np.unique(column).tolist():
        try:
            table[value] = weight(attr, value)
        except Exception:
            continue
    scores.counters.record_call()
    return table
