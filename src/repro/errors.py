"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish schema problems from query-structure
problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "QueryError",
    "CyclicQueryError",
    "NotAStarQueryError",
    "DecompositionError",
    "RankingError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SchemaError(ReproError):
    """A relation or database violates schema constraints.

    Examples: duplicate attribute names in a relation schema, a tuple whose
    arity does not match its schema, or two relations registered under the
    same name.
    """


class QueryError(ReproError):
    """A query object is malformed.

    Examples: a head (projection) variable that does not appear in any atom,
    an atom whose arity does not match its relation, or a union whose
    branches disagree on the head.
    """


class CyclicQueryError(QueryError):
    """An operation that requires an acyclic query received a cyclic one.

    Raised by join-tree construction (:mod:`repro.query.jointree`) and by
    the acyclic enumerators when handed a query that fails the GYO test.
    Cyclic queries are supported through :mod:`repro.core.cyclic` instead.
    """


class NotAStarQueryError(QueryError):
    """The star-query enumerator received a query that is not a star.

    A star query ``Q*_m`` consists of ``m`` binary atoms ``R_i(A_i, B)``
    that all join on the same variable ``B`` and project exactly the
    ``A_i`` variables (paper Section 4).
    """


class DecompositionError(ReproError):
    """No valid generalized hypertree decomposition could be constructed."""


class RankingError(ReproError):
    """A ranking function was configured or applied incorrectly.

    Examples: combining keys from different ranking functions, or a
    lexicographic ranking whose attribute order mentions unknown variables.
    """


class WorkloadError(ReproError):
    """A synthetic workload generator received invalid parameters."""
