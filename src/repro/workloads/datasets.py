"""Synthetic stand-ins for the paper's datasets (§6.1).

The paper evaluates on DBLP and IMDB (small scale), Friendster and
Memetracker (large scale) and LDBC SNB (scalability).  For every query
in the evaluation these reduce to *skewed bipartite edge relations*
(author-paper, person-movie, user-group, user-meme) or a social graph
(person-knows-person + person-post).  The builders here generate seeded
synthetic equivalents whose degree skew — the driver of all performance
effects — is tuned per dataset family (Memetracker's "high duplication
of answers" gets the heaviest tail).  See DESIGN.md §4 for the full
substitution argument.

Every builder returns a :class:`Workload`: the database, per-entity-kind
weight tables under both of the paper's schemes (random, logarithmic),
and a :meth:`Workload.ranking` factory that wires a
:class:`~repro.workloads.queries.QuerySpec` to the right tables.
"""

from __future__ import annotations

from typing import Mapping

from ..core.ranking import LexRanking, RankingFunction, SumRanking
from ..data.database import Database
from ..errors import WorkloadError
from .generators import power_law_graph, zipf_bipartite
from .queries import QuerySpec
from .weights import log_degree_weights, random_weights, table_weight_for_vars

__all__ = [
    "Workload",
    "make_bipartite_workload",
    "make_dblp_like",
    "make_imdb_like",
    "make_memetracker_like",
    "make_friendster_like",
    "make_ldbc_like",
]


class Workload:
    """A dataset plus its entity weight tables.

    Attributes
    ----------
    name:
        Dataset family label ("dblp-like", ...).
    db:
        The generated :class:`Database`.
    entity_weights:
        ``scheme -> entity kind -> {value: weight}`` with schemes
        ``"random"`` and ``"log"`` (paper §6.1.1).
    meta:
        Generation parameters, for reports.
    """

    __slots__ = ("name", "db", "entity_weights", "meta")

    def __init__(
        self,
        name: str,
        db: Database,
        entity_weights: Mapping[str, Mapping[str, dict]],
        meta: dict,
    ):
        self.name = name
        self.db = db
        self.entity_weights = {s: dict(kinds) for s, kinds in entity_weights.items()}
        self.meta = dict(meta)

    def weight_tables_for(self, spec: QuerySpec, *, scheme: str = "random") -> dict:
        """``head variable -> weight table`` for one query spec."""
        try:
            kinds = self.entity_weights[scheme]
        except KeyError:
            raise WorkloadError(
                f"unknown weight scheme {scheme!r}; have {sorted(self.entity_weights)}"
            ) from None
        tables = {}
        for var in spec.query.head:
            kind = spec.var_entities[var]
            if kind not in kinds:
                raise WorkloadError(
                    f"workload {self.name!r} has no entity kind {kind!r} "
                    f"(have {sorted(kinds)})"
                )
            tables[var] = kinds[kind]
        return tables

    def ranking(
        self,
        spec: QuerySpec,
        *,
        kind: str = "sum",
        scheme: str = "random",
        descending: bool = False,
    ) -> RankingFunction:
        """Build the paper's ranking for a query over this dataset.

        ``kind="sum"`` gives ``ORDER BY w(A1) + w(A2) + ...``;
        ``kind="lex"`` gives ``ORDER BY w(A1), w(A2), ...``.
        """
        weight = table_weight_for_vars(self.weight_tables_for(spec, scheme=scheme))
        if kind == "sum":
            return SumRanking(weight, descending=descending)
        if kind == "lex":
            descending_vars = tuple(spec.query.head) if descending else ()
            return LexRanking(weight=weight, descending=descending_vars)
        raise WorkloadError(f"unknown ranking kind {kind!r}; use 'sum' or 'lex'")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Workload({self.name}, |D|={self.db.size})"


def make_bipartite_workload(
    name: str,
    *,
    n_left: int,
    n_right: int,
    n_edges: int,
    skew_left: float,
    skew_right: float,
    seed: int,
    edge_name: str = "E",
) -> Workload:
    """Shared builder for the bipartite dataset families."""
    edges = zipf_bipartite(
        n_left,
        n_right,
        n_edges,
        skew_left=skew_left,
        skew_right=skew_right,
        seed=seed,
    )
    db = Database()
    rel = db.add_relation(edge_name, ("a", "p"), edges)
    entity_weights = {
        "random": {
            "left": random_weights(range(n_left), seed=seed + 1),
            "right": random_weights(range(n_right), seed=seed + 2),
        },
        "log": {
            "left": {**{v: 0.0 for v in range(n_left)}, **log_degree_weights(rel, "a")},
            "right": {**{v: 0.0 for v in range(n_right)}, **log_degree_weights(rel, "p")},
        },
    }
    meta = {
        "n_left": n_left,
        "n_right": n_right,
        "n_edges": len(edges),
        "skew_left": skew_left,
        "skew_right": skew_right,
        "seed": seed,
    }
    return Workload(name, db, entity_weights, meta)


def make_dblp_like(scale: float = 1.0, *, seed: int = 0) -> Workload:
    """DBLP-like author-paper graph (moderate skew, sparse)."""
    return make_bipartite_workload(
        "dblp-like",
        n_left=int(800 * scale),
        n_right=int(1200 * scale),
        n_edges=int(4000 * scale),
        skew_left=1.05,
        skew_right=0.9,
        seed=seed,
    )


def make_imdb_like(scale: float = 1.0, *, seed: int = 1) -> Workload:
    """IMDB-like person-movie graph (denser, more skewed than DBLP —
    the paper's IMDB joins blow up much harder)."""
    return make_bipartite_workload(
        "imdb-like",
        n_left=int(700 * scale),
        n_right=int(500 * scale),
        n_edges=int(5000 * scale),
        skew_left=1.25,
        skew_right=1.1,
        seed=seed,
    )


def make_memetracker_like(scale: float = 1.0, *, seed: int = 2) -> Workload:
    """Memetracker-like user-meme graph: the heaviest duplication (the
    paper attributes its rapidly growing priority queues to this)."""
    return make_bipartite_workload(
        "memetracker-like",
        n_left=int(1200 * scale),
        n_right=int(500 * scale),
        n_edges=int(9000 * scale),
        skew_left=1.45,
        skew_right=1.25,
        seed=seed,
    )


def make_friendster_like(scale: float = 1.0, *, seed: int = 3) -> Workload:
    """Friendster-like user-group graph (large, skewed)."""
    return make_bipartite_workload(
        "friendster-like",
        n_left=int(1800 * scale),
        n_right=int(600 * scale),
        n_edges=int(10000 * scale),
        skew_left=1.3,
        skew_right=1.15,
        seed=seed,
    )


def make_ldbc_like(sf: float = 10.0, *, seed: int = 4) -> Workload:
    """LDBC-SNB-like social network scaling linearly in ``sf``.

    Relations: ``K(p1, p2)`` person-knows-person, ``P(person, post)``
    person-interacted-with-post.  The Figure 9 experiment sweeps ``sf``
    and expects linear runtime growth of the UCQ enumerators.
    """
    if sf <= 0:
        raise WorkloadError(f"scale factor must be positive, got {sf}")
    n_persons = int(60 * sf)
    n_posts = int(90 * sf)
    knows = power_law_graph(n_persons, int(260 * sf), skew=1.15, seed=seed)
    interactions = zipf_bipartite(
        n_persons, n_posts, int(220 * sf), skew_left=1.1, skew_right=0.9, seed=seed + 1
    )
    db = Database()
    k_rel = db.add_relation("K", ("p1", "p2"), knows)
    db.add_relation("P", ("person", "post"), interactions)
    entity_weights = {
        "random": {
            "person": random_weights(range(n_persons), seed=seed + 2),
            "post": random_weights(range(n_posts), seed=seed + 3),
        },
        "log": {
            "person": {
                **{v: 0.0 for v in range(n_persons)},
                **log_degree_weights(k_rel, "p1"),
            },
            "post": {v: 0.0 for v in range(n_posts)},
        },
    }
    meta = {"sf": sf, "n_persons": n_persons, "n_posts": n_posts, "seed": seed}
    return Workload(f"ldbc-like-sf{sf:g}", db, entity_weights, meta)
