"""Synthetic workloads: dataset generators, paper queries, weight schemes."""

from .datasets import (
    Workload,
    make_bipartite_workload,
    make_dblp_like,
    make_friendster_like,
    make_imdb_like,
    make_ldbc_like,
    make_memetracker_like,
)
from .generators import power_law_graph, uniform_bipartite, zipf_bipartite
from .queries import (
    QuerySpec,
    bipartite_cycle,
    bowtie,
    butterfly,
    four_hop,
    general_cycle,
    ldbc_q3_like,
    ldbc_q10_like,
    ldbc_q11_like,
    path,
    star,
    three_hop,
    two_hop,
)
from .weights import log_degree_weights, random_weights, table_weight_for_vars

__all__ = [
    "Workload",
    "make_bipartite_workload",
    "make_dblp_like",
    "make_imdb_like",
    "make_memetracker_like",
    "make_friendster_like",
    "make_ldbc_like",
    "zipf_bipartite",
    "uniform_bipartite",
    "power_law_graph",
    "QuerySpec",
    "two_hop",
    "three_hop",
    "four_hop",
    "star",
    "path",
    "bipartite_cycle",
    "bowtie",
    "general_cycle",
    "butterfly",
    "ldbc_q3_like",
    "ldbc_q10_like",
    "ldbc_q11_like",
    "log_degree_weights",
    "random_weights",
    "table_weight_for_vars",
]
