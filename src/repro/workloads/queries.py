"""The paper's evaluation queries as reusable builders (Figures 4, 11, 13).

Every builder returns a :class:`QuerySpec`: the query object plus the
entity kind of each head variable, which is what connects head variables
to the dataset's entity weight tables (e.g. both endpoints of
``DBLP2hop`` are *authors*, the endpoints of ``DBLP3hop`` are an author
and a paper).

Path/star shapes over a bipartite edge relation ``E(a, p)``:

* ``two_hop``    — ``π_{a1,a2}(E(a1,p) ⋈ E(a2,p))`` (DBLP2hop/IMDB2hop);
* ``three_hop``  — ``π_{a1,p2}(E(a1,p1) ⋈ E(a2,p1) ⋈ E(a2,p2))``;
* ``four_hop``   — ``π_{a1,a3}`` of the 4-step alternation;
* ``star``       — ``Q*_m``: ``π_{a1..am}(E(a1,p) ⋈ ... ⋈ E(am,p))``.

Cyclic shapes (Figure 13): bipartite 4/6/8-cycles and the bowtie (two
4-cycles sharing an endpoint), plus the general ``n``-cycle and butterfly
over distinct binary relations (Figure 2 / Example 6).

LDBC-like UCQs: union-of-CQ neighbourhood analyses standing in for the
benchmark's Q3/Q10/Q11 (each is a UNION of ranked neighbourhood CQs —
see DESIGN.md's substitution table).
"""

from __future__ import annotations

from ..errors import WorkloadError
from ..query.query import Atom, JoinProjectQuery, UnionQuery

__all__ = [
    "QuerySpec",
    "two_hop",
    "three_hop",
    "four_hop",
    "star",
    "path",
    "bipartite_cycle",
    "bowtie",
    "general_cycle",
    "butterfly",
    "ldbc_q3_like",
    "ldbc_q10_like",
    "ldbc_q11_like",
]


class QuerySpec:
    """A query plus the entity kind of each head variable.

    Attributes
    ----------
    name:
        Paper-style label ("DBLP2hop", "four cycle", ...).
    query:
        The :class:`JoinProjectQuery` or :class:`UnionQuery`.
    var_entities:
        ``head variable -> entity kind`` ("left"/"right" for bipartite
        edges, or dataset-specific kinds like "person").
    """

    __slots__ = ("name", "query", "var_entities")

    def __init__(self, name: str, query, var_entities: dict[str, str]):
        self.name = name
        self.query = query
        self.var_entities = dict(var_entities)
        for v in query.head:
            if v not in self.var_entities:
                raise WorkloadError(f"head variable {v!r} has no entity kind")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QuerySpec({self.name}: {self.query!r})"


def two_hop(edge: str = "E") -> QuerySpec:
    """2-hop co-occurrence pairs (DBLP2hop / IMDB2hop / 2-neighbourhood)."""
    q = JoinProjectQuery(
        [Atom(edge, ("a1", "p")), Atom(edge, ("a2", "p"))],
        head=("a1", "a2"),
        name=f"{edge}2hop",
    )
    return QuerySpec(q.name, q, {"a1": "left", "a2": "left"})


def three_hop(edge: str = "E") -> QuerySpec:
    """3-hop reachable (left, right) pairs (DBLP3hop)."""
    q = JoinProjectQuery(
        [
            Atom(edge, ("a1", "p1")),
            Atom(edge, ("a2", "p1")),
            Atom(edge, ("a2", "p2")),
        ],
        head=("a1", "p2"),
        name=f"{edge}3hop",
    )
    return QuerySpec(q.name, q, {"a1": "left", "p2": "right"})


def four_hop(edge: str = "E") -> QuerySpec:
    """4-hop reachable (left, left) pairs (DBLP4hop)."""
    q = JoinProjectQuery(
        [
            Atom(edge, ("a1", "p1")),
            Atom(edge, ("a2", "p1")),
            Atom(edge, ("a2", "p2")),
            Atom(edge, ("a3", "p2")),
        ],
        head=("a1", "a3"),
        name=f"{edge}4hop",
    )
    return QuerySpec(q.name, q, {"a1": "left", "a3": "left"})


def star(m: int, edge: str = "E") -> QuerySpec:
    """The star query ``Q*_m`` (DBLP3star is ``m = 3``)."""
    if m < 2:
        raise WorkloadError(f"star queries need m >= 2, got {m}")
    q = JoinProjectQuery(
        [Atom(edge, (f"a{i}", "p")) for i in range(1, m + 1)],
        head=tuple(f"a{i}" for i in range(1, m + 1)),
        name=f"{edge}{m}star",
    )
    return QuerySpec(q.name, q, {f"a{i}": "left" for i in range(1, m + 1)})


def path(hops: int, edge: str = "E") -> QuerySpec:
    """Generic ``hops``-step alternating path with endpoint projection."""
    if hops < 1:
        raise WorkloadError(f"need at least one hop, got {hops}")
    # Alternate E(a1,p1), E(a2,p1), E(a2,p2), E(a3,p2), ...
    atoms: list[Atom] = []
    for step in range(hops):
        a_index = step // 2 + 1 if step % 2 == 0 else step // 2 + 2
        atoms.append(Atom(edge, (f"a{a_index}", f"p{step // 2 + 1}")))
    if hops % 2 == 0:
        head = ("a1", f"a{hops // 2 + 1}")
        kinds = {"a1": "left", f"a{hops // 2 + 1}": "left"}
    else:
        head = ("a1", f"p{(hops + 1) // 2}")
        kinds = {"a1": "left", f"p{(hops + 1) // 2}": "right"}
    q = JoinProjectQuery(atoms, head=head, name=f"{edge}{hops}hop")
    return QuerySpec(q.name, q, kinds)


def bipartite_cycle(n: int, edge: str = "E") -> QuerySpec:
    """A ``2n``-atom cycle in the bipartite graph (Figure 13's 4/6/8 cycles
    use ``n = 2, 3, 4``): ``a1-p1-a2-p2-...-an-pn-a1``."""
    if n < 2:
        raise WorkloadError(f"bipartite cycles need n >= 2 left entities, got {n}")
    atoms: list[Atom] = []
    for i in range(1, n + 1):
        atoms.append(Atom(edge, (f"a{i}", f"p{i}")))
        nxt = i + 1 if i < n else 1
        atoms.append(Atom(edge, (f"a{nxt}", f"p{i}")))
    if n == 3:
        # The paper's six-cycle projects an (author, paper) pair.
        head = ("a1", "p2")
        kinds = {"a1": "left", "p2": "right"}
    else:
        head = ("a1", f"a{n // 2 + 1}")
        kinds = {"a1": "left", f"a{n // 2 + 1}": "left"}
    label = {2: "four cycle", 3: "six cycle", 4: "eight cycle"}.get(n, f"{2*n} cycle")
    q = JoinProjectQuery(atoms, head=head, name=label)
    return QuerySpec(label, q, kinds)


def bowtie(edge: str = "E") -> QuerySpec:
    """The paper's bowtie (Appendix G.3): two *eight-cycles* joined at a
    common left entity — ``π_{a1,a3}(V(a1,a2) ⋈ V(a2,a3))`` where ``V``
    is the eight-cycle co-author-of-co-author view.  This is why the
    bowtie is the most expensive cyclic query in Figure 10.
    """

    def cycle_atoms(a_names: list[str], p_prefix: str) -> list[Atom]:
        atoms: list[Atom] = []
        n = len(a_names)
        for i in range(n):
            atoms.append(Atom(edge, (a_names[i], f"{p_prefix}{i + 1}")))
            atoms.append(Atom(edge, (a_names[(i + 1) % n], f"{p_prefix}{i + 1}")))
        return atoms

    # Eight-cycle #1 over a1..a4; eight-cycle #2 shares its first entity
    # with #1's opposite corner (a3 == b1).
    left = cycle_atoms(["a1", "a2", "a3", "a4"], "p")
    right = cycle_atoms(["a3", "b2", "b3", "b4"], "q")
    q = JoinProjectQuery(left + right, head=("a1", "b3"), name="bowtie")
    return QuerySpec("bowtie", q, {"a1": "left", "b3": "left"})


def general_cycle(n: int, prefix: str = "R") -> QuerySpec:
    """The ``n``-cycle over distinct binary relations (paper Figure 2):
    ``R1(x1,x2) ⋈ R2(x2,x3) ⋈ ... ⋈ Rn(xn,x1)``, head ``(x1, x_{n/2+1})``."""
    if n < 3:
        raise WorkloadError(f"general cycles need n >= 3, got {n}")
    atoms = [
        Atom(f"{prefix}{i}", (f"x{i}", f"x{i % n + 1}")) for i in range(1, n + 1)
    ]
    head = ("x1", f"x{n // 2 + 1}")
    q = JoinProjectQuery(atoms, head=head, name=f"{n}-cycle")
    return QuerySpec(q.name, q, {head[0]: "node", head[1]: "node"})


def butterfly(prefix: str = "R") -> QuerySpec:
    """Example 6's butterfly: ``π_{A,C}(R1(A,B) ⋈ R2(B,C) ⋈ R3(C,D) ⋈ R4(D,A))``."""
    atoms = [
        Atom(f"{prefix}1", ("A", "B")),
        Atom(f"{prefix}2", ("B", "C")),
        Atom(f"{prefix}3", ("C", "D")),
        Atom(f"{prefix}4", ("D", "A")),
    ]
    q = JoinProjectQuery(atoms, head=("A", "C"), name="butterfly")
    return QuerySpec("butterfly", q, {"A": "node", "C": "node"})


# --------------------------------------------------------------------- #
# LDBC-like UCQs (scalability workload, Figure 9)
# --------------------------------------------------------------------- #
def ldbc_q3_like(knows: str = "K", posts: str = "P") -> QuerySpec:
    """Q3-like: ranked pairs reachable through a shared friend OR a shared
    post interaction (multi-source neighbourhood union)."""
    q1 = JoinProjectQuery(
        [Atom(knows, ("x", "z")), Atom(knows, ("y", "z"))],
        head=("x", "y"),
        name="q3a",
    )
    q2 = JoinProjectQuery(
        [Atom(posts, ("x", "m")), Atom(posts, ("y", "m"))],
        head=("x", "y"),
        name="q3b",
    )
    u = UnionQuery([q1, q2], name="Q3")
    return QuerySpec("Q3", u, {"x": "person", "y": "person"})


def ldbc_q10_like(knows: str = "K", posts: str = "P") -> QuerySpec:
    """Q10-like: ranked (person, content) pairs one hop beyond a friend,
    OR directly interacted with."""
    q1 = JoinProjectQuery(
        [Atom(knows, ("x", "f")), Atom(posts, ("f", "m"))],
        head=("x", "m"),
        name="q10a",
    )
    q2 = JoinProjectQuery([Atom(posts, ("x", "m"))], head=("x", "m"), name="q10b")
    u = UnionQuery([q1, q2], name="Q10")
    return QuerySpec("Q10", u, {"x": "person", "m": "post"})


def ldbc_q11_like(knows: str = "K") -> QuerySpec:
    """Q11-like: ranked friend and friend-of-friend pairs."""
    q1 = JoinProjectQuery([Atom(knows, ("x", "y"))], head=("x", "y"), name="q11a")
    q2 = JoinProjectQuery(
        [Atom(knows, ("x", "f")), Atom(knows, ("f", "y"))],
        head=("x", "y"),
        name="q11b",
    )
    u = UnionQuery([q1, q2], name="Q11")
    return QuerySpec("Q11", u, {"x": "person", "y": "person"})
