"""Weight assignment schemes (paper §6.1.1).

The paper attaches a weight to every entity in two ways:

* **random** — uniformly drawn values;
* **logarithmic** — ``w(v) = log2(1 + deg(v))`` where ``deg`` is the
  entity's degree in the edge relation (following [40]).

Both schemes are reproduced here as seeded dict builders, plus the glue
that turns entity-weight tables into a
:class:`~repro.core.ranking.TableWeight` for a concrete query's head
variables.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Mapping

from ..core.ranking import TableWeight
from ..data.relation import Relation
from ..storage import kernels

__all__ = [
    "random_weights",
    "log_degree_weights",
    "table_weight_for_vars",
]


def random_weights(
    values: Iterable, *, seed: int = 0, low: int = 0, high: int = 1_000_000
) -> dict:
    """Uniform random weight per value (the paper's "random" scheme).

    Weights are *integers* so that SUM keys are exact and associative:
    different algorithms accumulate partial sums in different orders
    (join-tree order vs head order), and float rounding would otherwise
    perturb tie-breaking between them by an ulp.
    """
    rng = random.Random(seed)
    return {v: rng.randint(low, high) for v in values}


def log_degree_weights(relation: Relation, attr: str) -> dict:
    """``w(v) = log2(1 + deg(v))`` over one column of an edge relation
    (the paper's "logarithmic" scheme).

    Integer columns count degrees through the grouping kernel
    (:func:`repro.storage.kernels.group_indices`, the primitive behind
    ``hash_group`` — one stable argsort over the cached code column
    instead of a Python dict probe per row, and group *sizes* read off
    directly without materialising buckets); keys are the original
    column values in first-occurrence order, exactly matching the dict
    build, and the per-distinct ``log2`` stays on :func:`math.log2`
    either way, so the returned table is identical.  Non-integer
    columns take the row-at-a-time loop.
    """
    position = relation.position(attr)
    if kernels.enabled():
        matrix = relation.instance_codes((position,), distinct=False)
        if matrix is not None and len(matrix) == len(relation):
            column = relation.scan().column(position)
            return {
                column[first]: math.log2(1 + len(group))
                for first, group in kernels.group_indices(matrix[:, 0])
            }
    degrees: dict = {}
    for v in relation.scan().column(position):
        degrees[v] = degrees.get(v, 0) + 1
    return {v: math.log2(1 + d) for v, d in degrees.items()}


def table_weight_for_vars(
    var_tables: Mapping[str, Mapping], *, default: float | None = None
) -> TableWeight:
    """Build a :class:`TableWeight` mapping each head variable to its
    entity weight table (e.g. both endpoints of a 2-hop query to the
    author table)."""
    return TableWeight({v: dict(t) for v, t in var_tables.items()}, default=default)
