"""Weight assignment schemes (paper §6.1.1).

The paper attaches a weight to every entity in two ways:

* **random** — uniformly drawn values;
* **logarithmic** — ``w(v) = log2(1 + deg(v))`` where ``deg`` is the
  entity's degree in the edge relation (following [40]).

Both schemes are reproduced here as seeded dict builders, plus the glue
that turns entity-weight tables into a
:class:`~repro.core.ranking.TableWeight` for a concrete query's head
variables.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Mapping

from ..core.ranking import TableWeight
from ..data.relation import Relation

__all__ = [
    "random_weights",
    "log_degree_weights",
    "table_weight_for_vars",
]


def random_weights(
    values: Iterable, *, seed: int = 0, low: int = 0, high: int = 1_000_000
) -> dict:
    """Uniform random weight per value (the paper's "random" scheme).

    Weights are *integers* so that SUM keys are exact and associative:
    different algorithms accumulate partial sums in different orders
    (join-tree order vs head order), and float rounding would otherwise
    perturb tie-breaking between them by an ulp.
    """
    rng = random.Random(seed)
    return {v: rng.randint(low, high) for v in values}


def log_degree_weights(relation: Relation, attr: str) -> dict:
    """``w(v) = log2(1 + deg(v))`` over one column of an edge relation
    (the paper's "logarithmic" scheme)."""
    degrees: dict = {}
    for v in relation.scan().column(relation.position(attr)):
        degrees[v] = degrees.get(v, 0) + 1
    return {v: math.log2(1 + d) for v, d in degrees.items()}


def table_weight_for_vars(
    var_tables: Mapping[str, Mapping], *, default: float | None = None
) -> TableWeight:
    """Build a :class:`TableWeight` mapping each head variable to its
    entity weight table (e.g. both endpoints of a 2-hop query to the
    author table)."""
    return TableWeight({v: dict(t) for v, t in var_tables.items()}, default=default)
