"""Seeded synthetic graph generators.

The paper's datasets (DBLP, IMDB, Friendster, Memetracker, LDBC SNB) are
all, for the queries evaluated, *edge relations over two entity sets*
(author-paper, person-movie, user-group, user-meme, person-person) with
heavily skewed degree distributions.  These generators reproduce that
structure at laptop scale:

* :func:`zipf_bipartite` — a bipartite edge set whose endpoint choices
  follow (truncated) Zipf distributions; the skew parameter controls the
  duplication level of projected pairs, which is what drives every
  performance effect in the paper's evaluation (full-join blow-up vs.
  distinct-output size);
* :func:`uniform_bipartite` — the skewless control;
* :func:`power_law_graph` — a directed "knows" graph for the LDBC-like
  social-network workload.

All generators take an explicit ``seed`` and are deterministic across
runs (numpy ``default_rng``).
"""

from __future__ import annotations

from typing import Iterable

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised via import stubbing
    np = None  # type: ignore[assignment]

from ..errors import WorkloadError


def _require_numpy() -> None:
    """The generators draw from numpy's RNG; fail with install advice."""
    if np is None:
        raise WorkloadError(
            "the synthetic workload generators need numpy — install the "
            "fast extra: pip install 'repro[fast]'"
        )

__all__ = ["zipf_bipartite", "uniform_bipartite", "power_law_graph", "zipf_probabilities"]

Edge = tuple[int, int]


def zipf_probabilities(n: int, skew: float) -> "np.ndarray":
    """Normalised truncated-Zipf probabilities ``p(i) ∝ (i+1)^-skew``."""
    _require_numpy()
    if n <= 0:
        raise WorkloadError(f"domain size must be positive, got {n}")
    if skew < 0:
        raise WorkloadError(f"skew must be non-negative, got {skew}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    return weights / weights.sum()


def zipf_bipartite(
    n_left: int,
    n_right: int,
    n_edges: int,
    *,
    skew_left: float = 1.0,
    skew_right: float = 1.0,
    seed: int = 0,
) -> list[Edge]:
    """Distinct bipartite edges with Zipf-skewed endpoint popularity.

    Left endpoints are drawn from ``zipf_probabilities(n_left, skew_left)``
    and right endpoints independently; duplicate edges are rejected and
    re-drawn (with an attempt cap, after which the remaining edges are
    filled densely), so exactly ``min(n_edges, n_left * n_right)`` edges
    are returned.

    Returns ``[(left_id, right_id), ...]`` with ids in ``[0, n)``.
    """
    _require_numpy()
    if n_edges < 0:
        raise WorkloadError(f"n_edges must be non-negative, got {n_edges}")
    capacity = n_left * n_right
    n_edges = min(n_edges, capacity)
    if n_edges == 0:
        return []
    rng = np.random.default_rng(seed)
    p_left = zipf_probabilities(n_left, skew_left)
    p_right = zipf_probabilities(n_right, skew_right)

    seen: set[Edge] = set()
    edges: list[Edge] = []
    attempts = 0
    max_attempts = 30
    while len(edges) < n_edges and attempts < max_attempts:
        need = n_edges - len(edges)
        batch = max(need * 2, 256)
        ls = rng.choice(n_left, size=batch, p=p_left)
        rs = rng.choice(n_right, size=batch, p=p_right)
        for l, r in zip(ls.tolist(), rs.tolist()):
            e = (int(l), int(r))
            if e not in seen:
                seen.add(e)
                edges.append(e)
                if len(edges) == n_edges:
                    break
        attempts += 1
    if len(edges) < n_edges:
        # Dense fill for pathological parameters (tiny domains, huge skew).
        for l in range(n_left):
            for r in range(n_right):
                e = (l, r)
                if e not in seen:
                    seen.add(e)
                    edges.append(e)
                    if len(edges) == n_edges:
                        return edges
    return edges


def uniform_bipartite(
    n_left: int, n_right: int, n_edges: int, *, seed: int = 0
) -> list[Edge]:
    """Distinct bipartite edges with uniform endpoint choice (skew 0)."""
    return zipf_bipartite(
        n_left, n_right, n_edges, skew_left=0.0, skew_right=0.0, seed=seed
    )


def power_law_graph(
    n_nodes: int,
    n_edges: int,
    *,
    skew: float = 1.2,
    seed: int = 0,
    allow_self_loops: bool = False,
) -> list[Edge]:
    """Directed graph edges with Zipf-skewed endpoints (LDBC-like knows).

    Self-loops are rejected by default; duplicate edges always.
    """
    _require_numpy()
    if n_nodes <= 0:
        raise WorkloadError(f"n_nodes must be positive, got {n_nodes}")
    capacity = n_nodes * n_nodes - (0 if allow_self_loops else n_nodes)
    n_edges = min(n_edges, max(capacity, 0))
    if n_edges == 0:
        return []
    rng = np.random.default_rng(seed)
    p = zipf_probabilities(n_nodes, skew)
    seen: set[Edge] = set()
    edges: list[Edge] = []
    attempts = 0
    while len(edges) < n_edges and attempts < 60:
        batch = max((n_edges - len(edges)) * 2, 256)
        src = rng.choice(n_nodes, size=batch, p=p)
        dst = rng.choice(n_nodes, size=batch)
        for s, d in zip(src.tolist(), dst.tolist()):
            if not allow_self_loops and s == d:
                continue
            e = (int(s), int(d))
            if e not in seen:
                seen.add(e)
                edges.append(e)
                if len(edges) == n_edges:
                    break
        attempts += 1
    return edges


def degree_histogram(edges: Iterable[Edge], side: int = 0) -> dict[int, int]:
    """``node -> degree`` for one side of an edge list (workload stats)."""
    out: dict[int, int] = {}
    for e in edges:
        node = e[side]
        out[node] = out.get(node, 0) + 1
    return out
