"""Benchmark harness: timed sweeps and paper-style reporting."""

from .harness import (
    Measurement,
    engine_sweep,
    measure_phases,
    parallel_sweep,
    sweep,
    time_engine_top_k,
    time_top_k,
)
from .reporting import format_kv, format_table, measurements_table, series

__all__ = [
    "Measurement",
    "time_top_k",
    "sweep",
    "measure_phases",
    "time_engine_top_k",
    "engine_sweep",
    "parallel_sweep",
    "format_table",
    "format_kv",
    "measurements_table",
    "series",
]
