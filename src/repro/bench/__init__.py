"""Benchmark harness: timed sweeps and paper-style reporting."""

from .harness import Measurement, measure_phases, sweep, time_top_k
from .reporting import format_kv, format_table, measurements_table, series

__all__ = [
    "Measurement",
    "time_top_k",
    "sweep",
    "measure_phases",
    "format_table",
    "format_kv",
    "measurements_table",
    "series",
]
