"""Paper-style table rendering for benchmark results.

The benchmark modules print, for every reproduced exhibit, a table in
the layout of the paper's figure or table: one row per ``k`` (or scale
factor / space budget), one column per algorithm/engine.  The printed
output is what EXPERIMENTS.md records as "measured".
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from .harness import Measurement

__all__ = ["format_table", "measurements_table", "format_kv", "series"]


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    note: str | None = None,
) -> str:
    """Render an aligned ASCII table with a title banner."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} =="]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    if note:
        lines.append(f"   ({note})")
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def measurements_table(
    title: str,
    measurements: Sequence[Measurement],
    *,
    row_key: str = "k",
    note: str | None = None,
) -> str:
    """Pivot measurements into ``row_key`` rows x algorithm columns of
    seconds (the layout of the paper's Figures 5-10)."""
    algorithms = list(dict.fromkeys(m.algorithm for m in measurements))
    ks = list(dict.fromkeys(m.k for m in measurements))
    by_coord = {(m.algorithm, m.k): m for m in measurements}
    headers = [row_key] + [f"{a} (s)" for a in algorithms]
    rows = []
    for k in ks:
        row: list[Any] = ["ALL" if k is None else k]
        for a in algorithms:
            m = by_coord.get((a, k))
            row.append("-" if m is None else m.seconds)
        rows.append(row)
    return format_table(title, headers, rows, note=note)


def format_kv(title: str, items: Mapping[str, Any]) -> str:
    """Simple two-column key/value table (dataset stats, etc.)."""
    return format_table(title, ["metric", "value"], list(items.items()))


def series(measurements: Sequence[Measurement]) -> dict[str, list[tuple[Any, float]]]:
    """``algorithm -> [(k, seconds), ...]`` for programmatic shape checks."""
    out: dict[str, list[tuple[Any, float]]] = {}
    for m in measurements:
        out.setdefault(m.algorithm, []).append((m.k, m.seconds))
    return out
