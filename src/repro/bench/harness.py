"""Experiment harness: timed k-sweeps across algorithms.

The paper's figures all share one shape: *time to produce the top-k
answers* as a function of ``k``, per algorithm, per query, per dataset.
:func:`sweep` runs exactly that — a fresh enumerator per measurement
(preprocessing included, as in the paper, whose engines also start
cold) — and returns :class:`Measurement` rows that
:mod:`repro.bench.reporting` renders as paper-style tables.

For repeated-query workloads the harness also offers *engine sweeps*
(:func:`engine_sweep`): the same measurements run through a
:class:`~repro.engine.QueryEngine`, either ``cold`` (a fresh engine per
measurement — per-query construction, as above) or ``warm`` (one shared
session engine, so repeated measurements reuse cached plans and reduced
instances).  Comparing the two modes is how figures report *amortised*
latency.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Mapping, Sequence

from ..core.base import RankedEnumeratorBase
from ..data.database import Database
from ..engine import QueryEngine

__all__ = [
    "Measurement",
    "time_top_k",
    "sweep",
    "measure_phases",
    "time_engine_top_k",
    "engine_sweep",
    "parallel_sweep",
]

EnumFactory = Callable[[], RankedEnumeratorBase]


class Measurement:
    """One timed run: algorithm x k -> seconds (+ extras).

    Attributes
    ----------
    algorithm / k / seconds / answers:
        The sweep coordinates and outcome; ``answers`` can be smaller
        than ``k`` when the output is exhausted.
    extras:
        Free-form metrics (peak PQ entries, intermediate tuples, ...).
    """

    __slots__ = ("algorithm", "k", "seconds", "answers", "extras")

    def __init__(
        self,
        algorithm: str,
        k: int | None,
        seconds: float,
        answers: int,
        extras: dict[str, Any] | None = None,
    ):
        self.algorithm = algorithm
        self.k = k
        self.seconds = seconds
        self.answers = answers
        self.extras = extras or {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Measurement({self.algorithm}, k={self.k}, "
            f"{self.seconds:.4f}s, answers={self.answers})"
        )


def _extract_extras(enum: RankedEnumeratorBase) -> dict[str, Any]:
    extras: dict[str, Any] = {}
    stats = getattr(enum, "stats", None)
    if stats is not None:
        extras["peak_pq_entries"] = getattr(stats, "peak_pq_entries", 0)
        extras["preprocess_seconds"] = getattr(stats, "preprocess_seconds", 0.0)
    for attr in (
        "intermediate_tuples",
        "peak_intermediate",
        "output_size",
        "heavy_output_size",
        "materialised_tuples",
        "full_results_consumed",
    ):
        value = getattr(enum, attr, None)
        if value is not None:
            extras[attr] = value
    return extras


def time_top_k(factory: EnumFactory, k: int | None, *, label: str = "") -> Measurement:
    """Time one cold run: build + preprocess + enumerate ``k`` answers."""
    started = time.perf_counter()
    enum = factory()
    answers = enum.all() if k is None else enum.top_k(k)
    elapsed = time.perf_counter() - started
    return Measurement(label or type(enum).__name__, k, elapsed, len(answers), _extract_extras(enum))


def sweep(
    algorithms: Mapping[str, EnumFactory],
    ks: Sequence[int | None],
    *,
    repeats: int = 1,
) -> list[Measurement]:
    """Run every algorithm at every ``k`` (fresh enumerator per point).

    ``repeats > 1`` keeps the *median* run per point, mirroring the
    paper's "median of 5 after dropping fastest/slowest" protocol in
    spirit at laptop scale.
    """
    out: list[Measurement] = []
    for name, factory in algorithms.items():
        for k in ks:
            runs = sorted(
                (time_top_k(factory, k, label=name) for _ in range(max(1, repeats))),
                key=lambda m: m.seconds,
            )
            out.append(runs[len(runs) // 2])
    return out


def time_engine_top_k(
    engine: QueryEngine,
    query,
    k: int | None,
    ranking=None,
    *,
    label: str = "",
    **kwargs: Any,
) -> Measurement:
    """Time one engine execution (plan lookup + build + enumerate ``k``).

    Cache effects are *included*: on a warm engine this measures the
    amortised path, on a fresh engine the cold path — which is the
    point of :func:`engine_sweep`'s two modes.
    """
    hits_before = engine.stats.plan_hits
    started = time.perf_counter()
    answers = engine.execute(query, ranking, k=k, **kwargs)
    elapsed = time.perf_counter() - started
    enum = engine.last_enumerator
    extras = _extract_extras(enum) if enum is not None else {}
    extras["plan_cache_hit"] = engine.stats.plan_hits > hits_before
    name = label or (query if isinstance(query, str) else getattr(query, "name", "?"))
    return Measurement(name, k, elapsed, len(answers), extras)


def engine_sweep(
    db: Database,
    workload: Mapping[str, Any],
    ks: Sequence[int | None],
    *,
    ranking=None,
    repeats: int = 1,
    mode: str = "warm",
    **kwargs: Any,
) -> list[Measurement]:
    """Run a repeated-query workload through the session engine.

    Parameters
    ----------
    db:
        The database to serve.
    workload:
        ``label -> query`` (text or parsed) mapping, mirroring
        :func:`sweep`'s ``algorithms`` mapping.
    ks:
        The ``k`` sweep (``None`` = all answers).
    mode:
        ``"warm"`` — one shared engine for the whole sweep, so every
        measurement after the first per query reuses the cached plan
        (amortised latency); ``"cold"`` — a fresh engine per
        measurement (per-query construction, comparable to
        :func:`sweep`).
    repeats:
        Keep the median of this many runs per point (warm mode primes
        the plan cache with one untimed execution first, so *every*
        kept run measures the steady state).
    """
    if mode not in ("warm", "cold"):
        raise ValueError(f"engine_sweep mode must be 'warm' or 'cold', got {mode!r}")
    out: list[Measurement] = []
    shared = QueryEngine(db) if mode == "warm" else None
    for name, query in workload.items():
        for k in ks:
            runs: list[Measurement] = []
            if shared is not None:
                shared.execute(query, ranking, k=k, **kwargs)  # prime the caches
            for _ in range(max(1, repeats)):
                engine = shared if shared is not None else QueryEngine(db)
                runs.append(
                    time_engine_top_k(engine, query, k, ranking, label=name, **kwargs)
                )
            runs.sort(key=lambda m: m.seconds)
            out.append(runs[len(runs) // 2])
    return out


def parallel_sweep(
    db: Database,
    query,
    ranking=None,
    *,
    ks: Sequence[int | None] = (None,),
    shard_counts: Sequence[int] = (1, 2, 4),
    backend: str = "processes",
    repeats: int = 1,
    attribute: str | None = None,
    **kwargs: Any,
) -> list[Measurement]:
    """Serial-vs-sharded sweep: the parallel scaling curve.

    For every ``k`` the sweep measures one serial baseline
    (:func:`repro.enumerate_ranked`, labelled ``"serial"``) and one
    sharded run per entry of ``shard_counts`` (labelled
    ``"shards=N"``), end to end — partitioning, worker fan-out and the
    order-preserving merge all included, mirroring how
    :meth:`~repro.engine.QueryEngine.execute_parallel` is billed.
    Extras carry ``speedup`` relative to the serial baseline at the
    same ``k``; wall-clock speedup needs real cores, so expect the
    curve to flatten at ``os.cpu_count()``.
    """
    from ..core.planner import create_enumerator
    from ..parallel import execute_sharded

    out: list[Measurement] = []
    for k in ks:
        serial_runs = sorted(
            (
                time_top_k(
                    lambda: create_enumerator(query, db, ranking, **kwargs),
                    k,
                    label="serial",
                )
                for _ in range(max(1, repeats))
            ),
            key=lambda m: m.seconds,
        )
        serial = serial_runs[len(serial_runs) // 2]
        out.append(serial)
        for shards in shard_counts:
            runs: list[Measurement] = []
            for _ in range(max(1, repeats)):
                started = time.perf_counter()
                answers = execute_sharded(
                    db=db,
                    query=query,
                    ranking=ranking,
                    shards=shards,
                    backend=backend,
                    k=k,
                    attribute=attribute,
                    **kwargs,
                )
                elapsed = time.perf_counter() - started
                runs.append(
                    Measurement(f"shards={shards}", k, elapsed, len(answers))
                )
            runs.sort(key=lambda m: m.seconds)
            kept = runs[len(runs) // 2]
            kept.extras["speedup"] = (
                serial.seconds / kept.seconds if kept.seconds > 0 else float("inf")
            )
            kept.extras["backend"] = backend
            out.append(kept)
    return out


def measure_phases(
    factory: EnumFactory, k: int | None = None, *, label: str = ""
) -> Measurement:
    """Time preprocessing and enumeration separately (Figure 7's split)."""
    enum = factory()
    t0 = time.perf_counter()
    enum.preprocess()
    t_pre = time.perf_counter() - t0
    t0 = time.perf_counter()
    answers = enum.all() if k is None else enum.top_k(k)
    t_enum = time.perf_counter() - t0
    extras = _extract_extras(enum)
    extras["phase_preprocess_seconds"] = t_pre
    extras["phase_enumerate_seconds"] = t_enum
    return Measurement(
        label or type(enum).__name__, k, t_pre + t_enum, len(answers), extras
    )
