"""Engine observability: cache counters and per-query timings.

Every :class:`~repro.engine.engine.QueryEngine` owns one
:class:`EngineStats`; the CLI's ``--stats`` flag and the benchmark
harness read :meth:`EngineStats.snapshot`.
"""

from __future__ import annotations

__all__ = ["EngineStats", "QueryTiming", "RequestCounters"]


class RequestCounters:
    """One request's share of the storage-layer work, exactly attributed.

    Filled in by :meth:`repro.engine.QueryEngine.measure` — the public
    per-request scope the service layer wraps around every query /
    cursor-page execution.  The counters ride the thread-scoped tally
    contexts of :mod:`repro.storage.kernels` / :mod:`repro.storage.scores`
    (the PR-5 machinery), so two requests running concurrently on one
    engine each see exactly their own ``kernel_calls`` / ``score_builds``
    — never each other's.  ``batched_combines`` / ``bulk_topk_calls`` /
    ``bulk_topk_fallbacks`` attribute the vectorised-enumeration layer
    (:mod:`repro.core.ranking` counters) the same way.
    """

    __slots__ = (
        "seconds",
        "kernel_calls",
        "kernel_fallbacks",
        "score_builds",
        "score_fallbacks",
        "batched_combines",
        "bulk_topk_calls",
        "bulk_topk_fallbacks",
    )

    def __init__(self):
        self.seconds = 0.0
        self.kernel_calls = 0
        self.kernel_fallbacks = 0
        self.score_builds = 0
        self.score_fallbacks = 0
        self.batched_combines = 0
        self.bulk_topk_calls = 0
        self.bulk_topk_fallbacks = 0

    def snapshot(self) -> dict:
        """A plain-dict view (what the service protocol serialises)."""
        return {
            "seconds": round(self.seconds, 6),
            "kernel_calls": self.kernel_calls,
            "kernel_fallbacks": self.kernel_fallbacks,
            "score_builds": self.score_builds,
            "score_fallbacks": self.score_fallbacks,
            "batched_combines": self.batched_combines,
            "bulk_topk_calls": self.bulk_topk_calls,
            "bulk_topk_fallbacks": self.bulk_topk_fallbacks,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RequestCounters(seconds={self.seconds:.4f}, "
            f"kernel_calls={self.kernel_calls}, score_builds={self.score_builds})"
        )


class QueryTiming:
    """Aggregated execution times for one query (keyed by query name)."""

    __slots__ = ("count", "total_seconds", "last_seconds", "min_seconds", "max_seconds")

    def __init__(self):
        self.count = 0
        self.total_seconds = 0.0
        self.last_seconds = 0.0
        self.min_seconds = float("inf")
        self.max_seconds = 0.0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        self.last_seconds = seconds
        self.min_seconds = min(self.min_seconds, seconds)
        self.max_seconds = max(self.max_seconds, seconds)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total_seconds": round(self.total_seconds, 6),
            "mean_seconds": round(self.mean_seconds, 6),
            "last_seconds": round(self.last_seconds, 6),
            "min_seconds": round(self.min_seconds, 6) if self.count else 0.0,
            "max_seconds": round(self.max_seconds, 6),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"QueryTiming(count={self.count}, total={self.total_seconds:.4f}s)"


class EngineStats:
    """Hit/miss/eviction counters plus per-query timing aggregates.

    Attributes
    ----------
    parse_hits / parse_misses:
        Parsed-query cache (query text -> query object).
    plan_hits / plan_misses:
        Prepared-plan cache (fingerprint -> :class:`PreparedPlan`).
    plan_evictions / query_evictions:
        LRU evictions per cache.
    invalidations:
        Warm state dropped because the database generation moved.
    delta_applies / delta_fallbacks:
        Warm reduced instances *maintained* through store deltas after a
        write (no rebuild paid — see
        :func:`repro.algorithms.yannakakis.refresh_reduction`), and
        same-database invalidations where delta maintenance was not
        possible (history compacted, appends and deletes mixed in one
        gap, a structural change, or a scalar reduction) so the full
        rebuild ran instead.  Every write-triggered revalidation on an
        unchanged database object lands in exactly one of the two.
    uncacheable:
        Prepare calls whose kwargs could not be fingerprinted (planned
        fresh, never cached).
    partition_hits / partition_misses:
        Shard-partition cache (query + attribute + shard count ->
        shard databases, revalidated against the generation counter).
    parallel_executions / batch_executions:
        Executions served by :meth:`QueryEngine.execute_parallel` and
        queries served by :meth:`QueryEngine.execute_many`.
    encode_builds / encode_fallbacks:
        Dictionary (re)builds of the encoded database image, and
        executions that fell back to plain-row execution (unsupported
        ranking class, caller-supplied instances, or unencodable data).
    kernel_calls / kernel_fallbacks:
        Vectorised-kernel invocations (semi-join masks, hash grouping,
        bag joins — see :mod:`repro.storage.kernels`) made while serving
        this engine's ``execute`` / ``execute_parallel`` calls, and the
        operations that fell back to row-at-a-time Python because the
        data was not exactly integer-representable (or a packed key
        overflowed).  Zero for both when NumPy is not installed.
        Attribution is scoped and thread-safe: each execution collects
        its own tally (:meth:`repro.storage.kernels.KernelCounters.collect`),
        the ``threads`` parallel backend re-enters the scope inside its
        worker threads, and concurrent engines never observe each
        other's increments.  Only the ``processes`` backend's shard-side
        kernel work (done in worker processes) goes unreported.
    score_builds / score_fallbacks:
        Score-column materialisations (one weight pass per distinct
        value of a relation column — :mod:`repro.storage.scores`) and
        batched-key attempts that fell back to per-row scalar keys
        (LEX/composite rankings, non-``int`` values, missing or
        non-real weights).  Same scoped attribution as the kernel
        counters.
    batched_combines:
        Join-tree nodes (and star output builds) whose rank keys were
        produced by one array combine over the children's key columns
        instead of a per-candidate Python loop — the vectorised
        enumeration layer (:data:`repro.core.ranking.combine_counters`).
        Fallbacks to the scalar combine are counted inside
        ``score_fallbacks``' sibling reason codes, visible per reason
        via ``repro.core.ranking.combine_counters.reasons_snapshot()``.
    bulk_topk_calls / bulk_topk_fallbacks:
        ``top_k(k)`` requests served by the bulk array kernel (one
        join+dedup+argpartition pass, bit-identical to heap emission)
        and requests where the kernel refused — k over the threshold,
        unbatchable ranking, data not array-representable — so the
        heap path ran with its usual any-delay guarantees
        (:data:`repro.core.ranking.topk_counters`).
    snapshot_opens / snapshot_cow_detaches:
        Persistent-store observability: engines constructed over an
        on-disk snapshot (``QueryEngine(path)``) count one open, and
        ``snapshot_cow_detaches`` tracks how many mapped stores have
        copy-on-write detached into RAM because something mutated them
        — a served snapshot should keep this at zero; a climbing value
        means writes are silently paying materialisation cost.
    journal_records_replayed:
        Write-ahead-journal records replayed into the database when the
        engine's snapshot was opened (zero when the directory had no
        journal or after a clean checkpoint) — a persistently large
        value means checkpoints are overdue.
    executions / total_seconds / per_query:
        Execution counts and wall-clock, overall and per query name.
    """

    __slots__ = (
        "parse_hits",
        "parse_misses",
        "plan_hits",
        "plan_misses",
        "plan_evictions",
        "query_evictions",
        "invalidations",
        "delta_applies",
        "delta_fallbacks",
        "uncacheable",
        "partition_hits",
        "partition_misses",
        "parallel_executions",
        "batch_executions",
        "encode_builds",
        "encode_fallbacks",
        "kernel_calls",
        "kernel_fallbacks",
        "score_builds",
        "score_fallbacks",
        "batched_combines",
        "bulk_topk_calls",
        "bulk_topk_fallbacks",
        "snapshot_opens",
        "snapshot_cow_detaches",
        "journal_records_replayed",
        "executions",
        "total_seconds",
        "per_query",
    )

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        """Zero every counter (the engine keeps its caches)."""
        self.parse_hits = 0
        self.parse_misses = 0
        self.plan_hits = 0
        self.plan_misses = 0
        self.plan_evictions = 0
        self.query_evictions = 0
        self.invalidations = 0
        self.delta_applies = 0
        self.delta_fallbacks = 0
        self.uncacheable = 0
        self.partition_hits = 0
        self.partition_misses = 0
        self.parallel_executions = 0
        self.batch_executions = 0
        self.encode_builds = 0
        self.encode_fallbacks = 0
        self.kernel_calls = 0
        self.kernel_fallbacks = 0
        self.score_builds = 0
        self.score_fallbacks = 0
        self.batched_combines = 0
        self.bulk_topk_calls = 0
        self.bulk_topk_fallbacks = 0
        self.snapshot_opens = 0
        self.snapshot_cow_detaches = 0
        self.journal_records_replayed = 0
        self.executions = 0
        self.total_seconds = 0.0
        self.per_query: dict[str, QueryTiming] = {}

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record_execution(self, query_name: str, seconds: float) -> None:
        """Account one execution of ``query_name`` taking ``seconds``."""
        self.executions += 1
        self.total_seconds += seconds
        timing = self.per_query.get(query_name)
        if timing is None:
            timing = self.per_query[query_name] = QueryTiming()
        timing.record(seconds)

    @property
    def plan_hit_rate(self) -> float:
        """Prepared-plan hit fraction in [0, 1] (0.0 before any lookup)."""
        lookups = self.plan_hits + self.plan_misses
        return self.plan_hits / lookups if lookups else 0.0

    def snapshot(self) -> dict:
        """A plain-dict view for logging / ``--stats`` output."""
        return {
            "executions": self.executions,
            "total_seconds": round(self.total_seconds, 6),
            "parse_hits": self.parse_hits,
            "parse_misses": self.parse_misses,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "plan_hit_rate": round(self.plan_hit_rate, 4),
            "plan_evictions": self.plan_evictions,
            "query_evictions": self.query_evictions,
            "invalidations": self.invalidations,
            "delta_applies": self.delta_applies,
            "delta_fallbacks": self.delta_fallbacks,
            "uncacheable": self.uncacheable,
            "partition_hits": self.partition_hits,
            "partition_misses": self.partition_misses,
            "parallel_executions": self.parallel_executions,
            "batch_executions": self.batch_executions,
            "encode_builds": self.encode_builds,
            "encode_fallbacks": self.encode_fallbacks,
            "kernel_calls": self.kernel_calls,
            "kernel_fallbacks": self.kernel_fallbacks,
            "score_builds": self.score_builds,
            "score_fallbacks": self.score_fallbacks,
            "batched_combines": self.batched_combines,
            "bulk_topk_calls": self.bulk_topk_calls,
            "bulk_topk_fallbacks": self.bulk_topk_fallbacks,
            "snapshot_opens": self.snapshot_opens,
            "snapshot_cow_detaches": self.snapshot_cow_detaches,
            "journal_records_replayed": self.journal_records_replayed,
            "per_query": {
                name: timing.snapshot() for name, timing in self.per_query.items()
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EngineStats(executions={self.executions}, "
            f"plan_hits={self.plan_hits}, plan_misses={self.plan_misses})"
        )
