"""The session layer: a :class:`QueryEngine` facade over one database.

Every entry point used to build a fresh enumerator per query —
re-parsing the query text, re-classifying the hypergraph, re-building
the join tree and re-running the full reducer each time.  A
``QueryEngine`` amortises all of that across the session:

* a **parsed-query cache** (query text -> query object, LRU);
* a **prepared-plan cache** (query + ranking + method fingerprint ->
  :class:`~repro.engine.prepared.PreparedPlan`, LRU), holding the
  pre-built join tree / GHD / classification plus warm reduced
  instances and pre-built relation indexes;
* **generation-counter invalidation**: warm state is revalidated
  against :attr:`Database.generation` before every execution, so
  ``Relation.add`` / ``extend`` / ``Database.add_relation`` transparently
  invalidate exactly the data-dependent half of the cache;
* :class:`~repro.engine.stats.EngineStats` hit/miss/eviction counters
  and per-query timings.

The low-level one-shot path (:func:`repro.create_enumerator`) remains
available and unchanged; the engine is the right surface for any caller
that executes more than one query against the same data — the CLI's
REPL mode, the benchmark harness's warm sweeps, and every future
server/sharding layer.

The engine is also the front door to the parallel subsystem
(:mod:`repro.parallel`): :meth:`QueryEngine.execute_parallel` shards
one query across workers with results identical to :meth:`execute`
(shard partitions are cached per session like plans), and
:meth:`QueryEngine.execute_many` schedules a batch of independent
queries across a process pool.

Examples
--------
>>> from repro.data import Database
>>> from repro.engine import QueryEngine
>>> db = Database()
>>> _ = db.add_relation("R", ("a", "b"), [(1, 10), (2, 10), (3, 99)])
>>> engine = QueryEngine(db)
>>> [a.values for a in engine.execute("Q(a1, a2) :- R(a1, p), R(a2, p)", k=3)]
[(1, 1), (1, 2), (2, 1)]
>>> _ = engine.execute("Q(a1, a2) :- R(a1, p), R(a2, p)", k=3)
>>> engine.stats.plan_hits
1
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Iterable, Sequence

from ..core.answers import RankedAnswer
from ..core.base import RankedEnumeratorBase
from ..core.planner import plan_query
from ..core.ranking import (
    RankingFunction,
    WeightFunction,
    combine_counters,
    topk_counters,
)
from ..data.database import Database
from ..data.relation import Value
from ..query.parser import parse_query
from ..query.properties import classify_query, delay_guarantee
from ..query.query import JoinProjectQuery, UnionQuery
from ..storage import kernels, scores
from ..storage.encoded import EncodedDatabase
from .lru import LRUCache
from .prepared import _BULK_TOPK_KINDS, PreparedPlan
from .stats import EngineStats, RequestCounters

__all__ = ["QueryEngine"]

#: What the engine accepts wherever a query is expected: raw text (parsed
#: through the LRU cache) or an already-parsed query object.
QueryInput = str | JoinProjectQuery | UnionQuery


class QueryEngine:
    """A cached, session-scoped execution facade over one database.

    Parameters
    ----------
    db:
        The database to serve; a fresh empty one when omitted.  A
        ``str``/``PathLike`` is treated as a snapshot directory
        (:func:`repro.open_database`): the engine opens it memory-mapped
        and starts *warm* — the dictionary and encoded image come off
        the snapshot files, so the first query pays no encode cost, and
        ``processes``-backend shard workers remap the same files instead
        of receiving a pickled database.
    max_plans:
        LRU bound on prepared plans (>= 1).
    max_queries:
        LRU bound on parsed query texts (>= 1).
    encode:
        ``"auto"`` (default) executes over the dictionary-encoded image
        when the data carries non-numeric keys; ``True``/``False``
        force either mode.
    kernel_min_rows:
        Kernel-dispatch row floor for this engine's executions
        (``None`` = the process default,
        :data:`repro.storage.kernels.KERNEL_MIN_ROWS`).  ``0`` forces
        the per-call dispatch sites (hash-index builds, standalone
        semi-/anti-joins) through the kernels even on tiny inputs —
        outputs are identical either way.  The override is carried by
        the executing threads (the ``threads`` parallel backend
        included); ``processes``-backend shard workers run in other
        processes and keep the process default — set
        :func:`repro.storage.kernels.set_min_rows` for those.
    bulk_topk_max_k:
        Bulk top-k threshold for this engine's executions (``None`` =
        the default, :data:`repro.core.acyclic.BULK_TOPK_MAX_K`).
        ``top_k(k)`` requests with ``k`` at or below the threshold are
        served by one array pass (join, dedup, ``argpartition``-style
        selection) instead of the per-answer heap loop — bit-identical
        answers, scores and tie order, with an automatic heap fallback
        whenever the kernel refuses.  ``0`` disables the bulk kernel
        entirely (every ``top_k`` keeps the paper's any-delay heap
        path).  Applies to acyclic and star plans; other enumerators
        always use their own paths.
    """

    def __init__(
        self,
        db: Database | str | os.PathLike | None = None,
        *,
        max_plans: int = 64,
        max_queries: int = 256,
        encode: bool | str = "auto",
        kernel_min_rows: int | None = None,
        bulk_topk_max_k: int | None = None,
    ):
        if isinstance(db, (str, os.PathLike)):
            from ..storage.persist import open_database

            db = open_database(db)
        self.db = db if db is not None else Database()
        self.stats = EngineStats()
        self._queries: LRUCache = LRUCache(
            max_queries, on_evict=self._count_query_eviction
        )
        self._plans: LRUCache = LRUCache(max_plans, on_evict=self._count_plan_eviction)
        # Shard partitions are as expensive as a reducer pass (O(|D|)),
        # so they get the same session treatment as plans: LRU-cached,
        # revalidated against the database generation.
        self._partitions: LRUCache = LRUCache(max_plans)
        # Dictionary-encoded execution (the storage layer's fast path):
        # the encoded image of the database is cached here and
        # revalidated against the generation counter like every other
        # warm structure, so warm runs re-encode nothing.  The default
        # ``"auto"`` encodes exactly when the data carries fat
        # (non-numeric) keys — where code-space execution wins;
        # ``encode=True`` forces it, ``encode=False`` forces plain rows
        # (benchmarks compare the two).
        self._encode = encode
        self._encoded: EncodedDatabase | None = None
        self._encode_broken_generation: int | None = None
        self._encode_auto: tuple[Database, int, bool] | None = None
        # Kernel-dispatch row floor for this engine's executions; None
        # leaves the process default (``kernels.KERNEL_MIN_ROWS``).
        # Applied as a thread-local override around execute paths, so
        # concurrent engines with different settings do not interfere.
        self._kernel_min_rows = kernel_min_rows
        # Bulk top-k threshold override; None leaves the plan-layer
        # default (``acyclic.BULK_TOPK_MAX_K``), 0 forces the heap path.
        self._bulk_topk_max_k = bulk_topk_max_k
        self.last_enumerator: RankedEnumeratorBase | None = None
        # Snapshot-backed sessions (``QueryEngine(path)`` or a database
        # from ``repro.open_database``) start warm: the encoded image is
        # pre-seeded straight off the mapped snapshot files, so the
        # first execution skips dictionary construction and the full
        # re-encode pass entirely.
        from ..storage.persist import snapshot_handle

        self._snapshot = None if db is None else snapshot_handle(self.db)
        if self._snapshot is not None:
            self.stats.snapshot_opens += 1
            self.stats.journal_records_replayed += getattr(
                self._snapshot, "journal_replayed", 0
            )
            if self._encode is not False:
                self._encoded = self._snapshot.encoded_database(self.db)

    def _count_query_eviction(self, _key, _value) -> None:
        self.stats.query_evictions += 1

    def _count_plan_eviction(self, _key, _value) -> None:
        self.stats.plan_evictions += 1

    @contextmanager
    def _instrumented(self):
        """Scope one execution: counter attribution + threshold override.

        Kernel and score-column work runs below the engine (in the
        reducer, the access paths, the ranking layer); each execution
        collects its own thread-scoped tally — worker threads of the
        ``threads`` backend re-enter the scope — so
        ``stats.kernel_calls`` / ``score_builds`` etc. reflect exactly
        this engine's executions even under concurrency.
        """
        with kernels.min_rows_override(self._kernel_min_rows):
            with kernels.counters.collect() as kernel_tally:
                with scores.counters.collect() as score_tally:
                    with combine_counters.collect() as combine_tally:
                        with topk_counters.collect() as topk_tally:
                            try:
                                yield
                            finally:
                                self.stats.kernel_calls += kernel_tally.calls
                                self.stats.kernel_fallbacks += kernel_tally.fallbacks
                                self.stats.score_builds += score_tally.calls
                                self.stats.score_fallbacks += score_tally.fallbacks
                                self.stats.batched_combines += combine_tally.calls
                                self.stats.bulk_topk_calls += topk_tally.calls
                                self.stats.bulk_topk_fallbacks += topk_tally.fallbacks
                                if self._snapshot is not None:
                                    self.stats.snapshot_cow_detaches = (
                                        self._snapshot.cow_detaches
                                    )

    @contextmanager
    def measure(self):
        """Scope one *request*: yields a :class:`RequestCounters` filled on exit.

        The public face of the scoped-counter machinery: enter the
        context on the thread that will run the work (the service
        layer's executor threads do), execute through the engine inside
        it, and read exact per-request ``kernel_calls`` /
        ``score_builds`` / ``seconds`` afterwards.  Scopes nest — the
        engine's own per-execution attribution keeps updating
        :attr:`stats` — and concurrent requests on different threads
        never observe each other's increments.  Work done by
        ``threads``-backend shard workers spawned *inside* the scope is
        attributed to it; ``processes``-backend shard work is not
        (other processes).

        Examples
        --------
        >>> from repro.data import Database
        >>> from repro.engine import QueryEngine
        >>> db = Database()
        >>> _ = db.add_relation("R", ("a", "b"), [(1, 10), (2, 10)])
        >>> engine = QueryEngine(db)
        >>> with engine.measure() as req:
        ...     _ = engine.execute("Q(a1, a2) :- R(a1, p), R(a2, p)", k=2)
        >>> req.seconds > 0
        True
        """
        request = RequestCounters()
        started = time.perf_counter()
        with kernels.counters.collect() as kernel_tally:
            with scores.counters.collect() as score_tally:
                with combine_counters.collect() as combine_tally:
                    with topk_counters.collect() as topk_tally:
                        try:
                            yield request
                        finally:
                            request.seconds = time.perf_counter() - started
                            request.kernel_calls = kernel_tally.calls
                            request.kernel_fallbacks = kernel_tally.fallbacks
                            request.score_builds = score_tally.calls
                            request.score_fallbacks = score_tally.fallbacks
                            request.batched_combines = combine_tally.calls
                            request.bulk_topk_calls = topk_tally.calls
                            request.bulk_topk_fallbacks = topk_tally.fallbacks

    # ------------------------------------------------------------------ #
    # data management
    # ------------------------------------------------------------------ #
    def add_relation(
        self, name: str, attrs: Sequence[str], tuples: Iterable[Sequence[Value]] = ()
    ):
        """Create and register a relation (plans revalidate automatically)."""
        return self.db.add_relation(name, attrs, tuples)

    # ------------------------------------------------------------------ #
    # parsing
    # ------------------------------------------------------------------ #
    def parse(self, query: QueryInput):
        """Parse query text through the LRU cache; pass query objects through."""
        if not isinstance(query, str):
            return query
        cached = self._queries.get(query)
        if cached is not None:
            self.stats.parse_hits += 1
            return cached
        self.stats.parse_misses += 1
        parsed = parse_query(query)
        self._queries.put(query, parsed)
        return parsed

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    @staticmethod
    def _fingerprint(
        query,
        ranking: RankingFunction | None,
        method: str,
        epsilon: float | None,
        delta: int | None,
        kwargs: dict[str, Any],
    ):
        """Cache key for one (query, ranking, method, knobs) combination.

        Rankings are keyed by identity (the cached plan keeps the object
        alive, so the id stays valid): reusing one ranking object across
        calls hits the cache, while structurally-equal-but-distinct
        weight tables conservatively miss.  Returns ``None`` — meaning
        "do not cache" — when the extra kwargs are unhashable
        (e.g. a pre-built join tree or instance mapping).
        """
        ranking_key = (
            "default"
            if ranking is None
            else (type(ranking).__name__, id(ranking))
        )
        key = (query, ranking_key, method, epsilon, delta, tuple(sorted(kwargs.items())))
        try:
            hash(key)
        except TypeError:
            return None
        return key

    def prepare(
        self,
        query: QueryInput,
        ranking: RankingFunction | None = None,
        *,
        method: str = "auto",
        epsilon: float | None = None,
        delta: int | None = None,
        **kwargs: Any,
    ) -> PreparedPlan:
        """Plan a query once and cache the result for re-execution.

        On a hit the cached :class:`PreparedPlan` is returned with its
        join tree / GHD / warm reduced instances intact; on a miss the
        query is classified and planned (:func:`repro.core.planner.plan_query`)
        and the plan enters the LRU.  With encoding active this is the
        plan :meth:`execute` runs — the query's constants and ranking
        translated into code space — so warm state and hit counters
        reflect real executions.
        """
        prepared, _ctx = self._prepare(
            query, ranking, method=method, epsilon=epsilon, delta=delta, **kwargs
        )
        return prepared

    def _prepare(
        self,
        query: QueryInput,
        ranking: RankingFunction | None,
        *,
        method: str = "auto",
        epsilon: float | None = None,
        delta: int | None = None,
        **kwargs: Any,
    ) -> tuple[PreparedPlan, EncodedDatabase | None]:
        """Prepare for execution; returns the plan plus its encoding context."""
        parsed = self.parse(query)
        encoding = self._encoding_for(ranking, kwargs)
        if encoding is not None:
            ctx, wrapped = encoding
            prepared = self._prepare_plain(
                ctx.encode_query(parsed),
                wrapped,
                method=method,
                epsilon=epsilon,
                delta=delta,
                **self._encode_kwargs(ctx, kwargs),
            )
            return prepared.bind_encoding(ctx), ctx
        return (
            self._prepare_plain(
                parsed, ranking, method=method, epsilon=epsilon, delta=delta, **kwargs
            ),
            None,
        )

    def _prepare_plain(
        self,
        query: QueryInput,
        ranking: RankingFunction | None = None,
        *,
        method: str = "auto",
        epsilon: float | None = None,
        delta: int | None = None,
        **kwargs: Any,
    ) -> PreparedPlan:
        parsed = self.parse(query)
        fingerprint = self._fingerprint(parsed, ranking, method, epsilon, delta, kwargs)
        if fingerprint is not None:
            hit = self._plans.get(fingerprint)
            if hit is not None:
                self.stats.plan_hits += 1
                return hit
            self.stats.plan_misses += 1
        else:
            self.stats.uncacheable += 1

        started = time.perf_counter()
        plan = plan_query(
            parsed, ranking, method=method, epsilon=epsilon, delta=delta, **kwargs
        )
        prepared = PreparedPlan(plan, fingerprint, time.perf_counter() - started)
        if fingerprint is not None:
            self._plans.put(fingerprint, prepared)
        return prepared

    # ------------------------------------------------------------------ #
    # encoded execution (storage-layer fast path)
    # ------------------------------------------------------------------ #
    def _encoding_for(
        self, ranking: RankingFunction | None, kwargs: dict[str, Any]
    ) -> tuple[EncodedDatabase, RankingFunction] | None:
        """The refreshed encoded image + wrapped ranking, or ``None``.

        ``None`` means "execute over plain rows": encoding disabled,
        caller-supplied instances (already in value space), a ranking
        class the wrapper does not know, or a database whose values
        defeated dictionary construction (remembered per generation).
        """
        if self._encode is False or "instances" in kwargs:
            return None
        generation = self.db.generation
        if generation == self._encode_broken_generation:
            self.stats.encode_fallbacks += 1
            return None
        if self._encode == "auto" and self._snapshot is None:
            # (Snapshot-backed sessions skip the profitability probe:
            # their encoded image is pre-built on disk, so encoding is
            # free, and the probe itself would page in every column.)
            cached = self._encode_auto
            if cached is None or cached[0] is not self.db or cached[1] != generation:
                from ..storage.encoded import profits_from_encoding

                cached = (self.db, generation, profits_from_encoding(self.db))
                self._encode_auto = cached
            if not cached[2]:
                return None
        if self._encoded is None or self._encoded.base is not self.db:
            # First use, or the session database object was swapped out
            # (equal generations on different databases say nothing
            # about equal contents).  Snapshot sessions re-seed from the
            # mapped files (safe after ``invalidate()``: the image's
            # watermark starts unset, so post-open writes reconcile).
            if self._snapshot is not None:
                self._encoded = self._snapshot.encoded_database(self.db)
            else:
                self._encoded = EncodedDatabase(self.db)
        epoch_before = self._encoded.epoch
        had_image = self._encoded.database is not None
        try:
            self._encoded.refresh()
        except TypeError:
            # Unhashable values somewhere in the data; plain execution
            # would work (it never dictionary-hashes whole columns), so
            # fall back quietly until the data changes.
            self._encode_broken_generation = generation
            self.stats.encode_fallbacks += 1
            return None
        if self._encoded.epoch != epoch_before:
            self.stats.encode_builds += 1
            if had_image:
                # The code space itself changed: every encoded plan in
                # the LRU is orphaned (their fingerprints can no longer
                # be produced), which is an invalidation of warm state
                # the plans themselves will never get to report.
                self.stats.invalidations += 1
        wrapped = self._encoded.wrap_ranking(ranking)
        if wrapped is None:
            self.stats.encode_fallbacks += 1
            return None
        return self._encoded, wrapped

    @staticmethod
    def _encode_kwargs(ctx: EncodedDatabase, kwargs: dict[str, Any]) -> dict[str, Any]:
        """Planner kwargs translated into code space (bare ``weight``)."""
        weight = kwargs.get("weight")
        if isinstance(weight, WeightFunction):
            kwargs = dict(kwargs)
            kwargs["weight"] = ctx.wrap_weight(weight)
        return kwargs

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def stream(
        self,
        query: QueryInput,
        ranking: RankingFunction | None = None,
        *,
        method: str = "auto",
        epsilon: float | None = None,
        delta: int | None = None,
        **kwargs: Any,
    ) -> RankedEnumeratorBase:
        """A fresh one-shot enumerator over the session database.

        The delay-guarantee interface: iterate for answers in rank
        order.  Warm plan state is reused when available.  When the
        session encodes (``encode="auto"`` does so for data with
        non-numeric keys), the enumerator runs over the
        dictionary-encoded image of the database and decodes at
        emission — answers, scores, ties and order are identical to
        plain execution.
        """
        prepared, _ctx = self._prepare(
            query, ranking, method=method, epsilon=epsilon, delta=delta, **kwargs
        )
        # Plans bound to an encoding context switch to the encoded image
        # and decode at emission inside make_enumerator.
        overrides: dict[str, Any] = {}
        if (
            self._bulk_topk_max_k is not None
            and prepared.plan.kind in _BULK_TOPK_KINDS
            and "bulk_topk_max_k" not in prepared.plan.kwargs
        ):
            overrides["bulk_topk_max_k"] = self._bulk_topk_max_k
        enum = prepared.make_enumerator(self.db, self.stats, **overrides)
        self.last_enumerator = enum
        return enum

    def execute(
        self,
        query: QueryInput,
        ranking: RankingFunction | None = None,
        *,
        k: int | None = None,
        method: str = "auto",
        epsilon: float | None = None,
        delta: int | None = None,
        **kwargs: Any,
    ) -> list[RankedAnswer]:
        """Ranked execution with plan reuse: ``SELECT DISTINCT .. LIMIT k``.

        Identical results to :func:`repro.enumerate_ranked`; repeated
        executions of the same query skip parsing, classification, join
        tree construction and the full-reducer pass.
        """
        started = time.perf_counter()
        parsed = self.parse(query)
        with self._instrumented():
            enum = self.stream(
                parsed, ranking, method=method, epsilon=epsilon, delta=delta, **kwargs
            )
            answers = enum.all() if k is None else enum.top_k(k)
        # Timings are keyed by the query's structure, not its name: head
        # predicates are conventionally all called Q, which would fold
        # every query in a session into one bucket.
        self.stats.record_execution(repr(parsed), time.perf_counter() - started)
        return answers

    # ------------------------------------------------------------------ #
    # parallel execution
    # ------------------------------------------------------------------ #
    def _partition_for(
        self,
        parsed,
        shards: int,
        attribute: str | None,
        *,
        database: Database | None = None,
        cache_tag: Any = None,
    ):
        """The session's cached :class:`~repro.data.partition.QueryPartition`.

        Keyed on ``(query, shards, attribute, tag)`` and revalidated
        against :attr:`Database.generation`, exactly like warm plan
        state: a mutation transparently rebuilds the shards on next
        use.  The encoded path passes its own ``database`` (the encoded
        image, whose lifetime the base generation also governs) and a
        dictionary-epoch ``cache_tag`` so code-space shards never mix
        with value-space ones.
        """
        from ..data.partition import partition_query

        key = (parsed, shards, attribute, cache_tag)
        cached = self._partitions.get(key)
        # Validated on the database *object* as well as its generation:
        # a session whose ``engine.db`` was swapped for an equal-generation
        # database must not be served the old database's shards.
        if (
            cached is not None
            and cached[0] is self.db
            and cached[1] == self.db.generation
        ):
            self.stats.partition_hits += 1
            return cached[2]
        self.stats.partition_misses += 1
        partition = partition_query(
            parsed, database if database is not None else self.db, shards,
            attribute=attribute,
        )
        self._partitions.put(key, (self.db, self.db.generation, partition))
        return partition

    def prepare_parallel(
        self,
        query: QueryInput,
        ranking: RankingFunction | None = None,
        *,
        shards: int,
        attribute: str | None = None,
        method: str = "auto",
        epsilon: float | None = None,
        delta: int | None = None,
        **kwargs: Any,
    ) -> PreparedPlan:
        """A cached plan annotated with the partition attribute/shards.

        The plan is built for the *rewritten* query
        (:func:`~repro.data.partition.rewrite_for_sharding` — a pure
        query transformation, no data touched), which is exactly what
        the shard workers instantiate: one cache entry serves
        execution, ``describe()`` and ``explain`` alike.  Parallel
        plans live in the same LRU as serial ones under a fingerprint
        extended with the shard configuration, so the serial plan entry
        is undisturbed.  With encoding active the plan is the
        code-space one :meth:`execute_parallel` runs.
        """
        prepared, _ctx = self._prepare_parallel(
            query,
            ranking,
            shards=shards,
            attribute=attribute,
            method=method,
            epsilon=epsilon,
            delta=delta,
            **kwargs,
        )
        return prepared

    def _prepare_parallel(
        self,
        query: QueryInput,
        ranking: RankingFunction | None,
        *,
        shards: int,
        attribute: str | None,
        method: str = "auto",
        epsilon: float | None = None,
        delta: int | None = None,
        **kwargs: Any,
    ) -> tuple[PreparedPlan, EncodedDatabase | None]:
        parsed = self.parse(query)
        encoding = self._encoding_for(ranking, kwargs)
        if encoding is not None:
            ctx, wrapped = encoding
            prepared = self._prepare_parallel_plain(
                ctx.encode_query(parsed),
                wrapped,
                shards=shards,
                attribute=attribute,
                method=method,
                epsilon=epsilon,
                delta=delta,
                **self._encode_kwargs(ctx, kwargs),
            )
            return prepared.bind_encoding(ctx), ctx
        return (
            self._prepare_parallel_plain(
                parsed,
                ranking,
                shards=shards,
                attribute=attribute,
                method=method,
                epsilon=epsilon,
                delta=delta,
                **kwargs,
            ),
            None,
        )

    def _prepare_parallel_plain(
        self,
        query: QueryInput,
        ranking: RankingFunction | None = None,
        *,
        shards: int,
        attribute: str | None = None,
        method: str = "auto",
        epsilon: float | None = None,
        delta: int | None = None,
        **kwargs: Any,
    ) -> PreparedPlan:
        from ..data.partition import choose_partition_attribute, rewrite_for_sharding

        parsed = self.parse(query)
        attr = attribute or choose_partition_attribute(parsed, self.db)
        marker = {"__parallel__": (shards, attr), **kwargs}
        fingerprint = self._fingerprint(parsed, ranking, method, epsilon, delta, marker)
        if fingerprint is not None:
            hit = self._plans.get(fingerprint)
            if hit is not None:
                self.stats.plan_hits += 1
                return hit
            self.stats.plan_misses += 1
        else:
            self.stats.uncacheable += 1
        started = time.perf_counter()
        plan = plan_query(
            rewrite_for_sharding(parsed),
            ranking,
            method=method,
            epsilon=epsilon,
            delta=delta,
            **kwargs,
        ).parallelised(attr, shards)
        prepared = PreparedPlan(plan, fingerprint, time.perf_counter() - started)
        if fingerprint is not None:
            self._plans.put(fingerprint, prepared)
        return prepared

    def execute_parallel(
        self,
        query: QueryInput,
        ranking: RankingFunction | None = None,
        *,
        shards: int,
        backend: str = "processes",
        k: int | None = None,
        attribute: str | None = None,
        chunk_size: int | None = None,
        method: str = "auto",
        epsilon: float | None = None,
        delta: int | None = None,
        **kwargs: Any,
    ) -> list[RankedAnswer]:
        """Sharded ranked execution: identical results on ``shards`` cores.

        Hash-partitions the database on a planner-chosen join attribute
        (:func:`repro.data.partition.choose_partition_attribute`), runs
        one enumerator per shard on the chosen backend (``"serial"`` /
        ``"threads"`` / ``"processes"``) and recombines the shard
        streams with an order-preserving merge — answers, scores and
        order are exactly those of :meth:`execute`.  Partitions are
        cached per session and revalidated by generation counter.

        ``shards <= 1`` falls through to the serial :meth:`execute`.

        Examples
        --------
        >>> from repro.data import Database
        >>> from repro.engine import QueryEngine
        >>> db = Database()
        >>> _ = db.add_relation("R", ("a", "b"), [(1, 10), (2, 10), (3, 99)])
        >>> engine = QueryEngine(db)
        >>> q = "Q(a1, a2) :- R(a1, p), R(a2, p)"
        >>> serial = engine.execute(q)
        >>> engine.execute_parallel(q, shards=2, backend="serial") == serial
        True
        """
        if shards <= 1:
            return self.execute(
                query, ranking, k=k, method=method, epsilon=epsilon, delta=delta, **kwargs
            )
        from ..parallel import DEFAULT_CHUNK_SIZE, stream_sharded

        started = time.perf_counter()
        parsed = self.parse(query)
        # The cached parallel plan (of the rewritten query) is what the
        # shard workers instantiate — warm parallel executions skip
        # classification and join-tree/GHD construction entirely, and
        # the same entry backs ``explain``'s partition reporting.  With
        # encoding active the whole pipeline runs in code space —
        # partition hashing, worker joins and the order-preserving merge
        # all compare dense ints — and answers decode once after the
        # merge.
        with self._instrumented():
            prepared, ctx = self._prepare_parallel(
                parsed,
                ranking,
                shards=shards,
                attribute=attribute,
                method=method,
                epsilon=epsilon,
                delta=delta,
                **kwargs,
            )
            if ctx is not None:
                exec_query = ctx.encode_query(parsed)
                exec_db = ctx.database
                exec_ranking = ctx.wrap_ranking(ranking)
                kwargs = self._encode_kwargs(ctx, kwargs)
                cache_tag: Any = ("encoded", ctx.epoch)
            else:
                exec_query, exec_db, exec_ranking = parsed, self.db, ranking
                cache_tag = None
            partition = self._partition_for(
                exec_query, shards, attribute, database=exec_db, cache_tag=cache_tag
            )
            answers = list(
                stream_sharded(
                    exec_query,
                    exec_db,
                    exec_ranking,
                    shards=shards,
                    backend=backend,
                    k=k,
                    chunk_size=chunk_size or DEFAULT_CHUNK_SIZE,
                    method=method,
                    epsilon=epsilon,
                    delta=delta,
                    partition=partition,
                    plan=prepared.plan,
                    **kwargs,
                )
            )
            if ctx is not None:
                answers = ctx.decode_answers(
                    answers, prepared.plan.kind, prepared.plan.ranking
                )
        self.stats.parallel_executions += 1
        self.stats.record_execution(repr(parsed), time.perf_counter() - started)
        return answers

    def stream_parallel(
        self,
        query: QueryInput,
        ranking: RankingFunction | None = None,
        *,
        shards: int,
        backend: str = "threads",
        k: int | None = None,
        attribute: str | None = None,
        chunk_size: int | None = None,
        method: str = "auto",
        epsilon: float | None = None,
        delta: int | None = None,
        **kwargs: Any,
    ):
        """A lazy sharded stream: the cursor-safe enumerator handoff.

        The streaming twin of :meth:`execute_parallel`: same plan /
        partition caches, same order-and-tie-identical answers, but the
        merged shard stream is handed back as an iterator instead of a
        list, so a long-lived caller (the service layer's cursors) can
        pull pages on demand — each next page costs its share of delays,
        never a re-run.  Shard workers stay alive while the iterator is
        open; closing it (``.close()``) or exhausting it releases them,
        so abandoning a stream early is safe.  With encoding active the
        shards enumerate in code space and answers decode one by one at
        emission.

        ``shards <= 1`` degrades to the serial :meth:`stream` capped at
        ``k``.  The ``processes`` backend works but ties worker
        processes to the stream's lifetime — prefer ``threads`` (the
        default here) or ``serial`` for streams held open across
        requests.
        """
        from itertools import islice

        if shards <= 1:
            enum = self.stream(
                query, ranking, method=method, epsilon=epsilon, delta=delta, **kwargs
            )
            stream = iter(enum)
            return stream if k is None else islice(stream, k)
        from ..parallel import DEFAULT_CHUNK_SIZE, stream_sharded

        parsed = self.parse(query)
        with self._instrumented():
            prepared, ctx = self._prepare_parallel(
                parsed,
                ranking,
                shards=shards,
                attribute=attribute,
                method=method,
                epsilon=epsilon,
                delta=delta,
                **kwargs,
            )
            if ctx is not None:
                exec_query = ctx.encode_query(parsed)
                exec_db = ctx.database
                exec_ranking = ctx.wrap_ranking(ranking)
                kwargs = self._encode_kwargs(ctx, kwargs)
                cache_tag: Any = ("encoded", ctx.epoch)
            else:
                exec_query, exec_db, exec_ranking = parsed, self.db, ranking
                cache_tag = None
            partition = self._partition_for(
                exec_query, shards, attribute, database=exec_db, cache_tag=cache_tag
            )
            stream = stream_sharded(
                exec_query,
                exec_db,
                exec_ranking,
                shards=shards,
                backend=backend,
                k=k,
                chunk_size=chunk_size or DEFAULT_CHUNK_SIZE,
                method=method,
                epsilon=epsilon,
                delta=delta,
                partition=partition,
                plan=prepared.plan,
                **kwargs,
            )
        self.stats.parallel_executions += 1
        if ctx is not None:
            stream = self._decode_stream(stream, ctx, prepared.plan)
        return stream

    @staticmethod
    def _decode_stream(stream, ctx: EncodedDatabase, plan):
        """Decode an encoded answer stream lazily, one answer at a time.

        The decode tables are captured eagerly — a later dictionary
        rebuild (data mutation) cannot corrupt answers already being
        streamed from the enumeration structures built at open time.
        """
        values = ctx.dictionary.values
        decode_score = ctx.decoder(plan.kind, plan.ranking)

        def generate():
            try:
                for a in stream:
                    yield RankedAnswer(
                        tuple(values[c] for c in a.values),
                        decode_score(a.score),
                        key=a.key,
                    )
            finally:
                close = getattr(stream, "close", None)
                if close is not None:
                    close()

        return generate()

    def execute_many(
        self,
        queries: Sequence[QueryInput],
        ranking: RankingFunction | None = None,
        *,
        k: int | None = None,
        backend: str = "processes",
        max_workers: int | None = None,
        method: str = "auto",
        epsilon: float | None = None,
        delta: int | None = None,
    ) -> list[list[RankedAnswer]]:
        """Execute independent queries as a batch; results in input order.

        With ``backend="processes"`` the queries are scheduled across a
        worker pool — the database ships once per worker and each
        worker runs its own session engine, so repeated queries inside
        the batch hit a prepared-plan cache there too.  Other backends
        run the batch through this engine serially (full plan-cache
        reuse, no parallelism).  Every parsed query is also prepared in
        this session's plan cache, so later :meth:`execute` calls of
        the same queries start warm.
        """
        parsed = [self.parse(q) for q in queries]
        for p in parsed:
            self.prepare(p, ranking, method=method, epsilon=epsilon, delta=delta)
        if backend == "processes" and len(parsed) > 1:
            from ..parallel import run_many

            started = time.perf_counter()
            items = [(p, ranking, k, method, epsilon, delta) for p in parsed]
            results = run_many(self.db, items, max_workers=max_workers)
            elapsed = time.perf_counter() - started
            for p in parsed:
                self.stats.record_execution(repr(p), elapsed / max(len(parsed), 1))
            self.stats.batch_executions += len(parsed)
            return results
        out = [
            self.execute(p, ranking, k=k, method=method, epsilon=epsilon, delta=delta)
            for p in parsed
        ]
        self.stats.batch_executions += len(parsed)
        return out

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def explain(
        self,
        query: QueryInput,
        ranking: RankingFunction | None = None,
        *,
        method: str = "auto",
        epsilon: float | None = None,
        delta: int | None = None,
        shards: int | None = None,
        attribute: str | None = None,
        **kwargs: Any,
    ) -> dict[str, Any]:
        """The plan summary the CLI's ``--explain`` prints.

        Returns a dict with the query class, selected algorithm, ranking
        description, the paper's delay guarantee, ``|D|`` and whether
        the plan came from the cache.  When ``shards > 1`` the plan is
        the parallel one and the summary additionally carries the
        chosen ``"partition attribute"`` and ``"shards"``.
        """
        parsed = self.parse(query)
        before_hits = self.stats.plan_hits
        if shards is not None and shards > 1:
            prepared = self.prepare_parallel(
                parsed,
                ranking,
                shards=shards,
                attribute=attribute,
                method=method,
                epsilon=epsilon,
                delta=delta,
                **kwargs,
            )
        else:
            prepared = self.prepare(
                parsed, ranking, method=method, epsilon=epsilon, delta=delta, **kwargs
            )
        info = {
            "query class": classify_query(parsed),
            "algorithm": prepared.plan.enumerator_class.__name__,
            "plan": prepared.plan.describe(),
            "ranking": prepared.plan.ranking.describe(),
            "guarantee": delay_guarantee(parsed),
            "|D|": self.db.size,
            "cached plan": self.stats.plan_hits > before_hits,
        }
        if prepared.plan.is_parallel:
            info["partition attribute"] = prepared.plan.partition_attribute
            info["shards"] = prepared.plan.partition_shards
        return info

    # ------------------------------------------------------------------ #
    # cache control
    # ------------------------------------------------------------------ #
    def invalidate(self) -> None:
        """Drop all warm (data-dependent) state, keeping the plans."""
        for prepared in self._plans.values():
            prepared._reduced_instances = None
            prepared._generation = None
        self._encoded = None
        self._encode_broken_generation = None
        self._encode_auto = None

    def clear_caches(self) -> None:
        """Drop every cached parse, plan and partition (counters are kept)."""
        self._queries.clear()
        self._plans.clear()
        self._partitions.clear()
        self._encoded = None
        self._encode_broken_generation = None
        self._encode_auto = None

    @property
    def cached_plans(self) -> int:
        """Number of prepared plans currently cached."""
        return len(self._plans)

    @property
    def cached_queries(self) -> int:
        """Number of parsed query texts currently cached."""
        return len(self._queries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryEngine(db={self.db!r}, plans={len(self._plans)}, "
            f"queries={len(self._queries)})"
        )
