"""repro.engine — the cached session layer over the enumeration core.

:class:`QueryEngine` owns a :class:`~repro.data.database.Database` and
amortises per-query work (parsing, classification, join-tree / GHD
construction, the full-reducer pass, relation index builds) across a
session of repeated queries, with LRU-bounded caches, generation-counter
invalidation and :class:`EngineStats` observability.  See
:mod:`repro.engine.engine` for the full story.
"""

from .engine import QueryEngine
from .lru import LRUCache
from .prepared import PreparedPlan
from .stats import EngineStats, QueryTiming, RequestCounters

__all__ = [
    "QueryEngine",
    "PreparedPlan",
    "EngineStats",
    "QueryTiming",
    "RequestCounters",
    "LRUCache",
]
