"""Prepared plans: a cached :class:`~repro.core.planner.QueryPlan` plus
warm, data-dependent state.

A :class:`PreparedPlan` is what the engine's plan cache stores.  It
wraps the data-independent plan (join tree / GHD / classification —
reusable forever) together with the *warm* state that depends on the
database contents:

* the fully-reduced per-atom instances (the full-reducer's output,
  which :class:`~repro.core.acyclic.AcyclicRankedEnumerator` and
  :class:`~repro.core.lexicographic.LexBacktrackEnumerator` accept via
  their ``instances`` parameter, skipping the O(|D|) reducer pass on
  every warm execution);
* pre-built hash access paths on the join-key columns of the underlying
  relations.  These live in each relation's storage-layer path cache
  (:class:`repro.storage.paths.AccessPathCache`) until the next
  mutation; the enumerators read the reduced instances directly, so the
  indexes serve relation-level consumers (``select_eq`` / ``index_on``
  — the baselines and ad-hoc inspection), at one O(|D|) pass per
  invalidation.

Warm state is validated against
:attr:`repro.data.database.Database.generation` before every use and
rebuilt transparently when the data has changed — the generation
counters on ``Relation``/``Database`` are the invalidation hook.
"""

from __future__ import annotations

import time
from typing import Any

from ..algorithms.yannakakis import atom_instances, full_reduce, refresh_reduction
from ..core.acyclic import BULK_TOPK_MAX_K
from ..core.base import RankedEnumeratorBase
from ..core.planner import QueryPlan
from ..data.database import Database
from ..errors import QueryError
from .stats import EngineStats

__all__ = ["PreparedPlan"]

#: Plan kinds whose enumerators accept pre-reduced ``instances``.
_WARMABLE_KINDS = frozenset({"acyclic", "lex"})

#: Plan kinds whose enumerators accept the ``bulk_topk_max_k`` knob.
#: Direct enumerator construction defaults the knob to 0 (pure heap
#: path — what the delay-guarantee tests measure); the engine layer
#: turns the bulk kernel on for its executions here.
_BULK_TOPK_KINDS = frozenset({"acyclic", "star"})


class PreparedPlan:
    """A reusable enumerator factory bound to one query/ranking/method.

    Instances are produced by :meth:`repro.engine.QueryEngine.prepare`
    and are valid for the lifetime of the engine.  Warm state is bound
    to one database object at a time: handing :meth:`make_enumerator` a
    different database (or mutating the current one) drops and
    re-derives it.
    """

    __slots__ = (
        "plan",
        "fingerprint",
        "prepare_seconds",
        "executions",
        "_db",
        "_generation",
        "_delta_generation",
        "_reduced_instances",
        "_encoding",
        "_encoding_epoch",
    )

    def __init__(self, plan: QueryPlan, fingerprint: Any, prepare_seconds: float = 0.0):
        self.plan = plan
        self.fingerprint = fingerprint
        self.prepare_seconds = prepare_seconds
        self.executions = 0
        self._db: Database | None = None
        self._generation: int | None = None
        self._delta_generation: int | None = None
        self._reduced_instances: dict[str, list[tuple]] | None = None
        # Set for plans whose query/ranking were translated into code
        # space: the EncodedDatabase they were translated against and
        # the dictionary epoch the translation belongs to.
        self._encoding = None
        self._encoding_epoch: int | None = None

    def bind_encoding(self, encoding) -> "PreparedPlan":
        """Record that this plan executes over ``encoding``'s code space.

        Bound by the engine at prepare time; :meth:`make_enumerator`
        then accepts the *base* database and transparently switches to
        the encoded image and decodes at emission, so the documented
        ``prepare(...)`` / ``make_enumerator(engine.db)`` pattern stays
        correct under encoding.
        """
        self._encoding = encoding
        self._encoding_epoch = encoding.epoch
        return self

    def _execution_target(self, db: Database) -> tuple[Database, Any]:
        """Resolve the database to execute against (+ encoding or None)."""
        ctx = self._encoding
        if ctx is None:
            return db, None
        if db is ctx.database:
            return db, ctx  # the engine handed us the encoded image
        if db is ctx.base:
            ctx.refresh()
            if ctx.epoch != self._encoding_epoch:
                raise QueryError(
                    "prepared plan is stale: the database gained values its "
                    "dictionary has never seen — re-prepare through the engine"
                )
            return ctx.database, ctx
        raise QueryError(
            "this plan was prepared for the encoded execution of a different "
            "database; prepare a plan for this database instead"
        )

    # ------------------------------------------------------------------ #
    # warm state
    # ------------------------------------------------------------------ #
    @property
    def is_warm(self) -> bool:
        """True when reduced instances are cached (acyclic/lex plans)."""
        return self._reduced_instances is not None

    def _check_generation(self, db: Database, stats: EngineStats | None) -> None:
        # Warm state is keyed on the database *object* as well as its
        # generation: equal generations on two different databases say
        # nothing about equal contents.
        generation = db.generation
        if self._reduced_instances is not None and (
            db is not self._db or generation != self._generation
        ):
            refreshed = None
            if (
                db is self._db
                and self._delta_generation is not None
                and generation - self._generation
                == db.delta_generation - self._delta_generation
            ):
                # Every intervening write was a delta-logged row
                # append/delete: try to maintain the warm reduction
                # instead of dropping it.  A ``None`` answer (history
                # compacted, mixed gap, scalar reduction) is the
                # always-correct full rebuild.
                refreshed = refresh_reduction(
                    self.plan.join_tree, self._reduced_instances
                )
            if refreshed is not None:
                self._reduced_instances = refreshed
                if stats is not None:
                    stats.delta_applies += 1
            else:
                self._reduced_instances = None
                if stats is not None:
                    stats.invalidations += 1
                    if db is self._db:
                        stats.delta_fallbacks += 1
        self._db = db
        self._generation = generation
        self._delta_generation = db.delta_generation

    def warm(self, db: Database, stats: EngineStats | None = None) -> "PreparedPlan":
        """Build (or refresh) the data-dependent state eagerly.

        Runs ``atom_instances`` + the full reducer once and pre-builds
        the join-key hash indexes on the base relations.  Called lazily
        by :meth:`make_enumerator`; call it directly to pay the cost at
        prepare time instead of on the first execution.  Encoded plans
        accept the base database and warm the encoded image.
        """
        db, _encoding = self._execution_target(db)
        self._check_generation(db, stats)
        if self.plan.kind not in _WARMABLE_KINDS or self._reduced_instances is not None:
            return self
        started = time.perf_counter()
        instances = atom_instances(self.plan.query, db)
        self._reduced_instances = full_reduce(self.plan.join_tree, instances)
        self._warm_relation_indexes(db)
        self.prepare_seconds += time.perf_counter() - started
        return self

    def _warm_relation_indexes(self, db: Database) -> None:
        """Pre-build hash indexes on every join-tree anchor's columns."""
        if self.plan.join_tree is None:
            return
        for node in self.plan.join_tree.nodes:
            if not node.anchor:
                continue
            atom = node.atom
            rel = db.get(atom.relation)
            if rel is None:
                continue
            positions = tuple(
                atom.variable_positions[atom.variables.index(v)] for v in node.anchor
            )
            rel.index(positions)

    # ------------------------------------------------------------------ #
    # the factory
    # ------------------------------------------------------------------ #
    def make_enumerator(
        self,
        db: Database,
        stats: EngineStats | None = None,
        **overrides: Any,
    ) -> RankedEnumeratorBase:
        """A fresh one-shot enumerator, using warm state when possible.

        Warm executions of acyclic/lexicographic plans hand the cached
        reduced instances to the enumerator (``already_reduced`` for the
        LinDelay algorithm), so per-execution work shrinks to queue
        construction plus enumeration.  Results are identical to a cold
        :func:`~repro.core.planner.create_enumerator` build: the reduced
        instances are exactly what the cold path derives internally.

        Plans bound to an encoding context accept the *base* database
        here: execution switches to the encoded image and the returned
        enumerator decodes values and scores at emission.
        """
        self.executions += 1
        target, encoding = self._execution_target(db)
        if (
            self.plan.kind in _BULK_TOPK_KINDS
            and "bulk_topk_max_k" not in overrides
            and "bulk_topk_max_k" not in self.plan.kwargs
        ):
            overrides["bulk_topk_max_k"] = BULK_TOPK_MAX_K
        caller_instances = "instances" in overrides or "instances" in self.plan.kwargs
        if self.plan.kind in _WARMABLE_KINDS and not caller_instances:
            self.warm(target, stats)
            overrides["instances"] = self._reduced_instances
            if "already_reduced" not in self.plan.kwargs:
                overrides["already_reduced"] = True
        enum = self.plan.instantiate(target, **overrides)
        if encoding is not None:
            from ..storage.encoded import DecodingEnumerator

            enum = DecodingEnumerator(
                enum,
                encoding.dictionary,
                encoding.decoder(self.plan.kind, self.plan.ranking),
            )
        return enum

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PreparedPlan({self.plan.query.name!r}, kind={self.plan.kind!r}, "
            f"warm={self.is_warm}, executions={self.executions})"
        )
